"""The Protocol Handler: a TCP server speaking the source wire protocol.

Section 4.1: intercepts the application's network message flow, extracts
credentials and request payloads, hands them to the Hyper-Q engine, and
packages responses back into the binary message format the application
expects. One engine session per connection, served by a *bounded* pool of
connection workers (``max_connections``) — the unbounded thread-per-
connection shape fell over exactly where the Section 7.3 stress test
lives, at hundreds of concurrent clients. Excess connections queue at
accept until a worker frees up.

When the engine carries a :class:`~repro.core.workload.WorkloadManager`,
every request additionally routes through it: classification, admission
control (sheds and queue deadlines become FAILURE replies on a live
connection), and deficit-round-robin scheduling onto the manager's bounded
executor pool.

Resilience duties of this layer:

* every session is closed when its connection ends, cleanly or not — an
  abrupt disconnect must not orphan the session's volatile-table overlay;
* with ``request_timeout`` set, a request that overruns its deadline gets a
  timely FAILURE reply instead of hanging the connection (the straggler
  finishes behind the scenes and is awaited before the session's next
  request, so the session is never driven concurrently);
* a request shed or queue-expired by the workload manager gets a clean
  FAILURE reply and the session survives for the next request;
* unexpected internal errors become FAILURE replies, not dropped
  connections;
* the engine's fault schedule is consulted per request (site ``"wire"``):
  :data:`~repro.core.faults.WIRE_DISCONNECT` cuts the connection with no
  reply — the deterministic stand-in for a client yanked mid-conversation —
  and :data:`~repro.core.faults.SLOW_RESULT` stalls the request inside the
  timed region.
"""

from __future__ import annotations

import os
import queue
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Optional

from repro.errors import (BackendTimeoutError, HyperQError, ProtocolError,
                          UnknownTenantError)
from repro.core import faults as flt
from repro.core import trace as trace_mod
from repro.core.engine import HQResult, HyperQ
from repro.protocol.encoding import encode_meta
from repro.protocol.messages import MessageKind, read_message, send_message


class RequestState:
    """Per-connection request bookkeeping shared by both wire paths.

    Holds the straggler (a timed-out request still running on a pool
    thread, which must land before the session's next request) and the
    workload class of the request in flight (for trace finishing). The
    threaded handler owns one per connection; the asyncio server owns one
    per stream pair.
    """

    __slots__ = ("straggler", "wl_class")

    def __init__(self):
        self.straggler = None
        self.wl_class: Optional[str] = None


def await_straggler(state: RequestState) -> None:
    """Block until the connection's timed-out request (if any) lands."""
    straggler, state.straggler = state.straggler, None
    if straggler is None:
        return
    try:
        straggler.result()
    except Exception:  # noqa: BLE001 — its error already became a reply
        pass


def run_managed(server, state: RequestState, session, sql: str,
                delay: float) -> HQResult:
    """Route one request through the workload manager (blocking).

    Shared by both wire paths: the threaded handler calls it on the
    connection thread, the asyncio server calls it on an executor thread
    with the request's root span activated. Shed and queue-deadline
    rejections raise :class:`~repro.errors.WorkloadError` subclasses,
    which callers turn into FAILURE replies on a live connection. A
    request that overruns ``server.request_timeout`` while *running*
    becomes the connection's straggler in *state*: the client gets a
    FAILURE now, and the session's next request waits for the straggler
    to land first.
    """
    manager = server.engine.workload
    # The straggler must land before *anything* touches the session —
    # classification binds on the session's probe stack, so deciding
    # first would race the straggler's execute on shared state.
    await_straggler(state)
    with trace_mod.span("classify") as cspan:
        decision = manager.decide(session, sql)
        if cspan is not None:
            cspan.annotate("wl_class", decision.wl_class)
            cspan.annotate("reason", decision.reason)
    state.wl_class = decision.wl_class
    # The pool worker gets a fresh context; hand the active span across
    # explicitly, and time the queue wait from submit to work start.
    root = trace_mod.current_span()
    qspan = trace_mod.begin_span("queue_wait", wl_class=decision.wl_class)

    def work() -> HQResult:
        with trace_mod.activate(root):
            if qspan is not None:
                qspan.finish()
            # Unconditional: None restores the engine default, clearing
            # a previous request's per-class override.
            session.apply_batch_budget(decision.budget)
            if delay > 0:
                time.sleep(delay)
            return session.execute(sql)

    ticket = manager.submit(session, sql, work, decision)
    timeout = server.request_timeout
    try:
        return manager.wait(ticket, timeout)
    except FutureTimeoutError:
        engine = server.engine
        engine.resilience.note("timeout")
        if engine.faults is not None:
            engine.faults.record("timeout", timeout=f"{timeout:g}")
        # A future cancelled by wait() (timed out while still queued)
        # never ran: there is nothing to discard and no straggler, and
        # registering the callback would fire it synchronously with a
        # CancelledError that no `except Exception` catches.
        if not ticket.future.cancelled():
            ticket.future.add_done_callback(_discard_result)
            if not ticket.future.done():
                state.straggler = ticket.future
        raise BackendTimeoutError(
            f"request timed out after {timeout:g}s") from None


class _ConnectionHandler(socketserver.BaseRequestHandler):
    server: "HyperQServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        session = None
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Straggler + workload-class bookkeeping, shared format with the
        #: asyncio wire path.
        self._state = RequestState()
        self.busy = False
        registered = False
        try:
            kind, payload = read_message(sock)
            if kind is not MessageKind.LOGON_REQUEST:
                raise ProtocolError("expected LOGON_REQUEST")
            # LOGON payload: ``user\0password`` with an optional third
            # ``\0tenant`` field (absent for legacy clients — they land on
            # the default tenant when tenancy is enabled).
            fields = payload.split(b"\0", 2)
            user = fields[0].decode("utf-8", "replace")
            tenant_field = (fields[2].decode("utf-8", "replace")
                            if len(fields) > 2 else "")
            engine = self.server.engine
            if engine.tenancy is not None:
                try:
                    tenant = engine.tenancy.resolve(tenant_field or None)
                except UnknownTenantError as error:
                    # Clean rejection at the door: the client sees a
                    # FAILURE envelope instead of a LOGON_RESPONSE.
                    send_message(sock, MessageKind.FAILURE,
                                 str(error).encode("utf-8"))
                    return
            session = self.server.engine.create_session()
            session.session_params["USER"] = user.upper() or "HYPERQ"
            if engine.tenancy is not None:
                session.session_params["TENANT"] = tenant
            session_id = self.server.next_session_id()
            send_message(sock, MessageKind.LOGON_RESPONSE,
                         struct.pack(">I", session_id))
            registered = self.server.register_handler(self)
            if registered:
                self._serve(sock, session)
        except (ProtocolError, ConnectionError, OSError):
            return
        finally:
            if registered:
                self.server.unregister_handler(self)
            # Sessions close on *every* exit path: a client that vanishes
            # mid-request must not leak its volatile-table overlay or its
            # converter resources. A running straggler is awaited first —
            # closing the session under it would yank its converter away.
            if session is not None:
                await_straggler(self._state)
                session.close()
            if self._executor is not None:
                self._executor.shutdown(wait=False)

    def _serve(self, sock: socket.socket, session) -> None:
        while True:
            kind, payload = read_message(sock)
            if kind is MessageKind.LOGOFF:
                return
            if kind is not MessageKind.RUN_QUERY:
                raise ProtocolError(f"unexpected message {kind.name}")
            # Mark the connection busy for the span of the request so a
            # drain never cuts a query that is already being served; the
            # reply below lands before the draining check closes the loop.
            self.busy = True
            try:
                alive = self._handle_request(sock, session, payload)
            finally:
                self.busy = False
            if not alive or self.server.draining:
                return

    def _handle_request(self, sock: socket.socket, session,
                        payload: bytes) -> bool:
        """Serve one RUN_QUERY message under a request-scoped trace.

        The trace roots here — on the connection thread — so every layer
        below (engine, workload pool via explicit hand-off, converter,
        wire encode) nests under one span tree per wire request. Returns
        False when the connection must drop (injected disconnect).
        """
        engine = self.server.engine
        hub = engine.tracing
        trace = hub.start_trace("request") if hub.enabled else None
        self._state.wl_class = None
        with trace_mod.activate(trace.root if trace is not None else None):
            outcome = "ok"
            try:
                with trace_mod.span("protocol_decode", bytes=len(payload)):
                    sql = payload.decode("utf-8")
                    fault = (engine.faults.draw("wire", op=sql)
                             if engine.faults is not None else None)
                if trace is not None:
                    trace.sql = sql
                    trace.root.annotate("sql", sql[:200])
                if fault is not None and fault.kind == flt.WIRE_DISCONNECT:
                    engine.resilience.note("wire_disconnect")
                    engine.faults.record("wire_disconnect", seq=fault.seq)
                    trace_mod.add_event("wire_disconnect", seq=fault.seq)
                    outcome = "wire_disconnect"
                    # Abrupt: no FAILURE envelope, no LOGOFF — the client
                    # sees the connection die as with a real network cut.
                    return False
                if engine.faults is not None \
                        and engine.worker_index is not None:
                    gw_fault = engine.faults.draw(
                        "gateway", op=sql, replica=engine.worker_index)
                    if gw_fault is not None \
                            and gw_fault.kind == flt.WORKER_CRASH:
                        # Abrupt worker death: no reply, no cleanup — the
                        # gateway supervisor must detect and restart us.
                        os._exit(86)
                delay = fault.delay if fault is not None \
                    and fault.kind == flt.SLOW_RESULT else 0.0
                try:
                    result = self._run_request(session, sql, delay)
                except HyperQError as error:  # timeouts, sheds, queue expiry
                    outcome = f"error:{type(error).__name__}"
                    send_message(sock, MessageKind.FAILURE,
                                 str(error).encode("utf-8"))
                    return True
                except Exception as error:  # noqa: BLE001 — reply, don't drop
                    outcome = f"error:{type(error).__name__}"
                    send_message(
                        sock, MessageKind.FAILURE,
                        f"internal error: {error}".encode("utf-8"))
                    return True
                self._send_result(sock, result)
                return True
            except BaseException as error:  # connection died mid-reply
                outcome = f"error:{type(error).__name__}"
                raise
            finally:
                if trace is not None:
                    hub.finish_trace(trace, outcome,
                                     wl_class=self._state.wl_class)

    def _run_request(self, session, sql: str, delay: float) -> HQResult:
        manager = self.server.engine.workload
        if manager is None:
            return self._run_direct(session, sql, delay)
        return run_managed(self.server, self._state, session, sql, delay)

    def _run_direct(self, session, sql: str, delay: float) -> HQResult:
        """Execute one request without a workload manager, enforcing the
        server's per-request deadline.

        The request runs on this connection's single worker thread; on
        deadline overrun the client gets a FAILURE now and the straggler's
        result is discarded (and closed) when it eventually lands. Because
        the worker pool has exactly one thread, a straggler and the next
        request can never touch the session concurrently.
        """
        root = trace_mod.current_span()

        def work() -> HQResult:
            with trace_mod.activate(root):
                if delay > 0:
                    time.sleep(delay)
                return session.execute(sql)

        timeout = self.server.request_timeout
        if timeout is None:
            return work()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="hyperq-request")
        future = self._executor.submit(work)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            engine = self.server.engine
            engine.resilience.note("timeout")
            if engine.faults is not None:
                engine.faults.record("timeout", timeout=f"{timeout:g}")
            future.add_done_callback(_discard_result)
            raise BackendTimeoutError(
                f"request timed out after {timeout:g}s") from None

    def _send_result(self, sock: socket.socket, result: HQResult) -> None:
        """Ship one result, streaming row chunks as they convert.

        Chunks go onto the wire as the converter produces them, so a slow
        client exerts backpressure all the way into the backend executor
        (``sendall`` blocks, the chunk generator stops pulling). The final
        SUCCESS frame carries the row total accumulated by the stream.
        """
        with trace_mod.span("wire_encode") as span:
            try:
                if result.kind == "rows":
                    send_message(sock, MessageKind.RESULT_META,
                                 encode_meta(result.metas))
                    sent = 0
                    try:
                        for chunk in result.iter_chunks():
                            if chunk:
                                send_message(sock, MessageKind.RESULT_ROWS,
                                             chunk)
                                sent += len(chunk)
                    except HyperQError as error:
                        # Mid-stream failure: some rows may already be on
                        # the wire; the FAILURE frame marks the result
                        # truncated.
                        send_message(sock, MessageKind.FAILURE,
                                     str(error).encode("utf-8"))
                        if span is not None:
                            span.annotate("bytes", sent)
                            span.outcome = "truncated"
                        return
                    send_message(sock, MessageKind.SUCCESS,
                                 struct.pack(">Q", result.rowcount))
                    if span is not None:
                        span.annotate("bytes", sent)
                        span.annotate("rows", result.rowcount)
                elif result.kind == "count":
                    send_message(sock, MessageKind.RESULT_COUNT,
                                 struct.pack(">Q", result.rowcount))
                    send_message(sock, MessageKind.SUCCESS,
                                 struct.pack(">Q", result.rowcount))
                    if span is not None:
                        span.annotate("rows", result.rowcount)
                else:
                    send_message(sock, MessageKind.SUCCESS,
                                 struct.pack(">Q", 0))
            finally:
                # Release converted buffers as soon as the last frame ships
                # (or the attempt aborts) — nothing row-sized survives per
                # session.
                result.close()


def _discard_result(future) -> None:
    """Release whatever a timed-out straggler eventually produced."""
    if future.cancelled():
        return  # never ran; result() would raise CancelledError (a
                # BaseException) straight through the pool worker
    try:
        result = future.result()
    except BaseException:  # noqa: BLE001 — its error already became a reply
        return
    if result is not None:
        result.close()


class _ConnectionPool:
    """A lazy, bounded pool of daemon worker threads for connections.

    Deliberately not :class:`~concurrent.futures.ThreadPoolExecutor`: its
    workers are non-daemon and joined at interpreter exit, so one stuck
    client connection would hang shutdown — the property the old
    ``daemon_threads = True`` server relied on. Threads spawn on demand up
    to ``max_workers`` and block on the task queue when idle; beyond the
    cap, accepted connections queue until a worker frees up.
    """

    def __init__(self, max_workers: int, name_prefix: str = "hyperq-conn"):
        if max_workers < 1:
            raise ValueError("connection pool needs at least one worker")
        self._max = max_workers
        self._prefix = name_prefix
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._idle = 0
        self._pending = 0
        self._closed = False

    def submit(self, fn, *args) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("connection pool is closed")
            # Spawn on outstanding demand, not a raw idle count: a worker
            # marks itself idle *before* consuming an earlier queued task,
            # so "an idle worker exists" does not mean one is coming for
            # this task — during an accept burst that under-spawns and
            # strands the connection behind long-lived ones.
            self._pending += 1
            if self._pending > self._idle and len(self._threads) < self._max:
                thread = threading.Thread(
                    target=self._worker,
                    name=f"{self._prefix}-{len(self._threads)}",
                    daemon=True)
                self._threads.append(thread)
                thread.start()
        self._tasks.put((fn, args))

    def _worker(self) -> None:
        while True:
            with self._lock:
                self._idle += 1
            task = self._tasks.get()
            with self._lock:
                self._idle -= 1
                if task is not None:  # poison pills are not pending tasks
                    self._pending -= 1
            if task is None:
                return
            fn, args = task
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 — handler errors die with the
                pass           # connection, never with the worker

    def close(self, on_cancel=None, join_timeout: float = 2.0) -> None:
        """Drain and join the pool.

        Queued-but-unstarted tasks are cancelled (handed to *on_cancel* so
        the server can close their accepted sockets instead of leaking
        them), every worker is woken with a poison pill, and workers are
        joined up to *join_timeout* seconds total. A worker still serving a
        stuck connection past the deadline is abandoned — threads are
        daemonic, so they never block interpreter exit — but the normal
        stop path sees every worker land before the listening socket
        closes.
        """
        with self._lock:
            self._closed = True
            threads = list(self._threads)
        # Cancel queued tasks first so no worker picks up a new connection
        # between the drain and the pills.
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                break
            if task is None:
                continue
            with self._lock:
                self._pending -= 1
            if on_cancel is not None:
                try:
                    on_cancel(task[1])
                except Exception:  # noqa: BLE001 — best-effort cleanup
                    pass
        for __ in range(len(threads)):
            self._tasks.put(None)
        deadline = time.monotonic() + join_timeout
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)


class HyperQServer(socketserver.TCPServer):
    """TCP server wrapping one Hyper-Q engine.

    Sessions created here share the engine's translation cache, so a hot
    statement warmed by one connection is a cache hit for every other —
    which is why ADV overhead *shrinks* under concurrency (Figure 9b).

    ``max_connections`` bounds concurrently-served connections: accepted
    sockets beyond the cap wait in the pool's task queue, and
    ``request_queue_size`` bounds the kernel listen backlog behind that, so
    connection storms queue instead of spawning unbounded threads.
    ``request_timeout`` (seconds, None = unlimited) is the per-request
    deadline after which the client receives a FAILURE reply.
    """

    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None,
                 max_connections: int = 64, bind: bool = True):
        self.engine = engine
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self._pool = _ConnectionPool(max_connections)
        self._session_counter = 0
        self._counter_lock = threading.Lock()
        #: Graceful-drain state: once set, idle connections are closed,
        #: busy ones finish their current request then close, and no new
        #: handler may register.
        self.draining = False
        self._handlers: set = set()
        self._handlers_lock = threading.Lock()
        # bind=False leaves the listening socket unbound: gateway workers
        # never accept themselves — they serve sockets handed off by the
        # acceptor process via process_request().
        super().__init__((host, port), _ConnectionHandler,
                         bind_and_activate=bind)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def next_session_id(self) -> int:
        with self._counter_lock:
            self._session_counter += 1
            return self._session_counter

    # -- graceful drain ---------------------------------------------------------------

    def register_handler(self, handler) -> bool:
        """Track a live connection; refused (False) once draining started,
        so a connection that raced the drain closes instead of serving."""
        with self._handlers_lock:
            if self.draining:
                return False
            self._handlers.add(handler)
            return True

    def unregister_handler(self, handler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    def begin_drain(self) -> None:
        """Start a graceful drain: no new requests are served, connections
        idle between requests are closed now, and a connection mid-request
        finishes that request (the client gets its full reply) before its
        serve loop exits. Callers stop the accept loop separately and poll
        :meth:`drained` (or just join the serving thread) afterwards."""
        with self._handlers_lock:
            self.draining = True
            handlers = list(self._handlers)
        for handler in handlers:
            if not handler.busy:
                # Shut only the read half: the handler's read_message()
                # unblocks with EOF, while a request that raced the drain
                # (read completed, `busy` not yet set) can still ship its
                # reply on the intact write half before the loop exits.
                try:
                    handler.request.shutdown(socket.SHUT_RD)
                except OSError:
                    pass

    def drained(self) -> bool:
        with self._handlers_lock:
            return not self._handlers

    # -- bounded accept-side concurrency ---------------------------------------------

    def process_request(self, request, client_address) -> None:
        """Serve the connection on the bounded worker pool (replacing
        ThreadingMixIn's unbounded thread-per-connection)."""
        self._pool.submit(self._process_request_pooled, request,
                          client_address)

    def _process_request_pooled(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:  # noqa: BLE001 — mirror BaseServer's handling
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def handle_error(self, request, client_address) -> None:
        # Connection-level failures are expected under fault injection and
        # client storms; never spam stderr with tracebacks for them.
        pass

    def server_close(self) -> None:
        # Drain and join the connection pool *before* the listening socket
        # closes: queued accepted sockets are shut down instead of leaked,
        # and no worker thread outlives the server (repeated start/stop in
        # tests must not accumulate threads or ResourceWarnings).
        self._pool.close(on_cancel=self._cancel_queued_connection)
        super().server_close()

    def _cancel_queued_connection(self, args) -> None:
        """Close an accepted socket whose task never reached a worker."""
        request = args[0]
        self.shutdown_request(request)


class ServerThread:
    """Runs a :class:`HyperQServer` on a background thread.

    Usage::

        with ServerThread(engine) as address:
            client = TdClient(*address)

    Setting ``HQ_WIRE=async`` in the environment swaps in the asyncio wire
    path (:class:`repro.protocol.aio_server.AioServerThread`) — the hook CI's
    wire-matrix job uses to run the whole integration/resilience battery
    against both servers without touching any test.
    """

    def __new__(cls, *args, **kwargs):
        if cls is ServerThread \
                and os.environ.get("HQ_WIRE", "").lower() == "async":
            from repro.protocol.aio_server import AioServerThread

            # Returning a non-subclass instance skips cls.__init__; the
            # async thread wrapper exposes the same start/stop/server API.
            return AioServerThread(*args, **kwargs)
        return super().__new__(cls)

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None,
                 max_connections: int = 64):
        self.server = HyperQServer(engine, host, port,
                                   request_timeout=request_timeout,
                                   max_connections=max_connections)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="hyperq-server", daemon=True)
        self._thread.start()
        return self.server.address

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
