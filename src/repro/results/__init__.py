"""Result pipeline: buffering (with spill-to-disk) and conversion into the
source database's binary format (Sections 4.5-4.6)."""

from repro.results.store import ResultStore
from repro.results.converter import ResultConverter, ConvertedResult

__all__ = ["ResultStore", "ResultConverter", "ConvertedResult"]
