"""The Result Converter: TDF -> source binary format (Section 4.6).

Unwraps TDF packets coming out of the ODBC Server, converts the rows into
the source database's binary record format (:mod:`repro.protocol.encoding`),
optionally in parallel across batches, and either streams the converted
chunks or buffers them in a :class:`~repro.results.store.ResultStore` when
the source protocol needs the full count up front.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro import tdf
from repro.protocol.encoding import ColumnMeta, decode_rows, effective_meta, encode_rows
from repro.results.store import ResultStore
from repro.xtra.types import SQLType


@dataclass
class ConvertedResult:
    """A fully converted result set in source binary format."""

    metas: list[ColumnMeta]
    chunks: list[bytes] = field(default_factory=list)
    rowcount: int = 0
    store: Optional[ResultStore] = None

    def iter_chunks(self) -> Iterator[bytes]:
        if self.store is not None:
            yield from self.store
        else:
            yield from self.chunks

    def rows(self) -> list[tuple]:
        """Decode back into Python rows (what a client library would do)."""
        out: list[tuple] = []
        for chunk in self.iter_chunks():
            out.extend(decode_rows(self.metas, chunk))
        return out

    def close(self) -> None:
        if self.store is not None:
            self.store.close()


class ResultConverter:
    """Converts TDF batches into source-format chunks.

    ``parallelism > 1`` converts batches concurrently (the paper forks
    conversion processes; threads suffice at reproduction scale because the
    hot loop is struct packing). The worker pool is created once and lives
    for the converter's lifetime — per-call pool construction would eat the
    parallel speedup on streaming workloads — so callers owning a converter
    should :meth:`close` it (sessions do this on close).
    """

    def __init__(self, parallelism: int = 1,
                 buffer_all: bool = True,
                 max_memory_bytes: int = 64 * 1024 * 1024,
                 spill_dir: Optional[str] = None):
        self._parallelism = max(1, parallelism)
        self._buffer_all = buffer_all
        self._max_memory = max_memory_bytes
        self._spill_dir = spill_dir
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._parallelism,
                thread_name_prefix="result-converter")
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool rebuilds on reuse)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ResultConverter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def convert(self, batches: Iterable[bytes],
                declared_types: Optional[list[SQLType]] = None) -> ConvertedResult:
        """Convert an iterable of TDF packets into source binary chunks."""
        decoded: list[tuple[list[str], list[tuple]]] = []
        for packet in batches:
            decoded.append(tdf.decode_batch(packet))
        if not decoded:
            return ConvertedResult(metas=[], chunks=[], rowcount=0)
        columns = decoded[0][0]
        sample_rows = next((rows for __, rows in decoded if rows), [])
        metas = effective_meta(columns, declared_types or [], sample_rows)

        def encode_one(rows: list[tuple]) -> bytes:
            return encode_rows(metas, rows)

        row_batches = [rows for __, rows in decoded]
        if self._parallelism > 1 and len(row_batches) > 1:
            encoded = list(self._ensure_pool().map(encode_one, row_batches))
        else:
            encoded = [encode_one(rows) for rows in row_batches]

        rowcount = sum(len(rows) for rows in row_batches)
        if self._buffer_all:
            store = ResultStore(self._max_memory, self._spill_dir)
            for chunk in encoded:
                store.append(chunk)
            return ConvertedResult(metas=metas, rowcount=rowcount, store=store)
        return ConvertedResult(metas=metas, chunks=encoded, rowcount=rowcount)
