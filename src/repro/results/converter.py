"""The Result Converter: TDF -> source binary format (Section 4.6).

Unwraps TDF packets coming out of the ODBC Server, converts the rows into
the source database's binary record format (:mod:`repro.protocol.encoding`),
optionally in parallel across batches, and either streams the converted
chunks or buffers them in a :class:`~repro.results.store.ResultStore` when
the source protocol needs the full count up front.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro import tdf
from repro.errors import ConversionError
from repro.core import trace as trace_mod
from repro.protocol.encoding import (
    ColumnMeta, RowCodec, decode_rows, effective_meta)
from repro.results.store import ResultStore
from repro.xtra.types import SQLType


@dataclass
class ConvertedResult:
    """A fully converted result set in source binary format."""

    metas: list[ColumnMeta]
    chunks: list[bytes] = field(default_factory=list)
    rowcount: int = 0
    store: Optional[ResultStore] = None

    def iter_chunks(self) -> Iterator[bytes]:
        if self.store is not None:
            yield from self.store
        else:
            yield from self.chunks

    def rows(self) -> list[tuple]:
        """Decode back into Python rows (what a client library would do)."""
        out: list[tuple] = []
        for chunk in self.iter_chunks():
            out.extend(decode_rows(self.metas, chunk))
        return out

    def close(self) -> None:
        """Release converted row data (buffers and any spill file)."""
        self.chunks = []
        if self.store is not None:
            self.store.close()


class StreamingResult:
    """A converted result whose chunks arrive lazily from the backend.

    Chunks flow through exactly once via :meth:`iter_chunks`; nothing is
    retained unless a consumer needs replay or the total row count first, in
    which case :meth:`buffer` drains the remainder into a bounded
    :class:`ResultStore` (spilling past the memory budget). The interface
    mirrors :class:`ConvertedResult` so downstream layers take either.
    """

    def __init__(self, metas: list[ColumnMeta],
                 source: Iterator[tuple[bytes, int]],
                 max_memory_bytes: int = 64 * 1024 * 1024,
                 spill_dir: Optional[str] = None,
                 on_first_chunk: Optional[Callable[[], None]] = None):
        self.metas = metas
        self._source = source
        self._max_memory = max_memory_bytes
        self._spill_dir = spill_dir
        self._on_first_chunk = on_first_chunk
        self._store: Optional[ResultStore] = None
        self._rowcount = 0
        self._consumed = False
        #: Largest single converted chunk seen — the layer's live footprint
        #: on the pure streaming path.
        self.peak_chunk_bytes = 0

    @property
    def streaming(self) -> bool:
        return not self._consumed and self._store is None

    @property
    def store(self) -> ResultStore:
        """The bounded buffer behind this result (compatibility accessor:
        drains the remaining stream into it on first touch)."""
        return self.buffer()

    @property
    def rowcount(self) -> int:
        """Total rows; buffers the remaining stream to find out."""
        if not self._consumed:
            self.buffer()
        return self._rowcount

    def _pull(self) -> Iterator[bytes]:
        first = True
        for chunk, nrows in self._source:
            self._rowcount += nrows
            if len(chunk) > self.peak_chunk_bytes:
                self.peak_chunk_bytes = len(chunk)
            if first:
                first = False
                if self._on_first_chunk is not None:
                    self._on_first_chunk()
            yield chunk
        self._consumed = True

    def iter_chunks(self) -> Iterator[bytes]:
        """Yield converted chunks: replayed from the buffer once one exists,
        otherwise streamed straight through (single use)."""
        if self._store is not None:
            yield from self._store
            return
        if self._consumed:
            raise ConversionError("converted stream was already consumed")
        yield from self._pull()

    def buffer(self) -> ResultStore:
        """Drain the stream into a bounded store; replayable afterwards."""
        if self._store is None:
            store = ResultStore(self._max_memory, self._spill_dir)
            if not self._consumed:
                for chunk in self._pull():
                    store.append(chunk)
            self._store = store
        return self._store

    def rows(self) -> list[tuple]:
        """Decode back into Python rows (what a client library would do)."""
        self.buffer()
        out: list[tuple] = []
        for chunk in self.iter_chunks():
            out.extend(decode_rows(self.metas, chunk))
        return out

    def close(self) -> None:
        """Release buffered chunks and stop pulling from the backend."""
        source, self._source = self._source, iter(())
        self._consumed = True
        close_source = getattr(source, "close", None)
        if close_source is not None:
            # Run the conversion generator's finally blocks now (span
            # finish, in-flight encode bookkeeping) instead of at GC time —
            # the wire paths call close() even on abrupt client disconnect.
            try:
                close_source()
            except Exception:
                pass
        if self._store is not None:
            self._store.close()
            self._store = None


class ResultConverter:
    """Converts TDF batches into source-format chunks.

    ``parallelism > 1`` converts batches concurrently (the paper forks
    conversion processes; threads suffice at reproduction scale because the
    hot loop is struct packing). The worker pool is created once and lives
    for the converter's lifetime — per-call pool construction would eat the
    parallel speedup on streaming workloads — so callers owning a converter
    should :meth:`close` it (sessions do this on close).
    """

    def __init__(self, parallelism: int = 1,
                 buffer_all: bool = True,
                 max_memory_bytes: int = 64 * 1024 * 1024,
                 spill_dir: Optional[str] = None):
        self._parallelism = max(1, parallelism)
        self._buffer_all = buffer_all
        self._max_memory = max_memory_bytes
        self._spill_dir = spill_dir
        self._pool: Optional[ThreadPoolExecutor] = None

    def set_max_memory(self, max_memory_bytes: int) -> None:
        """Adjust the buffering ceiling for subsequent conversions
        (per-request workload-class budget overrides)."""
        if max_memory_bytes < 0:
            raise ValueError("max_memory_bytes cannot be negative")
        self._max_memory = max_memory_bytes

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._parallelism,
                thread_name_prefix="result-converter")
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool rebuilds on reuse)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ResultConverter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def convert(self, batches: Iterable[bytes],
                declared_types: Optional[list[SQLType]] = None) -> ConvertedResult:
        """Convert an iterable of TDF packets into source binary chunks."""
        decoded: list[tuple[list[str], list[tuple]]] = []
        for packet in batches:
            decoded.append(tdf.decode_batch(packet))
        if not decoded:
            return ConvertedResult(metas=[], chunks=[], rowcount=0)
        columns = decoded[0][0]
        sample_rows = next((rows for __, rows in decoded if rows), [])
        metas = effective_meta(columns, declared_types or [], sample_rows)
        encode_one = RowCodec.for_metas(metas).encode

        row_batches = [rows for __, rows in decoded]
        with trace_mod.span("result_convert", batches=len(row_batches)) as sp:
            if self._parallelism > 1 and len(row_batches) > 1:
                encoded = list(self._ensure_pool().map(
                    encode_one, row_batches))
            else:
                encoded = [encode_one(rows) for rows in row_batches]
            if sp is not None:
                sp.annotate("rows", sum(len(rows) for rows in row_batches))
                sp.annotate("bytes", sum(len(chunk) for chunk in encoded))

        rowcount = sum(len(rows) for rows in row_batches)
        if self._buffer_all:
            store = ResultStore(self._max_memory, self._spill_dir)
            for chunk in encoded:
                store.append(chunk)
            return ConvertedResult(metas=metas, rowcount=rowcount, store=store)
        return ConvertedResult(metas=metas, chunks=encoded, rowcount=rowcount)

    def convert_stream(self, batches: Iterable[bytes],
                       declared_types: Optional[list[SQLType]] = None,
                       timing=None,
                       on_first_chunk: Optional[Callable[[], None]] = None,
                       ) -> StreamingResult:
        """Convert TDF packets into source chunks one batch at a time.

        Pulls lazily from *batches*; only the first packet is decoded up
        front (it supplies the column sample for meta inference, and it makes
        malformed results fail at convert time). Decode and encode time is
        accumulated into the ``result_conversion`` stage of *timing* as the
        stream is consumed. With ``parallelism > 1`` the converter keeps up
        to that many encodes in flight ahead of the consumer — the paper's
        parallel conversion, still bounded.
        """
        def measure():
            return (timing.measure("result_conversion")
                    if timing is not None else nullcontext())

        iterator = iter(batches)
        with measure():
            first_packet = next(iterator, None)
        if first_packet is None:
            return StreamingResult([], iter(()), self._max_memory,
                                   self._spill_dir, on_first_chunk)
        with measure():
            columns, sample = tdf.decode_batch(first_packet)
            metas = effective_meta(columns, declared_types or [], sample)
        codec = RowCodec.for_metas(metas)  # one compiled codec per stream

        def decoded_batches() -> Iterator[list[tuple]]:
            yield sample
            while True:
                packet = next(iterator, None)  # backend pull, not conversion
                if packet is None:
                    return
                with measure():
                    __, rows = tdf.decode_batch(packet)
                yield rows

        def chunk_source() -> Iterator[tuple[bytes, int]]:
            if self._parallelism > 1:
                pool = self._ensure_pool()
                in_flight: deque = deque()
                for rows in decoded_batches():
                    in_flight.append(
                        (pool.submit(codec.encode, rows), len(rows)))
                    while len(in_flight) > self._parallelism:
                        future, nrows = in_flight.popleft()
                        yield future.result(), nrows
                while in_flight:
                    future, nrows = in_flight.popleft()
                    yield future.result(), nrows
            else:
                encode = codec.encode
                for rows in decoded_batches():
                    with measure():
                        chunk = encode(rows)
                    yield chunk, len(rows)

        def traced_source() -> Iterator[tuple[bytes, int]]:
            # One span covers the whole lazy conversion, opened at first
            # pull on whatever thread is draining (so it nests under the
            # wire-encode span on the server path) and closed when the
            # stream ends — or clamped by Trace.finish if abandoned.
            span = trace_mod.begin_span("result_convert")
            chunks = rows = size = 0
            try:
                for chunk, nrows in chunk_source():
                    chunks += 1
                    rows += nrows
                    size += len(chunk)
                    yield chunk, nrows
            finally:
                if span is not None:
                    span.annotate("chunks", chunks)
                    span.annotate("rows", rows)
                    span.annotate("bytes", size)
                    span.finish()

        return StreamingResult(metas, traced_source(), self._max_memory,
                               self._spill_dir, on_first_chunk)
