"""The Result Store: bounded buffering with spill-to-disk.

Some source protocols require the total row count before any row can be sent
(Section 4.6), forcing Hyper-Q to buffer entire result sets. When buffered
chunks exceed the memory budget, the store spills them to temporary files and
replays them on iteration, mirroring the paper's spill-file design.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
from typing import Iterator, Optional

_OPEN_LOCK = threading.Lock()


class ResultStore:
    """Append-only store of binary chunks with a memory cap.

    Chunks stay in memory until ``max_memory_bytes`` is exceeded; from then
    on every chunk goes to a spill file. Iteration yields chunks in append
    order regardless of where they live.
    """

    #: Stores constructed but not yet closed, process-wide. The wire paths
    #: must close every buffer even on abrupt client disconnect; the
    #: resilience suite asserts this count returns to its baseline.
    _open_stores = 0

    def __init__(self, max_memory_bytes: int = 64 * 1024 * 1024,
                 spill_dir: Optional[str] = None):
        self._max_memory = max_memory_bytes
        self._spill_dir = spill_dir
        self._memory_chunks: list[bytes] = []
        self._memory_bytes = 0
        self._high_water = 0
        self._spill_file: Optional[tempfile._TemporaryFileWrapper] = None
        self._spilled_chunks = 0
        self._closed = False
        with _OPEN_LOCK:
            ResultStore._open_stores += 1

    @classmethod
    def open_count(cls) -> int:
        """Process-wide count of stores created and not yet closed."""
        with _OPEN_LOCK:
            return cls._open_stores

    @property
    def memory_bytes(self) -> int:
        return self._memory_bytes

    @property
    def high_water(self) -> int:
        """Peak bytes of chunk data held in memory over the store's life."""
        return self._high_water

    @property
    def spilled(self) -> bool:
        return self._spill_file is not None

    @property
    def chunk_count(self) -> int:
        return len(self._memory_chunks) + self._spilled_chunks

    def append(self, chunk: bytes) -> None:
        if self._closed:
            raise ValueError("result store is closed")
        if self._spill_file is None and \
                self._memory_bytes + len(chunk) <= self._max_memory:
            self._memory_chunks.append(chunk)
            self._memory_bytes += len(chunk)
            if self._memory_bytes > self._high_water:
                self._high_water = self._memory_bytes
            return
        if self._spill_file is None:
            self._spill_file = tempfile.NamedTemporaryFile(
                prefix="hyperq-spill-", dir=self._spill_dir, delete=False)
        self._spill_file.write(struct.pack("<I", len(chunk)))
        self._spill_file.write(chunk)
        self._spilled_chunks += 1

    def __iter__(self) -> Iterator[bytes]:
        yield from self._memory_chunks
        if self._spill_file is not None:
            self._spill_file.flush()
            with open(self._spill_file.name, "rb") as handle:
                while True:
                    header = handle.read(4)
                    if not header:
                        break
                    (length,) = struct.unpack("<I", header)
                    yield handle.read(length)

    def close(self) -> None:
        """Release buffers and delete any spill file."""
        if not self._closed:
            self._closed = True
            with _OPEN_LOCK:
                ResultStore._open_stores -= 1
        self._memory_chunks = []
        self._memory_bytes = 0
        if self._spill_file is not None:
            name = self._spill_file.name
            self._spill_file.close()
            try:
                os.unlink(name)
            except OSError:
                pass
            self._spill_file = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
