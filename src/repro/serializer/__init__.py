"""Per-target SQL serializers over XTRA (Section 4.4)."""

from repro.serializer.base import Serializer
from repro.serializer.dialects import serializer_for

__all__ = ["Serializer", "serializer_for"]
