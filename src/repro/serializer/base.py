"""The ANSI serializer: XTRA -> target SQL text.

Serialization walks the XTRA tree, generating a SQL block per operator and
formatting blocks according to the target's keywords (Section 4.4). The key
mechanism is the *render environment*: every operator's scalar expressions
reference its child's output columns, so each rendered FROM item publishes a
SQL spelling for every output position; expression rendering resolves
ColumnRefs through a chain of such environments (outer chains serve
correlated subqueries).

Teradata-only builtin spellings (ZEROIFNULL, CHARS, INDEX, ...) are mapped to
target spellings here — the paper's guideline that "names of otherwise
standard features can be dealt with in the system-specific serializer".
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.errors import SerializeError
from repro.core.tracker import FeatureTracker
from repro.transform.capabilities import CapabilityProfile, LimitSyntax
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn, RelNode
from repro.xtra.scalars import ScalarExpr


class _Env:
    """Maps (qualifier, name) of child output columns to SQL spellings."""

    def __init__(self, entries: list[tuple[OutputColumn, str]],
                 parent: Optional["_Env"] = None):
        self.entries = entries
        self.parent = parent

    def resolve(self, ref: s.ColumnRef) -> Optional[str]:
        env: Optional[_Env] = self
        while env is not None:
            hits = [
                text for col, text in env.entries
                if col.name == ref.name.upper()
                and (ref.table is None or col.qualifier == ref.table.upper())
            ]
            if len(hits) > 1 and ref.table is None:
                # Prefer an exact single hit in an outer scope over ambiguity?
                # No: ambiguity within one scope is an error upstream; take
                # the first (binder already disambiguated positions).
                return hits[0]
            if hits:
                return hits[0]
            env = env.parent
        return None


# Words every modeled target treats as reserved: a bare identifier spelled
# like one of these must be quoted or the emitted SQL re-parses differently
# (or not at all). Mirrors the backend grammar's keyword set.
RESERVED_WORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET DISTINCT ALL AS ON
    AND OR NOT IN IS NULL LIKE ESCAPE BETWEEN EXISTS ANY SOME CASE WHEN THEN
    ELSE END CAST EXTRACT SUBSTRING POSITION FOR JOIN INNER LEFT RIGHT FULL
    OUTER CROSS UNION INTERSECT EXCEPT WITH RECURSIVE VALUES INSERT INTO
    UPDATE SET DELETE CREATE TABLE VIEW DROP IF TEMPORARY TEMP REPLACE MERGE
    USING MATCHED ASC DESC NULLS FIRST LAST TOP TIES DATE TIME TIMESTAMP
    INTERVAL YEAR MONTH DAY HOUR MINUTE SECOND TRUE FALSE DEFAULT PRIMARY KEY
    UNIQUE CHECK REFERENCES FOREIGN CONSTRAINT BEGIN COMMIT ROLLBACK WORK
    TRANSACTION OVER PARTITION ROWS RANGE UNBOUNDED PRECEDING FOLLOWING
    CURRENT ROW ROLLUP CUBE GROUPING SETS TRUNCATE
""".split())


def plain_ident(name: str) -> bool:
    """True when *name* can be emitted bare in any modeled dialect."""
    return bool(name) and (name[0].isalpha() or name[0] == "_") and \
        all(ch.isalnum() or ch == "_" for ch in name) and \
        name.upper() not in RESERVED_WORDS


class Serializer:
    """Serializes XTRA statements into the target's SQL dialect."""

    #: Teradata function spelling -> target spelling (None = special-cased).
    FUNCTION_MAP: dict[str, Optional[str]] = {
        "CHARS": "LENGTH", "CHARACTERS": "LENGTH",
        "CHARACTER_LENGTH": "LENGTH", "CHAR_LENGTH": "LENGTH",
        "SUBSTR": "SUBSTRING",
        "ZEROIFNULL": None, "NULLIFZERO": None, "INDEX": None,
        "POSITION": None, "SUBSTRING": None,
    }

    def __init__(self, profile: CapabilityProfile,
                 tracker: Optional[FeatureTracker] = None):
        self._profile = profile
        self._tracker = tracker
        self._alias_counter = 0

    # -- public API ------------------------------------------------------------------

    def serialize(self, statement: r.Statement) -> str:
        """Render one XTRA statement as SQL text for the target."""
        self._alias_counter = 0
        if isinstance(statement, r.Query):
            sql, __ = self._render_query(statement.plan, None)
            return sql
        if isinstance(statement, r.Insert):
            return self._render_insert(statement)
        if isinstance(statement, r.Update):
            return self._render_update(statement)
        if isinstance(statement, r.Delete):
            return self._render_delete(statement)
        if isinstance(statement, r.CreateTable):
            return self._render_create_table(statement)
        if isinstance(statement, r.DropTable):
            suffix = " IF EXISTS" if statement.if_exists else ""
            return f"DROP TABLE{suffix} {self.ident(statement.name)}"
        if isinstance(statement, r.CreateView):
            return self._render_create_view(statement)
        if isinstance(statement, r.DropView):
            suffix = " IF EXISTS" if statement.if_exists else ""
            return f"DROP VIEW{suffix} {self.ident(statement.name)}"
        if isinstance(statement, r.Merge):
            return self._render_merge(statement)
        if isinstance(statement, r.Transaction):
            return {"BEGIN": "BEGIN", "COMMIT": "COMMIT",
                    "ROLLBACK": "ROLLBACK"}[statement.action]
        raise SerializeError(
            f"statement {type(statement).__name__} has no target serialization "
            "(it requires emulation)")

    # -- dialect hooks -----------------------------------------------------------------

    def ident(self, name: str) -> str:
        """Render an identifier (quote when necessary)."""
        if plain_ident(name):
            return name
        return '"' + name.replace('"', '""') + '"'

    def type_sql(self, declared: t.SQLType) -> str:
        kind = declared.kind
        if kind is t.TypeKind.DECIMAL:
            return f"DECIMAL({declared.precision or 18},{declared.scale or 0})"
        if kind is t.TypeKind.CHAR:
            return f"CHAR({declared.length or 1})"
        if kind is t.TypeKind.VARCHAR:
            if declared.length is not None:
                return f"VARCHAR({declared.length})"
            return "VARCHAR(4096)"
        if kind is t.TypeKind.FLOAT:
            return "DOUBLE PRECISION"
        if kind is t.TypeKind.PERIOD:
            raise SerializeError(
                "PERIOD has no target representation; Hyper-Q splits it into "
                "begin/end columns before DDL reaches the serializer")
        if kind is t.TypeKind.UNKNOWN:
            return "VARCHAR(4096)"
        return kind.value

    def _note(self, feature: str) -> None:
        if self._tracker is not None:
            self._tracker.note(feature, "serializer")

    def _fresh(self, prefix: str) -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    # -- literals ---------------------------------------------------------------------------

    def literal(self, value: object, declared: t.SQLType) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            text = repr(value)
            return text
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        if isinstance(value, datetime.datetime):
            return f"TIMESTAMP '{value.isoformat(sep=' ')}'"
        if isinstance(value, datetime.date):
            return f"DATE '{value.isoformat()}'"
        raise SerializeError(f"cannot render literal {value!r}")

    # -- expressions -------------------------------------------------------------------------

    def render_expr(self, expr: ScalarExpr, env: Optional[_Env]) -> str:
        if isinstance(expr, s.Const):
            return self.literal(expr.value, expr.type)
        if isinstance(expr, s.ColumnRef):
            if env is not None:
                resolved = env.resolve(expr)
                if resolved is not None:
                    return resolved
            # Unresolved references render as written (e.g. ORDER BY aliases).
            if expr.table:
                return f"{self.ident(expr.table)}.{self.ident(expr.name)}"
            return self.ident(expr.name)
        if isinstance(expr, s.Param):
            return "?"
        if isinstance(expr, s.Negate):
            return f"(- {self.render_expr(expr.operand, env)})"
        if isinstance(expr, s.Arith):
            return self._render_arith(expr, env)
        if isinstance(expr, s.Comp):
            left = self.render_expr(expr.left, env)
            right = self.render_expr(expr.right, env)
            return f"{left} {expr.op.value} {right}"
        if isinstance(expr, s.BoolOp):
            joiner = f" {expr.op.value} "
            return "(" + joiner.join(self.render_expr(arg, env)
                                     for arg in expr.args) + ")"
        if isinstance(expr, s.Not):
            return f"NOT ({self.render_expr(expr.operand, env)})"
        if isinstance(expr, s.IsNull):
            keyword = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"{self.render_expr(expr.operand, env)} {keyword}"
        if isinstance(expr, s.InList):
            items = ", ".join(self.render_expr(item, env) for item in expr.items)
            keyword = "NOT IN" if expr.negated else "IN"
            return f"{self.render_expr(expr.operand, env)} {keyword} ({items})"
        if isinstance(expr, s.Between):
            keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
            return (f"{self.render_expr(expr.operand, env)} {keyword} "
                    f"{self.render_expr(expr.low, env)} AND "
                    f"{self.render_expr(expr.high, env)}")
        if isinstance(expr, s.Like):
            keyword = "NOT LIKE" if expr.negated else "LIKE"
            out = (f"{self.render_expr(expr.operand, env)} {keyword} "
                   f"{self.render_expr(expr.pattern, env)}")
            if expr.escape:
                out += f" ESCAPE '{expr.escape}'"
            return out
        if isinstance(expr, s.FuncCall):
            return self._render_func(expr, env)
        if isinstance(expr, s.AggCall):
            return self.render_agg(expr, env)
        if isinstance(expr, s.Case):
            return self._render_case(expr, env)
        if isinstance(expr, s.Cast):
            return (f"CAST({self.render_expr(expr.operand, env)} AS "
                    f"{self.type_sql(expr.type)})")
        if isinstance(expr, s.Extract):
            return (f"EXTRACT({expr.field_name.value} FROM "
                    f"{self.render_expr(expr.operand, env)})")
        if isinstance(expr, s.SubqueryExpr):
            return self._render_subquery_expr(expr, env)
        if isinstance(expr, s.WindowFunc):
            return self.render_window(expr, env)
        raise SerializeError(f"cannot render {type(expr).__name__}")

    def _render_arith(self, expr: s.Arith, env: Optional[_Env]) -> str:
        left = self.render_expr(expr.left, env)
        right = self.render_expr(expr.right, env)
        if expr.op is s.ArithOp.POW:
            return f"POWER({left}, {right})"
        if expr.op is s.ArithOp.MOD:
            return f"MOD({left}, {right})"
        return f"({left} {expr.op.value} {right})"

    def _render_func(self, expr: s.FuncCall, env: Optional[_Env]) -> str:
        name = expr.name.upper()
        args = [self.render_expr(arg, env) for arg in expr.args]
        if name in ("ZEROIFNULL", "NULLIFZERO"):
            self._note("zeroifnull")
            target = "COALESCE" if name == "ZEROIFNULL" else "NULLIF"
            return f"{target}({args[0]}, 0)"
        if name in ("CHARS", "CHARACTERS", "CHARACTER_LENGTH", "CHAR_LENGTH"):
            self._note("chars_function")
            length_name = self.FUNCTION_MAP.get("LENGTH") or "LENGTH"
            return f"{length_name}({args[0]})"
        if name == "INDEX":
            self._note("index_function")
            return f"POSITION({args[1]} IN {args[0]})"
        if name == "POSITION":
            return f"POSITION({args[0]} IN {args[1]})"
        if name in ("SUBSTRING", "SUBSTR"):
            out = f"SUBSTRING({args[0]} FROM {args[1]}"
            if len(args) > 2:
                out += f" FOR {args[2]}"
            return out + ")"
        mapped = self.FUNCTION_MAP.get(name, name)
        if mapped is None:
            mapped = name
        return f"{mapped}({', '.join(args)})"

    def render_agg(self, expr: s.AggCall, env: Optional[_Env]) -> str:
        if expr.star:
            return "COUNT(*)"
        inner = ", ".join(self.render_expr(arg, env) for arg in expr.args)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return f"{expr.name.upper()}({inner})"

    def _render_case(self, expr: s.Case, env: Optional[_Env]) -> str:
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(self.render_expr(expr.operand, env))
        for condition, result in zip(expr.conditions, expr.results):
            parts.append(f"WHEN {self.render_expr(condition, env)} "
                         f"THEN {self.render_expr(result, env)}")
        if expr.default is not None:
            parts.append(f"ELSE {self.render_expr(expr.default, env)}")
        parts.append("END")
        return " ".join(parts)

    def _render_subquery_expr(self, expr: s.SubqueryExpr, env: Optional[_Env]) -> str:
        sub_sql, __ = self._render_query(expr.plan, env)
        if expr.kind is s.SubqueryKind.EXISTS:
            prefix = "NOT EXISTS" if expr.negated else "EXISTS"
            return f"{prefix} ({sub_sql})"
        if expr.kind is s.SubqueryKind.SCALAR:
            return f"({sub_sql})"
        left_texts = [self.render_expr(item, env) for item in expr.left]
        if len(left_texts) > 1:
            if not self._profile.vector_subquery:
                raise SerializeError(
                    "vector subquery reached serialization for a target "
                    "without support (transformer should have rewritten it)")
            left_sql = "(" + ", ".join(left_texts) + ")"
        else:
            left_sql = left_texts[0]
        if expr.kind is s.SubqueryKind.IN:
            keyword = "NOT IN" if expr.negated else "IN"
            return f"{left_sql} {keyword} ({sub_sql})"
        op = (expr.op or s.CompOp.EQ).value
        quantifier = (expr.quantifier or s.Quantifier.ANY).value
        out = f"{left_sql} {op} {quantifier} ({sub_sql})"
        if expr.negated:
            out = f"NOT ({out})"
        return out

    def render_window(self, expr: s.WindowFunc, env: Optional[_Env]) -> str:
        args = ", ".join(self.render_expr(arg, env) for arg in expr.args)
        over_parts = []
        if expr.partition_by:
            cols = ", ".join(self.render_expr(part, env)
                             for part in expr.partition_by)
            over_parts.append(f"PARTITION BY {cols}")
        if expr.order_by:
            keys = ", ".join(self.render_sort_key(key, env)
                             for key in expr.order_by)
            over_parts.append(f"ORDER BY {keys}")
        return f"{expr.name.upper()}({args}) OVER ({' '.join(over_parts)})"

    def render_sort_key(self, key: s.SortKey, env: Optional[_Env]) -> str:
        base = self.render_expr(key.expr, env)
        direction = "ASC" if key.ascending else "DESC"
        if key.nulls_first is None:
            return f"{base} {direction}"
        if self._profile.explicit_null_ordering:
            placement = "NULLS FIRST" if key.nulls_first else "NULLS LAST"
            return f"{base} {direction} {placement}"
        # Emulate via a CASE prefix key on targets without the syntax; the
        # caller must emit this helper as an extra leading key.
        return f"{base} {direction}"

    def null_placement_keys(self, key: s.SortKey, env: Optional[_Env]) -> list[str]:
        """The full ORDER BY key list for one logical key, adding a CASE
        prefix when explicit NULLS FIRST/LAST is unavailable."""
        if key.nulls_first is None or self._profile.explicit_null_ordering:
            return [self.render_sort_key(key, env)]
        base = self.render_expr(key.expr, env)
        null_rank = "0" if key.nulls_first else "1"
        other = "1" if key.nulls_first else "0"
        case = f"CASE WHEN {base} IS NULL THEN {null_rank} ELSE {other} END ASC"
        return [case, self.render_sort_key(key, env)]

    # -- relational rendering ---------------------------------------------------------------------

    def _render_source(self, node: RelNode, outer: Optional[_Env]):
        """Render a FROM item: returns (sql fragment, env entries)."""
        if isinstance(node, r.Get):
            qualifier = (node.alias or node.table.name).upper()
            sql = self.ident(node.table.name)
            if node.alias:
                sql += f" {self.ident(node.alias.upper())}"
            entries = [
                (col, f"{self.ident(qualifier)}.{self.ident(col.name)}")
                for col in node.output_columns()
            ]
            return sql, entries
        if isinstance(node, r.CTERef):
            qualifier = (node.alias or node.name).upper()
            sql = self.ident(node.name)
            if node.alias:
                sql += f" {self.ident(node.alias.upper())}"
            entries = [
                (col, f"{self.ident(qualifier)}.{self.ident(col.name)}")
                for col in node.output_columns()
            ]
            return sql, entries
        if isinstance(node, r.DerivedTable):
            inner_sql, out_names = self._render_query(node.child, outer)
            alias = node.alias.upper()
            sql = f"({inner_sql}) AS {self.ident(alias)}"
            columns = node.output_columns()
            if node.column_names:
                names = [name.upper() for name in node.column_names]
                sql += " (" + ", ".join(self.ident(name) for name in names) + ")"
            else:
                names = out_names
            entries = [
                (col, f"{self.ident(alias)}.{self.ident(name)}")
                for col, name in zip(columns, names)
            ]
            return sql, entries
        if isinstance(node, r.Join):
            left_sql, left_entries = self._render_source(node.left, outer)
            right_sql, right_entries = self._render_source(node.right, outer)
            entries = left_entries + right_entries
            if node.kind is r.JoinKind.CROSS or node.condition is None:
                return f"{left_sql} CROSS JOIN {right_sql}", entries
            env = _Env(entries, outer)
            cond = self.render_expr(node.condition, env)
            keyword = {"INNER": "JOIN", "LEFT": "LEFT JOIN",
                       "RIGHT": "RIGHT JOIN", "FULL": "FULL JOIN"}[node.kind.value]
            return f"{left_sql} {keyword} {right_sql} ON {cond}", entries
        # Fallback: any other operator becomes a derived table.
        alias = self._fresh("_Q")
        inner_sql, out_names = self._render_query(node, outer)
        entries = [
            (col, f"{self.ident(alias)}.{self.ident(name)}")
            for col, name in zip(node.output_columns(), out_names)
        ]
        return f"({inner_sql}) AS {self.ident(alias)}", entries

    def _render_query(self, plan: RelNode, outer: Optional[_Env]):
        """Render a full SELECT; returns (sql, output names)."""
        node = plan
        with_prefix = ""
        if isinstance(node, r.With):
            with_prefix = self._render_with(node, outer)
            node = node.body

        # Peel ordering / limiting / distinct / strip-projection layers.
        limit: Optional[r.Limit] = None
        sort: Optional[r.Sort] = None
        strip: Optional[r.Project] = None
        distinct = False
        while True:
            if isinstance(node, r.Limit) and limit is None:
                limit = node
                node = node.child
            elif isinstance(node, r.Sort) and sort is None:
                sort = node
                node = node.child
            elif isinstance(node, r.Project) and isinstance(node.child, r.Sort) \
                    and sort is None and strip is None:
                strip = node
                node = node.child
            elif isinstance(node, r.Distinct):
                distinct = True
                node = node.child
            else:
                break

        if isinstance(node, r.SetOp):
            sql, names = self._render_setop(node, outer)
            sql = self._attach_order_limit_names(sql, names, sort, limit, outer)
            return with_prefix + sql, names
        if isinstance(node, r.Values):
            sql, names = self._render_values_select(node, outer)
            return with_prefix + sql, names
        if not isinstance(node, r.Project):
            # Render whatever remains via a generic wrapper projection.
            names = [col.name for col in node.output_columns()]
            exprs = [s.ColumnRef(col.name, col.qualifier, col.type)
                     for col in node.output_columns()]
            node = r.Project(node, exprs, names)
        sql, names = self._render_block(node, distinct, sort, limit, strip, outer)
        return with_prefix + sql, names

    def _render_with(self, node: r.With, outer: Optional[_Env]) -> str:
        rendered = []
        recursive = any(cte.recursive for cte in node.ctes)
        if recursive and not self._profile.recursive_cte:
            raise SerializeError(
                "recursive CTE reached serialization for a target without "
                "support (the emulator should have handled it)")
        for cte in node.ctes:
            inner_sql, __ = self._render_query(cte.plan, outer)
            header = self.ident(cte.name.upper())
            if cte.column_names:
                header += " (" + ", ".join(self.ident(name.upper())
                                           for name in cte.column_names) + ")"
            rendered.append(f"{header} AS ({inner_sql})")
        keyword = "WITH RECURSIVE " if recursive else "WITH "
        return keyword + ", ".join(rendered) + " "

    def _render_setop(self, node: r.SetOp, outer: Optional[_Env]):
        left_sql, names = self._render_query(node.left, outer)
        right_sql, __ = self._render_query(node.right, outer)
        keyword = node.kind.value + (" ALL" if node.all else "")
        return f"({left_sql}) {keyword} ({right_sql})", names

    def _render_values_select(self, node: r.Values, outer: Optional[_Env]):
        if node.names:
            raise SerializeError("bare VALUES relations only support SELECT "
                                 "without FROM")
        return "SELECT 1", ["_ONE"]

    def _attach_order_limit_names(self, sql: str, names: list[str],
                                  sort: Optional[r.Sort], limit: Optional[r.Limit],
                                  outer: Optional[_Env]) -> str:
        if sort is not None:
            keys = []
            for key in sort.keys:
                keys.extend(self.null_placement_keys(key, None))
            sql = f"{sql} ORDER BY {', '.join(keys)}"
        if limit is not None:
            sql = self._attach_limit(sql, limit, top_allowed=False)
        return sql

    def _attach_limit(self, sql: str, limit: r.Limit, top_allowed: bool) -> str:
        if limit.count is None and not limit.offset:
            return sql
        if self._profile.limit_syntax is LimitSyntax.LIMIT or not top_allowed:
            if limit.count is not None:
                sql += f" LIMIT {limit.count}"
            if limit.offset:
                sql += f" OFFSET {limit.offset}"
            return sql
        return sql  # TOP handled in the SELECT clause by _render_block

    # -- the core SELECT block --------------------------------------------------------------------

    def _render_block(self, project: r.Project, distinct: bool,
                      sort: Optional[r.Sort], limit: Optional[r.Limit],
                      strip: Optional[r.Project], outer: Optional[_Env]):
        # Identify the canonical operator stack under the projection.
        qualify_pred: Optional[ScalarExpr] = None
        window: Optional[r.Window] = None
        having_pred: Optional[ScalarExpr] = None
        aggregate: Optional[r.Aggregate] = None
        where_pred: Optional[ScalarExpr] = None

        cursor: RelNode = project.child
        if isinstance(cursor, r.Filter) and isinstance(cursor.child, r.Window):
            qualify_pred = cursor.predicate
            cursor = cursor.child
        if isinstance(cursor, r.Window):
            window = cursor
            cursor = cursor.child
        if isinstance(cursor, r.Filter) and isinstance(cursor.child, r.Aggregate):
            having_pred = cursor.predicate
            cursor = cursor.child
        if isinstance(cursor, r.Aggregate):
            aggregate = cursor
            cursor = cursor.child
        if isinstance(cursor, r.Filter):
            where_pred = cursor.predicate
            cursor = cursor.child
        source = cursor

        # FROM-less SELECT (over the unit Values row).
        from_sql: Optional[str] = None
        entries: list[tuple[OutputColumn, str]] = []
        if isinstance(source, r.Values) and not source.names:
            if source.rows != [[]]:
                raise SerializeError("non-unit VALUES cannot anchor a SELECT")
        else:
            from_sql, entries = self._render_source(source, outer)
        base_env = _Env(entries, outer)

        where_sql = (self.render_expr(where_pred, base_env)
                     if where_pred is not None else None)

        group_sql: list[str] = []
        env_after_agg = base_env
        if aggregate is not None:
            if aggregate.kind is not r.GroupingKind.SIMPLE \
                    and not self._profile.grouping_extensions:
                raise SerializeError(
                    "extended grouping reached serialization for a target "
                    "without support (transformer should have expanded it)")
            agg_entries: list[tuple[OutputColumn, str]] = []
            key_sql: list[str] = []
            for expr, name in zip(aggregate.group_by, aggregate.group_names):
                text = self.render_expr(expr, base_env)
                key_sql.append(text)
                agg_entries.append((OutputColumn(name, expr.type), text))
            group_sql = self._grouping_clause(aggregate, key_sql)
            for agg_call, name in zip(aggregate.aggs, aggregate.agg_names):
                text = self.render_agg(agg_call, base_env)
                agg_entries.append((OutputColumn(name, agg_call.type), text))
            env_after_agg = _Env(agg_entries, outer)

        having_sql = (self.render_expr(having_pred, env_after_agg)
                      if having_pred is not None else None)

        # -- window handling -------------------------------------------------------
        if window is not None and qualify_pred is not None:
            return self._render_qualify_block(
                project, distinct, sort, limit, strip, outer,
                window, qualify_pred, from_sql, where_sql, group_sql,
                having_sql, env_after_agg)

        env_select = env_after_agg
        if window is not None:
            window_entries = list(env_after_agg.entries)
            for func, name in zip(window.funcs, window.names):
                text = self.render_window(func, env_after_agg)
                window_entries.append((OutputColumn(name, func.type), text))
            env_select = _Env(window_entries, outer)

        exprs, names = _visible_projection(project, strip)
        select_parts, out_names = self._render_select_list(exprs, names, env_select)
        order_sql = self._render_order(sort, strip, project, env_select, out_names)

        return self._assemble(select_parts, out_names, distinct, from_sql,
                              where_sql, group_sql, having_sql, order_sql,
                              limit), out_names

    def _grouping_clause(self, aggregate: r.Aggregate,
                         key_sql: list[str]) -> list[str]:
        """GROUP BY terms for an aggregate, ROLLUP/CUBE/SETS rendered natively."""
        if aggregate.kind is r.GroupingKind.SIMPLE:
            return key_sql
        if aggregate.kind is r.GroupingKind.SETS:
            sets = [
                "(" + ", ".join(key_sql[index] for index in indexes) + ")"
                for indexes in aggregate.grouping_sets or []
            ]
            return ["GROUPING SETS (" + ", ".join(sets) + ")"]
        return [f"{aggregate.kind.value} (" + ", ".join(key_sql) + ")"]

    def _render_select_list(self, exprs: list[ScalarExpr], names: list[str],
                            env: _Env):
        out_names = _uniquify([name.upper() for name in names])
        parts = []
        for expr, name in zip(exprs, out_names):
            text = self.render_expr(expr, env)
            parts.append(f"{text} AS {self.ident(name)}")
        return parts, out_names

    def _render_order(self, sort: Optional[r.Sort], strip: Optional[r.Project],
                      project: r.Project, env: _Env,
                      out_names: list[str]) -> Optional[str]:
        if sort is None and strip is not None:
            inner = strip.child
            assert isinstance(inner, r.Sort)
            sort = inner
        if sort is None:
            return None
        name_to_expr = {name.upper(): expr
                        for name, expr in zip(project.names, project.exprs)}
        keys: list[str] = []
        for key in sort.keys:
            expr = key.expr
            rendered_key = key
            if isinstance(expr, s.ColumnRef) and expr.table is None:
                target = name_to_expr.get(expr.name.upper())
                if target is not None and expr.name.upper() not in out_names:
                    # Hidden sort column: inline its defining expression.
                    rendered_key = s.SortKey(target, key.ascending, key.nulls_first)
                elif target is not None:
                    # Visible output column: order by its alias.
                    rendered_key = s.SortKey(s.ColumnRef(expr.name.upper()),
                                             key.ascending, key.nulls_first)
            rendered = []
            if isinstance(rendered_key.expr, s.ColumnRef) \
                    and rendered_key.expr.table is None \
                    and rendered_key.expr.name.upper() in out_names:
                # Alias reference: resolve to the bare alias, not the env.
                base = self.ident(rendered_key.expr.name.upper())
                direction = "ASC" if rendered_key.ascending else "DESC"
                if rendered_key.nulls_first is None \
                        or not self._profile.explicit_null_ordering:
                    alias_key = s.SortKey(s.ColumnRef(rendered_key.expr.name),
                                          rendered_key.ascending,
                                          rendered_key.nulls_first)
                    rendered = self.null_placement_keys(alias_key, None)
                else:
                    placement = ("NULLS FIRST" if rendered_key.nulls_first
                                 else "NULLS LAST")
                    rendered = [f"{base} {direction} {placement}"]
            else:
                rendered = self.null_placement_keys(rendered_key, env)
            keys.extend(rendered)
        return ", ".join(keys)

    def _render_qualify_block(self, project, distinct, sort, limit, strip,
                              outer, window, qualify_pred, from_sql, where_sql,
                              group_sql, having_sql, env_inner):
        """Two-block rendering for QUALIFY-style post-window filters:
        the inner block computes pass-through columns plus window values, the
        outer block filters and projects (the paper's Example 3 shape)."""
        inner_cols = window.child.output_columns()
        inner_names = _uniquify([col.name for col in inner_cols])
        select_parts = []
        alias = self._fresh("_QW")
        outer_entries: list[tuple[OutputColumn, str]] = []
        for col, name in zip(inner_cols, inner_names):
            ref = s.ColumnRef(col.name, col.qualifier, col.type)
            select_parts.append(f"{self.render_expr(ref, env_inner)} AS "
                                f"{self.ident(name)}")
            outer_entries.append((col, f"{self.ident(alias)}.{self.ident(name)}"))
        window_names = _uniquify(inner_names + [n.upper() for n in window.names])
        window_names = window_names[len(inner_names):]
        for func, name, out_col in zip(window.funcs, window_names,
                                       window.output_columns()[len(inner_cols):]):
            text = self.render_window(func, env_inner)
            select_parts.append(f"{text} AS {self.ident(name)}")
            outer_entries.append((out_col, f"{self.ident(alias)}.{self.ident(name)}"))
        inner_sql = self._assemble(select_parts, inner_names + window_names,
                                   False, from_sql, where_sql, group_sql,
                                   having_sql, None, None)
        outer_env = _Env(outer_entries, outer)
        exprs, names = _visible_projection(project, strip)
        outer_project_parts, out_names = self._render_select_list(exprs, names,
                                                                  outer_env)
        qualify_sql = self.render_expr(qualify_pred, outer_env)
        order_sql = self._render_order(sort, strip, project, outer_env, out_names)
        return self._assemble(
            outer_project_parts, out_names, distinct,
            f"({inner_sql}) AS {self.ident(alias)}", qualify_sql, [], None,
            order_sql, limit), out_names

    def _assemble(self, select_parts: list[str], out_names: list[str],
                  distinct: bool, from_sql: Optional[str],
                  where_sql: Optional[str], group_sql: list[str],
                  having_sql: Optional[str], order_sql: Optional[str],
                  limit: Optional[r.Limit]) -> str:
        head = "SELECT "
        if distinct:
            head += "DISTINCT "
        if limit is not None and limit.count is not None \
                and self._profile.limit_syntax is LimitSyntax.TOP:
            head += f"TOP {limit.count} "
            if limit.with_ties:
                head += "WITH TIES "
            limit = None
        sql = head + ", ".join(select_parts)
        if from_sql:
            sql += f" FROM {from_sql}"
        if where_sql:
            sql += f" WHERE {where_sql}"
        if group_sql:
            sql += f" GROUP BY {', '.join(group_sql)}"
        if having_sql:
            sql += f" HAVING {having_sql}"
        if order_sql:
            sql += f" ORDER BY {order_sql}"
        if limit is not None:
            sql = self._attach_limit(sql, limit, top_allowed=False)
        return sql

    # -- DML / DDL ---------------------------------------------------------------------------

    def _render_insert(self, statement: r.Insert) -> str:
        head = f"INSERT INTO {self.ident(statement.table)}"
        if statement.columns:
            head += " (" + ", ".join(self.ident(name.upper())
                                     for name in statement.columns) + ")"
        if isinstance(statement.source, r.Values):
            rows = []
            for row in statement.source.rows:
                rows.append("(" + ", ".join(self.render_expr(cell, None)
                                            for cell in row) + ")")
            return f"{head} VALUES {', '.join(rows)}"
        inner_sql, __ = self._render_query(statement.source, None)
        return f"{head} {inner_sql}"

    def _render_update(self, statement: r.Update) -> str:
        table = statement.table.upper()
        qualifier = (statement.alias or table).upper()
        env = _Env([])  # refs render as written (they are bound + qualified)
        sql = f"UPDATE {self.ident(table)}"
        if statement.alias:
            sql += f" {self.ident(statement.alias.upper())}"
        sets = ", ".join(
            f"{self.ident(name)} = {self.render_expr(expr, env)}"
            for name, expr in statement.assignments)
        sql += f" SET {sets}"
        if statement.predicate is not None:
            sql += f" WHERE {self.render_expr(statement.predicate, env)}"
        return sql

    def _render_delete(self, statement: r.Delete) -> str:
        sql = f"DELETE FROM {self.ident(statement.table.upper())}"
        if statement.alias:
            sql += f" {self.ident(statement.alias.upper())}"
        if statement.predicate is not None:
            sql += f" WHERE {self.render_expr(statement.predicate, _Env([]))}"
        return sql

    def _render_create_table(self, statement: r.CreateTable) -> str:
        schema = statement.schema
        temp = ""
        if schema.volatile:
            temp = f"{self._profile.temp_table_keyword} "
        head = f"CREATE {temp}TABLE {self.ident(schema.name)}"
        if statement.as_query is not None:
            inner_sql, __ = self._render_query(statement.as_query, None)
            return f"{head} AS {inner_sql}"
        columns = []
        for col in schema.columns:
            part = f"{self.ident(col.name)} {self.type_sql(col.type)}"
            if not col.nullable:
                part += " NOT NULL"
            if col.default_sql is not None and _is_constant_default(col.default_sql):
                part += f" DEFAULT {col.default_sql}"
            columns.append(part)
        return f"{head} ({', '.join(columns)})"

    def _render_create_view(self, statement: r.CreateView) -> str:
        inner_sql, __ = self._render_query(statement.plan, None)
        head = "CREATE OR REPLACE VIEW" if statement.replace else "CREATE VIEW"
        sql = f"{head} {self.ident(statement.name)}"
        if statement.column_names:
            sql += " (" + ", ".join(self.ident(name)
                                    for name in statement.column_names) + ")"
        return f"{sql} AS {inner_sql}"

    def _render_merge(self, statement: r.Merge) -> str:
        if not self._profile.merge_statement:
            raise SerializeError(
                "MERGE reached serialization for a target without support "
                "(the emulator should have handled it)")
        source_sql, entries = self._render_source(statement.source, None)
        env = _Env(entries)
        sql = f"MERGE INTO {self.ident(statement.target)}"
        if statement.target_alias:
            sql += f" {self.ident(statement.target_alias.upper())}"
        sql += f" USING {source_sql}"
        sql += f" ON {self.render_expr(statement.condition, env)}"
        if statement.matched_assignments:
            sets = ", ".join(
                f"{self.ident(name)} = {self.render_expr(expr, env)}"
                for name, expr in statement.matched_assignments)
            sql += f" WHEN MATCHED THEN UPDATE SET {sets}"
        if statement.insert_columns and statement.insert_values is not None:
            cols = ", ".join(self.ident(name.upper())
                             for name in statement.insert_columns)
            values = ", ".join(self.render_expr(expr, env)
                               for expr in statement.insert_values)
            sql += f" WHEN NOT MATCHED THEN INSERT ({cols}) VALUES ({values})"
        return sql


def _visible_projection(project: r.Project,
                        strip: "r.Project | None") -> tuple[list, list[str]]:
    """The output expressions/names of a block, honoring a strip projection.

    When ORDER BY needed hidden sort columns, the binder widened the
    projection and stacked a stripping Project above the Sort; the serialized
    SELECT list must expose only the stripped (visible) subset — hidden keys
    are inlined into ORDER BY instead.
    """
    if strip is None:
        return list(project.exprs), list(project.names)
    by_name = {name.upper(): expr
               for name, expr in zip(project.names, project.exprs)}
    exprs = [by_name[name.upper()] for name in strip.names]
    return exprs, list(strip.names)


def _uniquify(names: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    out = []
    for name in names:
        if name not in seen:
            seen[name] = 1
            out.append(name)
        else:
            seen[name] += 1
            candidate = f"{name}_{seen[name]}"
            while candidate in seen:
                seen[name] += 1
                candidate = f"{name}_{seen[name]}"
            seen[candidate] = 1
            out.append(candidate)
    return out


def _is_constant_default(sql: str) -> bool:
    text = sql.strip().upper()
    if text in ("NULL",):
        return True
    if text.startswith("'"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True
