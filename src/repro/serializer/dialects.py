"""Per-target serializer specializations.

Each modeled cloud target gets its own Serializer subclass, mirroring the
paper's per-backend Serializer plugins. The executing in-memory backend
("hyperion") uses the base ANSI serializer unchanged; the cloud archetypes
override spelling details (type names, quoting, function spellings) so the
serializers demonstrably produce different texts for the same XTRA.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tracker import FeatureTracker
from repro.errors import SerializeError
from repro.serializer.base import Serializer, plain_ident
from repro.transform.capabilities import (
    AZURESYNTH, CapabilityProfile, HYPERION, HYPERION_PLUS, MEADOWSHIFT,
    PROFILES, SKYQUERY, SNOWFIELD,
)
from repro.xtra import types as t


class PostgresSerializer(Serializer):
    """Redshift-like target: Postgres heritage."""

    def type_sql(self, declared: t.SQLType) -> str:
        if declared.kind is t.TypeKind.FLOAT:
            return "DOUBLE PRECISION"
        if declared.kind is t.TypeKind.TIMESTAMP:
            return "TIMESTAMP WITHOUT TIME ZONE"
        return super().type_sql(declared)


class BigQuerySerializer(Serializer):
    """BigQuery-like target: backtick quoting, INT64/STRING type names."""

    _TYPE_NAMES = {
        t.TypeKind.SMALLINT: "INT64",
        t.TypeKind.INTEGER: "INT64",
        t.TypeKind.BIGINT: "INT64",
        t.TypeKind.FLOAT: "FLOAT64",
        t.TypeKind.BOOLEAN: "BOOL",
        t.TypeKind.DATE: "DATE",
        t.TypeKind.TIMESTAMP: "TIMESTAMP",
    }

    def ident(self, name: str) -> str:
        # Reserved words (e.g. a column named "select") must be quoted too;
        # plain_ident rejects them alongside non-word characters.
        if plain_ident(name):
            return name
        return "`" + name.replace("`", "``") + "`"

    def type_sql(self, declared: t.SQLType) -> str:
        if declared.kind in self._TYPE_NAMES:
            return self._TYPE_NAMES[declared.kind]
        if declared.kind in (t.TypeKind.CHAR, t.TypeKind.VARCHAR,
                             t.TypeKind.UNKNOWN):
            return "STRING"
        if declared.kind is t.TypeKind.DECIMAL:
            return "NUMERIC"
        return super().type_sql(declared)


class TSQLSerializer(Serializer):
    """Azure SQL DW-like target: T-SQL spellings, TOP instead of LIMIT,
    bracket quoting, LEN instead of LENGTH."""

    FUNCTION_MAP = dict(Serializer.FUNCTION_MAP)
    FUNCTION_MAP.update({"LENGTH": "LEN"})

    def ident(self, name: str) -> str:
        if plain_ident(name):
            return name
        return "[" + name.replace("]", "]]") + "]"

    def type_sql(self, declared: t.SQLType) -> str:
        if declared.kind is t.TypeKind.FLOAT:
            return "FLOAT"
        if declared.kind is t.TypeKind.TIMESTAMP:
            return "DATETIME2"
        return super().type_sql(declared)


class SnowflakeSerializer(Serializer):
    """Snowflake-like target: largely ANSI; NUMBER for decimals."""

    def type_sql(self, declared: t.SQLType) -> str:
        if declared.kind is t.TypeKind.DECIMAL:
            return f"NUMBER({declared.precision or 18},{declared.scale or 0})"
        return super().type_sql(declared)


_SERIALIZERS: dict[str, type[Serializer]] = {
    HYPERION.name: Serializer,
    HYPERION_PLUS.name: Serializer,
    MEADOWSHIFT.name: PostgresSerializer,
    SKYQUERY.name: BigQuerySerializer,
    AZURESYNTH.name: TSQLSerializer,
    SNOWFIELD.name: SnowflakeSerializer,
}


def serializer_for(profile: CapabilityProfile | str,
                   tracker: Optional[FeatureTracker] = None) -> Serializer:
    """The serializer matching a target capability profile."""
    if isinstance(profile, str):
        resolved = PROFILES.get(profile)
        if resolved is None:
            raise SerializeError(f"unknown target profile {profile!r}")
        profile = resolved
    cls = _SERIALIZERS.get(profile.name, Serializer)
    return cls(profile, tracker)
