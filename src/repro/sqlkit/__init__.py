"""Shared SQL lexing foundation used by both the Teradata frontend parser
and the backend's ANSI parser."""

from repro.sqlkit.tokens import Token, TokenKind
from repro.sqlkit.lexer import Lexer, LexerConfig

__all__ = ["Token", "TokenKind", "Lexer", "LexerConfig"]
