"""A configurable SQL lexer.

The same lexer core serves both dialects in the system: the Teradata frontend
configures extra operators (``^=``, ``**``) and keyword set; the backend's
ANSI parser uses the defaults. Dialect differences are data
(:class:`LexerConfig`), not subclasses, which keeps tokenization rules in one
audited place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LexError
from repro.sqlkit.tokens import Token, TokenKind

# Multi-character operators recognized by default, longest first.
_DEFAULT_OPERATORS = [
    "||", "<>", "<=", ">=", "!=", "::",
    "(", ")", ",", ";", ".", "+", "-", "*", "/", "%",
    "<", ">", "=", "?", "[", "]",
]


@dataclass
class LexerConfig:
    """Dialect-specific lexing knobs.

    Attributes:
        keywords: the set of words to classify as KEYWORD (upper-case).
        extra_operators: additional operator spellings (longest-match wins).
        line_comment: prefix that starts a comment running to end of line.
        allow_named_params: recognize ``:name`` parameter markers.
        backquote_idents: recognize `` `name` `` quoted identifiers
            (BigQuery-style; doubled backtick escapes).
        bracket_idents: recognize ``[name]`` quoted identifiers (T-SQL-style;
            doubled ``]`` escapes). Takes precedence over the ``[`` operator.
    """

    keywords: frozenset[str] = frozenset()
    extra_operators: tuple[str, ...] = ()
    line_comment: str = "--"
    allow_named_params: bool = True
    backquote_idents: bool = False
    bracket_idents: bool = False


class Lexer:
    """Tokenize SQL text into a list of :class:`Token`.

    Usage::

        tokens = Lexer(config).tokenize("SELECT 1")
    """

    def __init__(self, config: LexerConfig):
        self._config = config
        ops = list(_DEFAULT_OPERATORS) + list(config.extra_operators)
        # Sort by length so multi-char operators are matched before prefixes.
        self._operators = sorted(set(ops), key=len, reverse=True)
        self._op_first_chars = {op[0] for op in self._operators}

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize *text*, returning tokens ending with a single EOF token."""
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenKind.EOF, None, "", self._line, self._col))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos:self._pos + count]
        for char in chunk:
            if char == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        comment = self._config.line_comment
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif comment and self._text.startswith(comment, self._pos):
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif self._text.startswith("/*", self._pos):
                start_line, start_col = self._line, self._col
                self._advance(2)
                while self._pos < len(self._text) and not self._text.startswith("*/", self._pos):
                    self._advance()
                if self._pos >= len(self._text):
                    raise LexError("unterminated block comment", start_line, start_col)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        char = self._peek()
        line, col = self._line, self._col
        if char == "'":
            return self._lex_string(line, col)
        if char == '"':
            return self._lex_quoted_ident(line, col)
        if char == "`" and self._config.backquote_idents:
            return self._lex_delimited_ident(line, col, "`", "`")
        if char == "[" and self._config.bracket_idents:
            return self._lex_delimited_ident(line, col, "[", "]")
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if char.isalpha() or char == "_":
            return self._lex_word(line, col)
        if char == ":" and self._config.allow_named_params and (
            self._peek(1).isalpha() or self._peek(1) == "_"
        ):
            self._advance()
            name = self._lex_word(line, col)
            return Token(TokenKind.PARAM, str(name.value), ":" + name.text, line, col)
        if char in self._op_first_chars:
            for op in self._operators:
                if self._text.startswith(op, self._pos):
                    self._advance(len(op))
                    normalized = {"!=": "<>", "^=": "<>", "~=": "<>"}.get(op, op)
                    if op == "?":
                        return Token(TokenKind.PARAM, "?", op, line, col)
                    return Token(TokenKind.OPERATOR, normalized, op, line, col)
        raise LexError(f"unexpected character {char!r}", line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        # SQL string literal with '' escaping.
        start = self._pos
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated string literal", line, col)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(char)
                self._advance()
        raw = self._text[start:self._pos]
        return Token(TokenKind.STRING, "".join(parts), raw, line, col)

    def _lex_quoted_ident(self, line: int, col: int) -> Token:
        start = self._pos
        self._advance()
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated quoted identifier", line, col)
            char = self._peek()
            if char == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(char)
                self._advance()
        raw = self._text[start:self._pos]
        return Token(TokenKind.QUOTED_IDENT, "".join(parts), raw, line, col)

    def _lex_delimited_ident(self, line: int, col: int,
                             open_char: str, close_char: str) -> Token:
        # Dialect-specific quoted identifier; the closer escapes by doubling.
        start = self._pos
        self._advance()  # opening delimiter
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated quoted identifier", line, col)
            char = self._peek()
            if char == close_char:
                if self._peek(1) == close_char:
                    parts.append(close_char)
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(char)
                self._advance()
        raw = self._text[start:self._pos]
        return Token(TokenKind.QUOTED_IDENT, "".join(parts), raw, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        saw_dot = False
        saw_exp = False
        while self._pos < len(self._text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and not saw_exp:
                # Don't consume '..' or a trailing '.' followed by an ident
                # (e.g. 1.e is a number; but `t.1` won't reach here).
                saw_dot = True
                self._advance()
            elif char in "eE" and not saw_exp and (
                self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                saw_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        raw = self._text[start:self._pos]
        value: object
        if saw_dot or saw_exp:
            value = float(raw)
        else:
            value = int(raw)
        return Token(TokenKind.NUMBER, value, raw, line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() in "_$#"):
            self._advance()
        raw = self._text[start:self._pos]
        upper = raw.upper()
        if upper in self._config.keywords:
            return Token(TokenKind.KEYWORD, upper, raw, line, col)
        return Token(TokenKind.IDENT, upper, raw, line, col)
