"""Token model shared by every SQL parser in the project.

A :class:`Token` records its kind, raw text, normalized value and source
position so parse errors can point at the offending SQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`repro.sqlkit.lexer.Lexer`."""

    KEYWORD = "keyword"          # reserved or contextual keyword (upper-cased value)
    IDENT = "ident"              # bare identifier (upper-cased value)
    QUOTED_IDENT = "quoted"      # "Quoted Identifier" (value keeps original case)
    STRING = "string"            # 'string literal' (value has quotes stripped)
    NUMBER = "number"            # numeric literal (value is int/float/str-decimal)
    OPERATOR = "operator"        # punctuation / operators, normalized (e.g. '<>')
    PARAM = "param"              # positional parameter marker '?' or ':name'
    EOF = "eof"                  # end of input sentinel


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: lexical category.
        value: normalized value — keywords and bare identifiers are upper-cased,
            string literals have quotes removed and doubled quotes collapsed,
            numbers are parsed into int/float.
        text: the raw source text of the token.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    value: object
    text: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is a keyword token matching any name."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        """Return True if this token is an operator matching any symbol."""
        return self.kind is TokenKind.OPERATOR and self.value in ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r} @{self.line}:{self.column})"
