"""Tabular Data Format (TDF): Hyper-Q's internal binary result encoding.

Section 4.5: result batches fetched through the ODBC Server are packaged in
TDF, "an extensible binary format that is able to handle arbitrarily large
nested data". Every value carries a type tag, so batches are self-describing
and survive schema-less paths (CTAS results, untyped projections); LIST and
BYTES tags provide the nesting/extensibility hook.

Layout of one batch::

    magic 'TDF1' | u32 column_count | column names (u16 len + utf8) ...
    | u32 row_count | rows

Each value: 1 tag byte followed by a tag-specific payload.
"""

from __future__ import annotations

import datetime
import struct
from typing import Iterable, Iterator

from repro.errors import ConversionError

MAGIC = b"TDF1"

TAG_NULL = 0
TAG_INT = 1
TAG_FLOAT = 2
TAG_STRING = 3
TAG_DATE = 4
TAG_TIMESTAMP = 5
TAG_BOOL = 6
TAG_TIME = 7
TAG_BYTES = 8
TAG_LIST = 9

_EPOCH = datetime.date(1970, 1, 1)

# Every backend row funnels through these loops (the ODBC server encodes, the
# result converter decodes), so the per-value ``struct`` formats are compiled
# once at import and bound as locals, and the common scalar tags take an
# exact-type fast path ahead of the isinstance ladder.
_S_I64 = struct.Struct("<q")
_S_F64 = struct.Struct("<d")
_S_I32 = struct.Struct("<i")
_S_U32 = struct.Struct("<I")
_S_U16 = struct.Struct("<H")


def _encode_value(value: object, out: bytearray,
                  _pq=_S_I64.pack, _pd=_S_F64.pack, _pi=_S_I32.pack,
                  _pu=_S_U32.pack) -> None:
    kind = type(value)
    if kind is int:
        out.append(TAG_INT)
        out += _pq(value)
    elif kind is str:
        payload = value.encode("utf-8")
        out.append(TAG_STRING)
        out += _pu(len(payload))
        out += payload
    elif kind is float:
        out.append(TAG_FLOAT)
        out += _pd(value)
    elif value is None:
        out.append(TAG_NULL)
    elif kind is bool:
        out.append(TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(TAG_INT)
        out += _pq(value)
    elif isinstance(value, float):
        out.append(TAG_FLOAT)
        out += _pd(value)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.append(TAG_STRING)
        out += _pu(len(payload))
        out += payload
    elif isinstance(value, datetime.datetime):
        out.append(TAG_TIMESTAMP)
        out += _pd(value.timestamp())
    elif isinstance(value, datetime.date):
        out.append(TAG_DATE)
        out += _pi((value - _EPOCH).days)
    elif isinstance(value, datetime.time):
        out.append(TAG_TIME)
        micros = ((value.hour * 60 + value.minute) * 60 + value.second) * 1_000_000 \
            + value.microsecond
        out += _pq(micros)
    elif isinstance(value, (bytes, bytearray)):
        out.append(TAG_BYTES)
        out += _pu(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(TAG_LIST)
        out += _pu(len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise ConversionError(f"TDF cannot encode {type(value).__name__}")


def _decode_value(buffer: memoryview, offset: int,
                  _uq=_S_I64.unpack_from, _ud=_S_F64.unpack_from,
                  _ui=_S_I32.unpack_from,
                  _uu=_S_U32.unpack_from) -> tuple[object, int]:
    tag = buffer[offset]
    offset += 1
    if tag == TAG_INT:
        return _uq(buffer, offset)[0], offset + 8
    if tag == TAG_STRING:
        length = _uu(buffer, offset)[0]
        offset += 4
        text = str(buffer[offset:offset + length], "utf-8")
        return text, offset + length
    if tag == TAG_FLOAT:
        return _ud(buffer, offset)[0], offset + 8
    if tag == TAG_NULL:
        return None, offset
    if tag == TAG_BOOL:
        return bool(buffer[offset]), offset + 1
    if tag == TAG_DATE:
        days = _ui(buffer, offset)[0]
        return _EPOCH + datetime.timedelta(days=days), offset + 4
    if tag == TAG_TIMESTAMP:
        stamp = _ud(buffer, offset)[0]
        return datetime.datetime.fromtimestamp(stamp), offset + 8
    if tag == TAG_TIME:
        micros = _uq(buffer, offset)[0]
        seconds, micro = divmod(micros, 1_000_000)
        minutes, second = divmod(seconds, 60)
        hour, minute = divmod(minutes, 60)
        return datetime.time(hour, minute, second, micro), offset + 8
    if tag == TAG_BYTES:
        length = _uu(buffer, offset)[0]
        offset += 4
        return bytes(buffer[offset:offset + length]), offset + length
    if tag == TAG_LIST:
        count = _uu(buffer, offset)[0]
        offset += 4
        items = []
        for __ in range(count):
            item, offset = _decode_value(buffer, offset)
            items.append(item)
        return items, offset
    raise ConversionError(f"TDF: unknown tag {tag}")


def encode_batch(columns: list[str], rows: Iterable[tuple]) -> bytes:
    """Encode one batch of rows into a TDF packet."""
    out = bytearray(MAGIC)
    out += _S_U32.pack(len(columns))
    for name in columns:
        payload = name.encode("utf-8")
        out += _S_U16.pack(len(payload))
        out += payload
    rows = list(rows)
    out += _S_U32.pack(len(rows))
    encode_value = _encode_value
    width = len(columns)
    for row in rows:
        if len(row) != width:
            raise ConversionError(
                f"TDF row has {len(row)} values for {width} columns")
        for value in row:
            encode_value(value, out)
    return bytes(out)


def decode_batch(packet: bytes) -> tuple[list[str], list[tuple]]:
    """Decode one TDF packet back into (column names, rows)."""
    if packet[:4] != MAGIC:
        raise ConversionError("not a TDF packet")
    buffer = memoryview(packet)
    offset = 4
    column_count = _S_U32.unpack_from(buffer, offset)[0]
    offset += 4
    columns = []
    for __ in range(column_count):
        length = _S_U16.unpack_from(buffer, offset)[0]
        offset += 2
        columns.append(str(buffer[offset:offset + length], "utf-8"))
        offset += length
    row_count = _S_U32.unpack_from(buffer, offset)[0]
    offset += 4
    rows = []
    decode_value = _decode_value
    for __ in range(row_count):
        values = []
        append = values.append
        for __ in range(column_count):
            value, offset = decode_value(buffer, offset)
            append(value)
        rows.append(tuple(values))
    return columns, rows


def batches_of(columns: list[str], rows: list[tuple],
               batch_rows: int = 1024) -> Iterator[bytes]:
    """Split a result into encoded TDF batches of at most *batch_rows*."""
    if not rows:
        yield encode_batch(columns, [])
        return
    for start in range(0, len(rows), batch_rows):
        yield encode_batch(columns, rows[start:start + batch_rows])
