"""Tabular Data Format (TDF): Hyper-Q's internal binary result encoding.

Section 4.5: result batches fetched through the ODBC Server are packaged in
TDF, "an extensible binary format that is able to handle arbitrarily large
nested data". Every value carries a type tag, so batches are self-describing
and survive schema-less paths (CTAS results, untyped projections); LIST and
BYTES tags provide the nesting/extensibility hook.

Layout of one batch::

    magic 'TDF1' | u32 column_count | column names (u16 len + utf8) ...
    | u32 row_count | rows

Each value: 1 tag byte followed by a tag-specific payload.
"""

from __future__ import annotations

import datetime
import struct
from typing import Iterable, Iterator

from repro.errors import ConversionError

MAGIC = b"TDF1"

TAG_NULL = 0
TAG_INT = 1
TAG_FLOAT = 2
TAG_STRING = 3
TAG_DATE = 4
TAG_TIMESTAMP = 5
TAG_BOOL = 6
TAG_TIME = 7
TAG_BYTES = 8
TAG_LIST = 9

_EPOCH = datetime.date(1970, 1, 1)


def _encode_value(value: object, out: bytearray) -> None:
    if value is None:
        out.append(TAG_NULL)
    elif isinstance(value, bool):
        out.append(TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(TAG_INT)
        out += struct.pack("<q", value)
    elif isinstance(value, float):
        out.append(TAG_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.append(TAG_STRING)
        out += struct.pack("<I", len(payload))
        out += payload
    elif isinstance(value, datetime.datetime):
        out.append(TAG_TIMESTAMP)
        out += struct.pack("<d", value.timestamp())
    elif isinstance(value, datetime.date):
        out.append(TAG_DATE)
        out += struct.pack("<i", (value - _EPOCH).days)
    elif isinstance(value, datetime.time):
        out.append(TAG_TIME)
        micros = ((value.hour * 60 + value.minute) * 60 + value.second) * 1_000_000 \
            + value.microsecond
        out += struct.pack("<q", micros)
    elif isinstance(value, (bytes, bytearray)):
        out.append(TAG_BYTES)
        out += struct.pack("<I", len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(TAG_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise ConversionError(f"TDF cannot encode {type(value).__name__}")


def _decode_value(buffer: memoryview, offset: int) -> tuple[object, int]:
    tag = buffer[offset]
    offset += 1
    if tag == TAG_NULL:
        return None, offset
    if tag == TAG_BOOL:
        return bool(buffer[offset]), offset + 1
    if tag == TAG_INT:
        return struct.unpack_from("<q", buffer, offset)[0], offset + 8
    if tag == TAG_FLOAT:
        return struct.unpack_from("<d", buffer, offset)[0], offset + 8
    if tag == TAG_STRING:
        length = struct.unpack_from("<I", buffer, offset)[0]
        offset += 4
        text = bytes(buffer[offset:offset + length]).decode("utf-8")
        return text, offset + length
    if tag == TAG_DATE:
        days = struct.unpack_from("<i", buffer, offset)[0]
        return _EPOCH + datetime.timedelta(days=days), offset + 4
    if tag == TAG_TIMESTAMP:
        stamp = struct.unpack_from("<d", buffer, offset)[0]
        return datetime.datetime.fromtimestamp(stamp), offset + 8
    if tag == TAG_TIME:
        micros = struct.unpack_from("<q", buffer, offset)[0]
        seconds, micro = divmod(micros, 1_000_000)
        minutes, second = divmod(seconds, 60)
        hour, minute = divmod(minutes, 60)
        return datetime.time(hour, minute, second, micro), offset + 8
    if tag == TAG_BYTES:
        length = struct.unpack_from("<I", buffer, offset)[0]
        offset += 4
        return bytes(buffer[offset:offset + length]), offset + length
    if tag == TAG_LIST:
        count = struct.unpack_from("<I", buffer, offset)[0]
        offset += 4
        items = []
        for __ in range(count):
            item, offset = _decode_value(buffer, offset)
            items.append(item)
        return items, offset
    raise ConversionError(f"TDF: unknown tag {tag}")


def encode_batch(columns: list[str], rows: Iterable[tuple]) -> bytes:
    """Encode one batch of rows into a TDF packet."""
    out = bytearray(MAGIC)
    out += struct.pack("<I", len(columns))
    for name in columns:
        payload = name.encode("utf-8")
        out += struct.pack("<H", len(payload))
        out += payload
    rows = list(rows)
    out += struct.pack("<I", len(rows))
    for row in rows:
        if len(row) != len(columns):
            raise ConversionError(
                f"TDF row has {len(row)} values for {len(columns)} columns")
        for value in row:
            _encode_value(value, out)
    return bytes(out)


def decode_batch(packet: bytes) -> tuple[list[str], list[tuple]]:
    """Decode one TDF packet back into (column names, rows)."""
    if packet[:4] != MAGIC:
        raise ConversionError("not a TDF packet")
    buffer = memoryview(packet)
    offset = 4
    column_count = struct.unpack_from("<I", buffer, offset)[0]
    offset += 4
    columns = []
    for __ in range(column_count):
        length = struct.unpack_from("<H", buffer, offset)[0]
        offset += 2
        columns.append(bytes(buffer[offset:offset + length]).decode("utf-8"))
        offset += length
    row_count = struct.unpack_from("<I", buffer, offset)[0]
    offset += 4
    rows = []
    for __ in range(row_count):
        values = []
        for __ in range(column_count):
            value, offset = _decode_value(buffer, offset)
            values.append(value)
        rows.append(tuple(values))
    return columns, rows


def batches_of(columns: list[str], rows: list[tuple],
               batch_rows: int = 1024) -> Iterator[bytes]:
    """Split a result into encoded TDF batches of at most *batch_rows*."""
    if not rows:
        yield encode_batch(columns, [])
        return
    for start in range(0, len(rows), batch_rows):
        yield encode_batch(columns, rows[start:start + batch_rows])
