"""Capability-driven query transformation (the paper's Transformer)."""

from repro.transform.capabilities import CapabilityProfile, PROFILES, cloud_profiles
