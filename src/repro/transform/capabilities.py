"""Capability descriptors for source and target database systems.

The Transformer triggers a rewrite rule exactly when the target lacks the
capability the rule compensates for (Section 4.3). The same descriptors drive
Figure 2's feature-support matrix: we model four archetypal cloud data
warehouses (named after, but not claiming to be, the four systems the paper
surveys) plus the Teradata source profile and the profile of our executing
in-memory backend.

The concrete support values are *modeled*: they are chosen to match the
qualitative shape of Figure 2 (e.g. no cloud system accepts implicit joins or
date/integer comparisons; about half support recursion; a minority support
QUALIFY) and are documented here as data rather than buried in code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields


class NullOrdering(enum.Enum):
    """Where NULLs sort by default for an ascending key."""

    NULLS_FIRST = "NULLS_FIRST"   # Teradata behaviour
    NULLS_LAST = "NULLS_LAST"     # Postgres-family behaviour


class LimitSyntax(enum.Enum):
    LIMIT = "LIMIT"   # LIMIT n [OFFSET m]
    TOP = "TOP"       # SELECT TOP n ...


@dataclass(frozen=True)
class CapabilityProfile:
    """What a database system can natively express.

    ``True`` means the system accepts the construct natively; ``False`` means
    Hyper-Q must rewrite (Transformation) or emulate (Emulation) it.
    """

    name: str
    # -- language-surface features (Figure 2 / Table 2) --------------------
    keyword_shortcuts: bool = False          # SEL / INS / UPD / DEL
    qualify_clause: bool = False             # QUALIFY predicate on windows
    implicit_joins: bool = False             # tables referenced outside FROM
    named_expression_reuse: bool = False     # alias reuse in same SELECT list
    ordinal_group_by: bool = False           # GROUP BY 1, 2
    grouping_extensions: bool = False        # ROLLUP / CUBE / GROUPING SETS
    date_int_arithmetic: bool = False        # date + 30
    date_int_comparison: bool = False        # date > 1140101
    vector_subquery: bool = False            # (a, b) > ANY (SELECT x, y ...)
    explicit_null_ordering: bool = True      # ORDER BY ... NULLS FIRST/LAST
    top_with_ties: bool = False              # TOP n WITH TIES
    recursive_cte: bool = False              # WITH RECURSIVE
    merge_statement: bool = False            # MERGE INTO
    macros: bool = False                     # CREATE MACRO / EXEC
    stored_procedures: bool = False          # CREATE PROCEDURE / CALL
    updatable_views: bool = False            # DML on views
    set_tables: bool = False                 # SET-table duplicate elimination
    volatile_tables: bool = False            # VOLATILE / global temp tables
    case_insensitive_columns: bool = False   # NOT CASESPECIFIC columns
    nonconstant_defaults: bool = False       # DEFAULT CURRENT_DATE etc.
    period_type: bool = False                # PERIOD compound type
    help_commands: bool = False              # HELP SESSION / SHOW TABLE
    # -- dialect mechanics --------------------------------------------------
    default_null_ordering: NullOrdering = NullOrdering.NULLS_LAST
    limit_syntax: LimitSyntax = LimitSyntax.LIMIT
    temp_table_keyword: str = "TEMPORARY"

    def supports(self, feature: str) -> bool:
        """Dynamic capability lookup by field name (used by Figure 2)."""
        return bool(getattr(self, feature))


#: The source system: supports everything by definition.
TERADATA = CapabilityProfile(
    name="teradata",
    keyword_shortcuts=True,
    qualify_clause=True,
    implicit_joins=True,
    named_expression_reuse=True,
    ordinal_group_by=True,
    grouping_extensions=True,
    date_int_arithmetic=True,
    date_int_comparison=True,
    vector_subquery=True,
    explicit_null_ordering=True,
    top_with_ties=True,
    recursive_cte=True,
    merge_statement=True,
    macros=True,
    stored_procedures=True,
    updatable_views=True,
    set_tables=True,
    volatile_tables=True,
    case_insensitive_columns=True,
    nonconstant_defaults=True,
    period_type=True,
    help_commands=True,
    default_null_ordering=NullOrdering.NULLS_FIRST,
    limit_syntax=LimitSyntax.TOP,
)

#: Our executing in-memory backend ("hyperion"): a deliberately plain ANSI
#: engine so every rewrite and emulation path is exercised end-to-end.
HYPERION = CapabilityProfile(
    name="hyperion",
    ordinal_group_by=False,
    explicit_null_ordering=True,
    recursive_cte=False,
    grouping_extensions=False,
    stored_procedures=False,
    default_null_ordering=NullOrdering.NULLS_LAST,
    limit_syntax=LimitSyntax.LIMIT,
)

#: Variant of the executing backend with more native features enabled, used
#: by ablation benchmarks to measure how much work the Transformer saves.
HYPERION_PLUS = CapabilityProfile(
    name="hyperion_plus",
    ordinal_group_by=False,
    explicit_null_ordering=True,
    recursive_cte=True,
    grouping_extensions=True,
    merge_statement=True,
    vector_subquery=True,
    default_null_ordering=NullOrdering.NULLS_LAST,
    limit_syntax=LimitSyntax.LIMIT,
)

# -- modeled cloud data warehouse archetypes (Figure 2) ----------------------

MEADOWSHIFT = CapabilityProfile(  # Redshift-like: Postgres heritage
    name="meadowshift",
    ordinal_group_by=True,
    explicit_null_ordering=True,
    recursive_cte=False,
    grouping_extensions=False,
    merge_statement=False,
    stored_procedures=False,
    updatable_views=False,
    nonconstant_defaults=True,
    date_int_arithmetic=True,       # date + int works in Postgres family
    default_null_ordering=NullOrdering.NULLS_LAST,
)

SKYQUERY = CapabilityProfile(  # BigQuery-like
    name="skyquery",
    ordinal_group_by=True,
    named_expression_reuse=False,
    explicit_null_ordering=True,
    grouping_extensions=True,
    recursive_cte=False,
    merge_statement=True,
    stored_procedures=False,
    nonconstant_defaults=False,
    default_null_ordering=NullOrdering.NULLS_LAST,
)

AZURESYNTH = CapabilityProfile(  # Azure SQL DW-like: T-SQL heritage
    name="azuresynth",
    ordinal_group_by=False,
    explicit_null_ordering=False,
    grouping_extensions=True,
    recursive_cte=True,
    merge_statement=False,
    stored_procedures=True,
    updatable_views=True,
    volatile_tables=True,
    case_insensitive_columns=True,
    nonconstant_defaults=True,
    top_with_ties=True,
    default_null_ordering=NullOrdering.NULLS_FIRST,
    limit_syntax=LimitSyntax.TOP,
)

SNOWFIELD = CapabilityProfile(  # Snowflake-like
    name="snowfield",
    qualify_clause=True,
    ordinal_group_by=True,
    explicit_null_ordering=True,
    grouping_extensions=True,
    recursive_cte=True,
    merge_statement=True,
    stored_procedures=True,
    volatile_tables=True,
    nonconstant_defaults=True,
    default_null_ordering=NullOrdering.NULLS_LAST,
)

PROFILES: dict[str, CapabilityProfile] = {
    profile.name: profile
    for profile in (TERADATA, HYPERION, HYPERION_PLUS,
                    MEADOWSHIFT, SKYQUERY, AZURESYNTH, SNOWFIELD)
}


def cloud_profiles() -> list[CapabilityProfile]:
    """The four modeled cloud data warehouses surveyed in Figure 2."""
    return [MEADOWSHIFT, SKYQUERY, AZURESYNTH, SNOWFIELD]


def capability_fields() -> list[str]:
    """Names of the boolean capability flags (excludes dialect mechanics)."""
    skip = {"name", "default_null_ordering", "limit_syntax", "temp_table_keyword"}
    return [f.name for f in fields(CapabilityProfile) if f.name not in skip]


def support_fraction(feature: str) -> float:
    """Fraction of the modeled cloud systems natively supporting *feature*."""
    profiles = cloud_profiles()
    return sum(1 for p in profiles if p.supports(feature)) / len(profiles)
