"""The Transformer: capability-gated rewrite rules run to a fixpoint.

Mirrors Section 4.3: transformations are pluggable components keyed to the
XTRA constructs they rewrite; the driver triggers every applicable rule and
re-runs the rule set until the statement stops changing (with a divergence
guard). Rules declare which capability gap they close, so a target that
supports the construct natively never pays for (or observes) the rewrite —
exactly how Section 5.3 defers the vector-subquery rewrite to targets that
need it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransformError
from repro.core import trace as trace_mod
from repro.core.tracker import FeatureTracker
from repro.transform.capabilities import CapabilityProfile
from repro.xtra.relational import RelNode, Statement
from repro.xtra.scalars import ScalarExpr
from repro.xtra.visitor import rewrite_statement

_MAX_PASSES = 10


class Rule:
    """Base class for transformation rules.

    Subclasses set ``name`` (tracked feature name or a rule id), ``stage``
    (the pipeline stage reported to the tracker), and override ``applies``
    plus one or both of ``rewrite_scalar`` / ``rewrite_rel``.
    """

    name: str = ""
    stage: str = "transformer"
    feature: Optional[str] = None  # tracked feature fired when the rule acts

    def applies(self, profile: CapabilityProfile) -> bool:
        """Whether the rule is needed for this target at all."""
        raise NotImplementedError

    def rewrite_scalar(self, expr: ScalarExpr, ctx: "RuleContext") -> ScalarExpr:
        return expr

    def rewrite_rel(self, node: RelNode, ctx: "RuleContext") -> RelNode:
        return node


class RuleContext:
    """Shared state for one transform pass: profile, tracker, change flag."""

    def __init__(self, profile: CapabilityProfile,
                 tracker: Optional[FeatureTracker]):
        self.profile = profile
        self.tracker = tracker
        self.changed = False
        #: Names of rules that fired this pass, first-fire order (feeds the
        #: per-rule trace spans and the golden-corpus rule summaries).
        self.fired_rules: list[str] = []
        self._alias_counter = 0

    def fired(self, rule: Rule) -> None:
        self.changed = True
        name = rule.name or type(rule).__name__
        if name not in self.fired_rules:
            self.fired_rules.append(name)
        if rule.feature and self.tracker is not None:
            self.tracker.note(rule.feature, rule.stage)

    def fresh_alias(self, prefix: str) -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"


def default_rules() -> list[Rule]:
    """The built-in rule set, in application order."""
    from repro.transform.rules.date_int_compare import DateIntCompareRule
    from repro.transform.rules.date_arith import DateArithRule
    from repro.transform.rules.olap_grouping import OlapGroupingRule
    from repro.transform.rules.vector_subquery import VectorSubqueryRule
    from repro.transform.rules.null_ordering import NullOrderingRule

    return [
        DateIntCompareRule(),
        DateArithRule(),
        OlapGroupingRule(),
        VectorSubqueryRule(),
        NullOrderingRule(),
    ]


class Transformer:
    """Runs the rule set against bound XTRA statements until a fixpoint."""

    def __init__(self, profile: CapabilityProfile,
                 tracker: Optional[FeatureTracker] = None,
                 rules: Optional[list[Rule]] = None,
                 fixpoint: bool = True):
        self._profile = profile
        self._tracker = tracker
        self._all_rules = rules if rules is not None else default_rules()
        self._rules = [rule for rule in self._all_rules if rule.applies(profile)]
        self._fixpoint = fixpoint

    @property
    def active_rules(self) -> list[Rule]:
        return list(self._rules)

    def transform(self, statement: Statement) -> Statement:
        """Rewrite *statement* in place, returning it for chaining.

        When a trace is active, each pass that fires rules emits one child
        span per fired rule (``rule:<name>``) carrying the XTRA digests
        from before and after the pass — the provenance trail showing what
        each rewrite actually changed. Digests are pass-granular because a
        pass applies all rules in one tree walk.
        """
        if not self._rules:
            return statement
        tracing = trace_mod.current_span() is not None
        passes = 0
        while True:
            passes += 1
            if passes > _MAX_PASSES:
                raise TransformError(
                    "transformation did not reach a fixpoint within "
                    f"{_MAX_PASSES} passes")
            ctx = RuleContext(self._profile, self._tracker)
            before_digest = (trace_mod.xtra_digest(statement)
                             if tracing else "")
            pass_start = (trace_mod.current_span().trace.clock()
                          if tracing else 0.0)

            def scalar_fn(expr: ScalarExpr) -> ScalarExpr:
                for rule in self._rules:
                    expr = rule.rewrite_scalar(expr, ctx)
                return expr

            def rel_fn(node: RelNode) -> RelNode:
                for rule in self._rules:
                    node = rule.rewrite_rel(node, ctx)
                return node

            rewrite_statement(statement, rel_fn, scalar_fn)
            if tracing and ctx.fired_rules:
                pass_end = trace_mod.current_span().trace.clock()
                after_digest = trace_mod.xtra_digest(statement)
                for rule_name in ctx.fired_rules:
                    trace_mod.add_span(
                        f"rule:{rule_name}", pass_start, pass_end,
                        before=before_digest, after=after_digest,
                        transform_pass=passes)
            if not ctx.changed or not self._fixpoint:
                return statement
