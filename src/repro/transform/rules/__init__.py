"""Individual transformation rules, one module per rewrite (Table 2)."""
