"""Date arithmetic rewrite (Table 2: "Date arithmetics" -> Transformer).

Teradata evaluates ``date + n`` / ``date - n`` as day arithmetic. Targets
without the implicit form get an explicit ``DATEADD('DAY', n, date)`` call.
"""

from __future__ import annotations

from repro.transform.engine import Rule, RuleContext
from repro.transform.capabilities import CapabilityProfile
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.scalars import ScalarExpr


def _is_date(expr: ScalarExpr) -> bool:
    return expr.type.kind is t.TypeKind.DATE


class DateArithRule(Rule):
    """Replace implicit date/day arithmetic with DATEADD."""

    name = "date_arith_to_dateadd"
    stage = "transformer"
    feature = "date_arithmetic"

    def applies(self, profile: CapabilityProfile) -> bool:
        return not profile.date_int_arithmetic

    def rewrite_scalar(self, expr: ScalarExpr, ctx: RuleContext) -> ScalarExpr:
        if not isinstance(expr, s.Arith) or expr.op not in (s.ArithOp.ADD, s.ArithOp.SUB):
            return expr
        if _is_date(expr.left) and expr.right.type.is_numeric:
            date_side, amount = expr.left, expr.right
        elif _is_date(expr.right) and expr.left.type.is_numeric \
                and expr.op is s.ArithOp.ADD:
            date_side, amount = expr.right, expr.left
        else:
            return expr
        ctx.fired(self)
        if expr.op is s.ArithOp.SUB:
            amount = s.Negate(amount, type=amount.type)
        call = s.FuncCall("DATEADD", [s.const_str("DAY"), amount, date_side])
        call.type = t.DATE
        return call
