"""DATE/integer comparison rewrite (Section 5.2, Figure 5).

Teradata stores DATEs as ``(year-1900)*10000 + month*100 + day`` and lets SQL
compare a DATE column directly with that integer encoding. No cloud target
accepts the mixed comparison, so the date side is expanded into the
equivalent integer arithmetic::

    SALES_DATE > 1140101
    ==> EXTRACT(DAY FROM SALES_DATE)
      + EXTRACT(MONTH FROM SALES_DATE) * 100
      + (EXTRACT(YEAR FROM SALES_DATE) - 1900) * 10000 > 1140101

The rewrite is system-independent (Teradata's encoding never depends on the
target), which is why the paper applies it as early as possible.
"""

from __future__ import annotations

from repro.transform.engine import Rule, RuleContext
from repro.transform.capabilities import CapabilityProfile
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.scalars import ScalarExpr


def date_to_int_expr(date_expr: ScalarExpr) -> ScalarExpr:
    """Build DAY + MONTH*100 + (YEAR-1900)*10000 over *date_expr*."""
    day = s.Extract(s.ExtractField.DAY, date_expr)
    month = s.Extract(s.ExtractField.MONTH, date_expr)
    year = s.Extract(s.ExtractField.YEAR, date_expr)
    month_term = s.Arith(s.ArithOp.MUL, month, s.const_int(100), type=t.INTEGER)
    year_term = s.Arith(
        s.ArithOp.MUL,
        s.Arith(s.ArithOp.SUB, year, s.const_int(1900), type=t.INTEGER),
        s.const_int(10000),
        type=t.INTEGER,
    )
    total = s.Arith(
        s.ArithOp.ADD,
        s.Arith(s.ArithOp.ADD, day, month_term, type=t.INTEGER),
        year_term,
        type=t.INTEGER,
    )
    return total


def _is_date(expr: ScalarExpr) -> bool:
    return expr.type.kind is t.TypeKind.DATE


def _is_integerish(expr: ScalarExpr) -> bool:
    return expr.type.is_numeric


class DateIntCompareRule(Rule):
    """Expand the DATE side of DATE-vs-integer comparisons."""

    name = "comp_date_to_int"
    stage = "transformer"
    feature = "date_int_comparison"

    def applies(self, profile: CapabilityProfile) -> bool:
        return not profile.date_int_comparison

    def rewrite_scalar(self, expr: ScalarExpr, ctx: RuleContext) -> ScalarExpr:
        if not isinstance(expr, s.Comp):
            return expr
        if _is_date(expr.left) and _is_integerish(expr.right):
            ctx.fired(self)
            expr.left = date_to_int_expr(expr.left)
        elif _is_date(expr.right) and _is_integerish(expr.left):
            ctx.fired(self)
            expr.right = date_to_int_expr(expr.right)
        return expr
