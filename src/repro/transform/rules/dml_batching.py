"""DML batching: merge contiguous single-row INSERTs into one statement.

Section 4.3's performance-transformation example: "if the target database
incurs a large overhead in executing single-row DML requests, a
transformation that groups a large number of contiguous single-row DML
statements into one large statement could be applied." This operates at the
*script* level (across statements, not inside one), so it lives outside the
per-statement rule engine; :meth:`repro.core.engine.HyperQSession
.execute_script` applies it when the engine enables batching.
"""

from __future__ import annotations

from repro.xtra import relational as r
from repro.xtra.relational import Statement


def _is_batchable_insert(statement: Statement) -> bool:
    return (isinstance(statement, r.Insert)
            and isinstance(statement.source, r.Values)
            and statement.source.rows is not None)


def _compatible(left: r.Insert, right: r.Insert) -> bool:
    if left.table.upper() != right.table.upper():
        return False
    left_cols = [c.upper() for c in (left.columns or [])]
    right_cols = [c.upper() for c in (right.columns or [])]
    return left_cols == right_cols


def batch_statements(statements: list[Statement],
                     max_rows_per_batch: int = 1000) -> list[Statement]:
    """Coalesce runs of compatible VALUES inserts.

    Only *contiguous* inserts merge (an intervening SELECT could observe the
    intermediate state, so reordering is never attempted). The merged insert
    reuses the first statement's node; later rows are appended to its VALUES.
    """
    out: list[Statement] = []
    for statement in statements:
        if _is_batchable_insert(statement) and out \
                and _is_batchable_insert(out[-1]) \
                and _compatible(out[-1], statement):  # type: ignore[arg-type]
            target: r.Insert = out[-1]  # type: ignore[assignment]
            target_values: r.Values = target.source  # type: ignore[assignment]
            incoming: r.Values = statement.source  # type: ignore[assignment]
            if len(target_values.rows) + len(incoming.rows) <= max_rows_per_batch:
                target_values.rows.extend(incoming.rows)
                continue
        out.append(statement)
    return out


def batching_summary(before: list[Statement], after: list[Statement]) -> str:
    """Human-readable effect description for logs/benches."""
    return (f"{len(before)} source statements -> {len(after)} target "
            f"statements after DML batching")
