"""Implicit NULL-ordering rewrite.

Teradata treats NULL as the *lowest* value: ascending sorts place NULLs
first, descending sorts place them last. Postgres-family targets default the
other way around, so leaving ORDER BY untouched silently reorders results —
one of the paper's "subtle defects that are hard to spot" (Section 2.1).
For targets that support explicit ``NULLS FIRST/LAST`` the rule pins every
implicit sort key (including window-function ORDER BY keys) to the source
semantics.
"""

from __future__ import annotations

from repro.transform.engine import Rule, RuleContext
from repro.transform.capabilities import CapabilityProfile, NullOrdering
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra.relational import RelNode
from repro.xtra.scalars import ScalarExpr


def teradata_nulls_first(ascending: bool) -> bool:
    """Where Teradata puts NULLs: lowest value — first iff ascending."""
    return ascending


class NullOrderingRule(Rule):
    """Make the source system's NULL placement explicit on the target."""

    name = "explicit_null_ordering"
    stage = "serializer"
    feature = "null_ordering"

    def applies(self, profile: CapabilityProfile) -> bool:
        # Needed whenever the target's implicit placement can differ from the
        # source's; targets without explicit syntax fall back to the
        # serializer's CASE-based emulation.
        return profile.default_null_ordering is NullOrdering.NULLS_LAST

    def _pin(self, keys: list[s.SortKey], ctx: RuleContext) -> None:
        # The target places NULLs high (last when ascending); Teradata places
        # them low (first when ascending) — every implicit key needs pinning.
        for key in keys:
            if key.nulls_first is None:
                key.nulls_first = teradata_nulls_first(key.ascending)
                ctx.fired(self)

    def rewrite_rel(self, node: RelNode, ctx: RuleContext) -> RelNode:
        if isinstance(node, r.Sort):
            self._pin(node.keys, ctx)
        elif isinstance(node, r.Window):
            for func in node.funcs:
                self._pin(func.order_by, ctx)
        return node

    def rewrite_scalar(self, expr: ScalarExpr, ctx: RuleContext) -> ScalarExpr:
        if isinstance(expr, s.WindowFunc):
            self._pin(expr.order_by, ctx)
        return expr
