"""OLAP grouping-extension expansion (Table 2).

``GROUP BY ROLLUP/CUBE/GROUPING SETS`` expands into a UNION ALL of plain
GROUP BY aggregates for targets without native support; keys excluded from a
grouping set surface as NULL, matching the native semantics.
"""

from __future__ import annotations

import copy

from repro.transform.engine import Rule, RuleContext
from repro.transform.capabilities import CapabilityProfile
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra.relational import RelNode


def grouping_sets_of(node: r.Aggregate) -> list[list[int]]:
    """The key-index sets an extended GROUP BY denotes."""
    n = len(node.group_by)
    if node.kind is r.GroupingKind.ROLLUP:
        return [list(range(k)) for k in range(n, -1, -1)]
    if node.kind is r.GroupingKind.CUBE:
        return [[i for i in range(n) if mask & (1 << i)]
                for mask in range(2 ** n - 1, -1, -1)]
    if node.kind is r.GroupingKind.SETS:
        return [list(indexes) for indexes in (node.grouping_sets or [])]
    return [list(range(n))]


class OlapGroupingRule(Rule):
    """Expand ROLLUP/CUBE/GROUPING SETS into a UNION ALL of simple groups."""

    name = "expand_grouping_extensions"
    stage = "transformer"
    feature = "grouping_extensions"

    def applies(self, profile: CapabilityProfile) -> bool:
        return not profile.grouping_extensions

    def rewrite_rel(self, node: RelNode, ctx: RuleContext) -> RelNode:
        if not isinstance(node, r.Aggregate) or node.kind is r.GroupingKind.SIMPLE:
            return node
        ctx.fired(self)
        branches: list[RelNode] = []
        for included in grouping_sets_of(node):
            included_set = set(included)
            child = copy.deepcopy(node.child)
            sub_group = [copy.deepcopy(node.group_by[i])
                         for i in range(len(node.group_by)) if i in included_set]
            sub_names = [node.group_names[i]
                         for i in range(len(node.group_by)) if i in included_set]
            agg = r.Aggregate(child, sub_group, sub_names,
                              copy.deepcopy(node.aggs), list(node.agg_names),
                              r.GroupingKind.SIMPLE, None)
            # Re-project to the full output shape: excluded keys become NULL.
            exprs: list[s.ScalarExpr] = []
            names: list[str] = []
            for index, (expr, name) in enumerate(zip(node.group_by, node.group_names)):
                if index in included_set:
                    exprs.append(s.ColumnRef(name, type=expr.type))
                else:
                    exprs.append(s.Cast(s.null_const(), expr.type))
                names.append(name)
            for agg_call, name in zip(node.aggs, node.agg_names):
                exprs.append(s.ColumnRef(name, type=agg_call.type))
                names.append(name)
            branches.append(r.Project(agg, exprs, names))
        result = branches[0]
        for branch in branches[1:]:
            result = r.SetOp(r.SetOpKind.UNION, True, result, branch)
        # Preserve the original aggregate's output qualifiers via a derived
        # alias so parents referencing _G/_A names keep resolving.
        return result
