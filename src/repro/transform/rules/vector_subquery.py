"""Vector (row-value) quantified subquery rewrite (Section 5.3, Figures 6/7).

Teradata's ``(a, b) > ANY (SELECT x, y FROM ...)`` compares vectors
lexicographically: ``a > x OR (a = x AND b > y)``. Targets without row-value
quantified comparisons get a semantically equivalent *existential correlated
subquery*::

    EXISTS (SELECT 1 FROM (<subquery>) V WHERE a > V.x OR (a = V.x AND b > V.y))

This is a system-specific rewrite: targets that understand the construct
natively never trigger it, which is why the paper defers it to just before
serialization.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.transform.engine import Rule, RuleContext
from repro.transform.capabilities import CapabilityProfile
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.scalars import ScalarExpr


def lexicographic_predicate(op: s.CompOp, left: list[ScalarExpr],
                            right: list[ScalarExpr]) -> ScalarExpr:
    """Expand a vector comparison into scalar AND/OR structure."""
    if op in (s.CompOp.EQ, s.CompOp.NE):
        conjuncts: list[ScalarExpr] = [
            s.Comp(s.CompOp.EQ, lv, rv) for lv, rv in zip(left, right)
        ]
        all_equal = s.conjoin(conjuncts)
        assert all_equal is not None
        return s.Not(all_equal) if op is s.CompOp.NE else all_equal
    strict = s.CompOp.GT if op in (s.CompOp.GT, s.CompOp.GE) else s.CompOp.LT
    disjuncts: list[ScalarExpr] = []
    for position in range(len(left)):
        parts: list[ScalarExpr] = [
            s.Comp(s.CompOp.EQ, left[prefix], right[prefix])
            for prefix in range(position)
        ]
        parts.append(s.Comp(strict, left[position], right[position]))
        term = s.conjoin(parts)
        assert term is not None
        disjuncts.append(term)
    if op in (s.CompOp.GE, s.CompOp.LE):
        equals = s.conjoin([s.Comp(s.CompOp.EQ, lv, rv)
                            for lv, rv in zip(left, right)])
        assert equals is not None
        disjuncts.append(equals)
    if len(disjuncts) == 1:
        return disjuncts[0]
    return s.BoolOp(s.BoolOpKind.OR, disjuncts)


class VectorSubqueryRule(Rule):
    """Rewrite quantified vector subqueries into EXISTS form."""

    name = "vector_subquery_to_exists"
    stage = "serializer"
    feature = "vector_subquery"

    def applies(self, profile: CapabilityProfile) -> bool:
        return not profile.vector_subquery

    def rewrite_scalar(self, expr: ScalarExpr, ctx: RuleContext) -> ScalarExpr:
        if not isinstance(expr, s.SubqueryExpr):
            return expr
        if expr.kind not in (s.SubqueryKind.QUANTIFIED, s.SubqueryKind.IN):
            return expr
        if len(expr.left) <= 1:
            return expr
        ctx.fired(self)
        op = expr.op or s.CompOp.EQ
        quantifier = expr.quantifier or s.Quantifier.ANY
        alias = ctx.fresh_alias("_VSQ")
        derived = r.DerivedTable(expr.plan, alias)
        inner_cols = derived.output_columns()
        if len(inner_cols) != len(expr.left):
            raise TransformError(
                f"vector comparison of {len(expr.left)} expressions against a "
                f"{len(inner_cols)}-column subquery")
        right_refs: list[ScalarExpr] = [
            s.ColumnRef(col.name, col.qualifier, col.type) for col in inner_cols
        ]
        predicate = lexicographic_predicate(op, list(expr.left), right_refs)
        negate_exists = False
        if quantifier is s.Quantifier.ALL:
            # x op ALL S  <=>  NOT EXISTS (SELECT 1 FROM S WHERE NOT (x op s)).
            # (Assumes non-NULL vector elements; documented in DESIGN.md.)
            predicate = s.Not(predicate)
            negate_exists = True
        filtered = r.Filter(derived, predicate)
        probe = r.Project(filtered, [s.const_int(1)], ["_ONE"])
        exists = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=probe)
        exists.type = t.BOOLEAN
        exists.negated = expr.negated != negate_exists
        return exists
