"""Workload generators: TPC-H in Teradata dialect and synthetic customer
workloads calibrated to the paper's two case-study customers."""
