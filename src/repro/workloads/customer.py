"""Synthetic customer workloads calibrated to the paper's case study.

Table 1 describes two customers: a Health customer (39,731 queries, 3,778
distinct) and a Telco customer (192,753 queries, 10,446 distinct). Their real
workloads are proprietary, so this module generates synthetic stand-ins with
the *same query counts* and a feature mix chosen to land near the Figure 8
measurements:

* Workload 1 uses 5/9 translation, 7/9 transformation and 3/9 emulation
  features; ~1.4% / ~33.6% / ~0.2% of distinct queries are affected per class.
* Workload 2 wraps most business logic in macros (the paper's explanation for
  its 79.1% emulation share) and uses 2/9 / 6/9 / 3/9 features.

Importantly the generator only controls which *SQL text* each query contains;
the Figure 8 numbers are measured by running every distinct query through
Hyper-Q's rewrite engine with the FeatureTracker attached — if the engine
stopped detecting a feature, the reproduction of Figure 8 would drift, not
silently stay put.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CustomerProfile:
    """One synthetic customer (a row of Table 1)."""

    number: int
    sector: str
    total_queries: int
    distinct_queries: int
    seed: int
    #: feature name -> number of distinct queries carrying it.
    feature_quotas: dict[str, int] = field(default_factory=dict, hash=False)


#: Customer 1 (Health): transformation-heavy, almost no emulation.
HEALTH = CustomerProfile(
    number=1,
    sector="Health",
    total_queries=39_731,
    distinct_queries=3_778,
    seed=1001,
    feature_quotas={
        # Translation: 5 of 9 tracked features, ~1.4% of queries.
        "sel_shortcut": 20,
        "del_shortcut": 8,
        "zeroifnull": 12,
        "chars_function": 8,
        "mod_operator": 5,
        # Transformation: 7 of 9 tracked features, ~33.6% of queries.
        "qualify": 230,
        "implicit_join": 95,
        "named_expression": 180,
        "ordinal_group_by": 260,
        "date_arithmetic": 130,
        "date_int_comparison": 74,
        "null_ordering": 300,
        # Emulation: 3 of 9 tracked features, ~0.2% of queries.
        "recursive_query": 3,
        "help_command": 3,
        "volatile_table": 2,
    },
)

#: Customer 2 (Telco): business logic lives in macros -> emulation dominates.
TELCO = CustomerProfile(
    number=2,
    sector="Telco",
    total_queries=192_753,
    distinct_queries=10_446,
    seed=2002,
    feature_quotas={
        # Translation: 2 of 9 features, ~0.2% of queries.
        "sel_shortcut": 13,
        "ne_operator": 8,
        # Transformation: 6 of 9 features, ~4.0% of queries.
        "qualify": 80,
        "implicit_join": 40,
        "named_expression": 70,
        "ordinal_group_by": 100,
        "date_arithmetic": 58,
        "null_ordering": 70,
        # Emulation: 3 of 9 features, ~79.1% of queries.
        "macro": 8_200,
        "merge_statement": 40,
        "dml_on_view": 23,
    },
)

PROFILES = {1: HEALTH, 2: TELCO}

_MACRO_COUNT = 25  # distinct macro definitions EXECed by workload 2


def schema_sql(profile: CustomerProfile) -> list[str]:
    """Source-dialect DDL for the profile's schema (run through Hyper-Q)."""
    prefix = "HC" if profile.number == 1 else "TC"
    statements = [
        f"""CREATE MULTISET TABLE {prefix}_FACTS (
            ID INTEGER NOT NULL, GRP INTEGER, REGION INTEGER,
            VAL DECIMAL(12,2), QTY INTEGER, NAME VARCHAR(40),
            EVT_DATE DATE, NOTE VARCHAR(80))""",
        f"""CREATE MULTISET TABLE {prefix}_DIM (
            ID INTEGER NOT NULL, LABEL VARCHAR(40), CATEGORY INTEGER)""",
        f"""CREATE MULTISET TABLE {prefix}_EVENTS (
            ID INTEGER NOT NULL, FACT_ID INTEGER, KIND INTEGER,
            AMOUNT DECIMAL(12,2), EVT_DATE DATE)""",
        f"""CREATE VIEW {prefix}_ACTIVE AS
            SELECT ID, GRP, VAL FROM {prefix}_FACTS WHERE QTY > 0""",
    ]
    return statements


def setup_sql(profile: CustomerProfile) -> list[str]:
    """Objects the workload depends on beyond tables (macros)."""
    if profile.feature_quotas.get("macro", 0) == 0:
        return []
    prefix = "TC"
    statements = []
    for index in range(_MACRO_COUNT):
        statements.append(
            f"CREATE MACRO {prefix}_RPT_{index} (P1 INTEGER) AS "
            f"(SELECT GRP, SUM(VAL) FROM {prefix}_FACTS "
            f"WHERE REGION = :P1 GROUP BY GRP;)")
    return statements


def _plain_query(prefix: str, rng: random.Random) -> str:
    variant = rng.randrange(4)
    grp = rng.randrange(1, 500)
    if variant == 0:
        return (f"SELECT ID, NAME, VAL FROM {prefix}_FACTS "
                f"WHERE GRP = {grp} AND QTY > {rng.randrange(10)}")
    if variant == 1:
        return (f"SELECT GRP, SUM(VAL) AS TOTAL, COUNT(*) AS N "
                f"FROM {prefix}_FACTS WHERE REGION = {rng.randrange(50)} "
                f"GROUP BY GRP")
    if variant == 2:
        return (f"SELECT F.NAME, D.LABEL FROM {prefix}_FACTS F "
                f"JOIN {prefix}_DIM D ON F.GRP = D.ID "
                f"WHERE D.CATEGORY = {rng.randrange(20)}")
    return (f"SELECT ID FROM {prefix}_FACTS WHERE VAL BETWEEN "
            f"{grp} AND {grp + rng.randrange(1, 100)}")


def _feature_query(feature: str, prefix: str, rng: random.Random) -> str:
    grp = rng.randrange(1, 500)
    day = rng.randrange(1, 28)
    if feature == "sel_shortcut":
        return f"SEL ID, VAL FROM {prefix}_FACTS WHERE GRP = {grp}"
    if feature == "del_shortcut":
        return f"DEL FROM {prefix}_EVENTS WHERE KIND = {rng.randrange(100)}"
    if feature == "ne_operator":
        return f"SELECT ID FROM {prefix}_FACTS WHERE GRP ^= {grp}"
    if feature == "zeroifnull":
        return (f"SELECT ID, ZEROIFNULL(VAL) FROM {prefix}_FACTS "
                f"WHERE GRP = {grp}")
    if feature == "chars_function":
        return (f"SELECT ID FROM {prefix}_FACTS WHERE CHARS(NAME) > "
                f"{rng.randrange(3, 20)}")
    if feature == "mod_operator":
        return f"SELECT ID FROM {prefix}_FACTS WHERE ID MOD {rng.randrange(2, 9)} = 0"
    if feature == "qualify":
        return (f"SELECT ID, VAL FROM {prefix}_FACTS WHERE GRP = {grp} "
                f"QUALIFY RANK(VAL DESC) <= {rng.randrange(5, 50)}")
    if feature == "implicit_join":
        dim = f"{prefix}_DIM"
        return (f"SELECT F.ID, {dim}.LABEL FROM {prefix}_FACTS F "
                f"WHERE F.GRP = {dim}.ID AND {dim}.CATEGORY = {rng.randrange(20)}")
    if feature == "named_expression":
        return (f"SELECT VAL AS BASE, BASE * {1 + rng.randrange(1, 9) / 10} "
                f"AS ADJUSTED FROM {prefix}_FACTS WHERE GRP = {grp}")
    if feature == "ordinal_group_by":
        return (f"SELECT GRP, SUM(VAL) FROM {prefix}_FACTS "
                f"WHERE REGION = {rng.randrange(50)} GROUP BY 1")
    if feature == "date_arithmetic":
        return (f"SELECT ID FROM {prefix}_FACTS WHERE EVT_DATE > "
                f"DATE '2016-03-{day:02d}' - {rng.randrange(10, 200)}")
    if feature == "date_int_comparison":
        encoded = 1_160_000 + rng.randrange(1, 12) * 100 + day
        return f"SELECT ID FROM {prefix}_FACTS WHERE EVT_DATE > {encoded}"
    if feature == "null_ordering":
        return (f"SELECT ID, VAL FROM {prefix}_FACTS WHERE GRP = {grp} "
                f"ORDER BY VAL DESC")
    if feature == "recursive_query":
        return (f"WITH RECURSIVE CHAIN (ID, FACT_ID) AS ("
                f"SELECT ID, FACT_ID FROM {prefix}_EVENTS WHERE KIND = {grp % 7} "
                f"UNION ALL SELECT E.ID, E.FACT_ID FROM {prefix}_EVENTS E, CHAIN "
                f"WHERE CHAIN.FACT_ID = E.ID) SELECT ID FROM CHAIN")
    if feature == "help_command":
        return f"HELP TABLE {prefix}_FACTS"
    if feature == "volatile_table":
        return (f"CREATE VOLATILE TABLE {prefix}_SCRATCH_{rng.randrange(10_000)} "
                f"(K INTEGER, V DECIMAL(12,2)) ON COMMIT PRESERVE ROWS")
    if feature == "macro":
        return f"EXEC {prefix}_RPT_{rng.randrange(_MACRO_COUNT)} ({rng.randrange(50)})"
    if feature == "merge_statement":
        return (f"MERGE INTO {prefix}_FACTS USING {prefix}_EVENTS E "
                f"ON {prefix}_FACTS.ID = E.FACT_ID "
                f"WHEN MATCHED THEN UPDATE SET VAL = E.AMOUNT")
    if feature == "dml_on_view":
        return (f"UPDATE {prefix}_ACTIVE SET VAL = VAL * 1.0{rng.randrange(1, 9)} "
                f"WHERE GRP = {grp}")
    raise ValueError(f"no template for feature {feature!r}")


def distinct_queries(profile: CustomerProfile) -> list[str]:
    """The profile's distinct query texts (deterministic for the seed)."""
    rng = random.Random(profile.seed)
    prefix = "HC" if profile.number == 1 else "TC"
    queries: list[str] = []
    for feature, quota in profile.feature_quotas.items():
        for __ in range(quota):
            queries.append(_feature_query(feature, prefix, rng))
    while len(queries) < profile.distinct_queries:
        queries.append(_plain_query(prefix, rng))
    del queries[profile.distinct_queries:]
    rng.shuffle(queries)
    return queries


def frequencies(profile: CustomerProfile) -> list[int]:
    """Per-distinct-query submission counts summing to the Table 1 total.

    Real workloads are heavily skewed (reports re-run with different
    parameters); a Zipf-flavoured weighting reproduces that shape.
    """
    rng = random.Random(profile.seed + 1)
    counts = [1] * profile.distinct_queries
    weights = [1.0 / (rank + 1) for rank in range(profile.distinct_queries)]
    extra = profile.total_queries - profile.distinct_queries
    for index in rng.choices(range(profile.distinct_queries), weights, k=extra):
        counts[index] += 1
    return counts


def workload(profile: CustomerProfile):
    """(schema DDL, setup DDL, distinct queries, frequencies)."""
    return (schema_sql(profile), setup_sql(profile),
            distinct_queries(profile), frequencies(profile))
