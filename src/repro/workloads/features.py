"""Registry of the 27 tracked non-standard features.

Section 7.1 instruments Hyper-Q's rewrite engine to track 27 commonly used
non-standard features, nine from each of the three difficulty classes of
Section 2.1 (Translation, Transformation, Emulation). This module is the
single source of truth for those features: the tracker, the workload
generators, Figure 2's support matrix and Table 2's component mapping all key
off these names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FeatureClass(enum.Enum):
    """The paper's three difficulty classes (Section 2.1)."""

    TRANSLATION = "Translation"
    TRANSFORMATION = "Transformation"
    EMULATION = "Emulation"


class Component(enum.Enum):
    """Hyper-Q component that implements a feature's rewrite (Table 2)."""

    PARSER = "Parser"
    BINDER = "Binder"
    TRANSFORMER = "Transformer"
    SERIALIZER = "Serializer"
    EMULATOR = "Emulator"


@dataclass(frozen=True)
class Feature:
    """One tracked feature.

    Attributes:
        name: stable identifier used by the tracker.
        feature_class: difficulty class.
        component: component where this reproduction implements the rewrite.
        capability: the CapabilityProfile flag gating native support on a
            target (None for pure keyword translations every target needs).
        description: short human description (mirrors Table 2 prose).
    """

    name: str
    feature_class: FeatureClass
    component: Component
    capability: str | None
    description: str


FEATURES: list[Feature] = [
    # -- Translation (9): keyword/function spelling differences -----------------
    Feature("sel_shortcut", FeatureClass.TRANSLATION, Component.PARSER,
            "keyword_shortcuts", "SEL shortcut for SELECT"),
    Feature("ins_shortcut", FeatureClass.TRANSLATION, Component.PARSER,
            "keyword_shortcuts", "INS shortcut for INSERT"),
    Feature("upd_shortcut", FeatureClass.TRANSLATION, Component.PARSER,
            "keyword_shortcuts", "UPD shortcut for UPDATE"),
    Feature("del_shortcut", FeatureClass.TRANSLATION, Component.PARSER,
            "keyword_shortcuts", "DEL shortcut for DELETE"),
    Feature("ne_operator", FeatureClass.TRANSLATION, Component.PARSER,
            None, "^= / NE inequality spellings"),
    Feature("zeroifnull", FeatureClass.TRANSLATION, Component.SERIALIZER,
            None, "ZEROIFNULL / NULLIFZERO builtins"),
    Feature("chars_function", FeatureClass.TRANSLATION, Component.SERIALIZER,
            None, "CHARS / CHARACTERS string length"),
    Feature("index_function", FeatureClass.TRANSLATION, Component.SERIALIZER,
            None, "INDEX(string, substring) search"),
    Feature("mod_operator", FeatureClass.TRANSLATION, Component.PARSER,
            None, "infix MOD operator"),
    # -- Transformation (9): structure-aware rewrites ----------------------------
    Feature("qualify", FeatureClass.TRANSFORMATION, Component.BINDER,
            "qualify_clause", "QUALIFY predicate over window functions"),
    Feature("implicit_join", FeatureClass.TRANSFORMATION, Component.BINDER,
            "implicit_joins", "tables referenced outside the FROM clause"),
    Feature("named_expression", FeatureClass.TRANSFORMATION, Component.BINDER,
            "named_expression_reuse", "alias reuse within one SELECT list"),
    Feature("ordinal_group_by", FeatureClass.TRANSFORMATION, Component.BINDER,
            "ordinal_group_by", "GROUP BY / ORDER BY column positions"),
    Feature("grouping_extensions", FeatureClass.TRANSFORMATION, Component.TRANSFORMER,
            "grouping_extensions", "ROLLUP / CUBE / GROUPING SETS"),
    Feature("date_arithmetic", FeatureClass.TRANSFORMATION, Component.TRANSFORMER,
            "date_int_arithmetic", "date +/- integer arithmetic"),
    Feature("date_int_comparison", FeatureClass.TRANSFORMATION, Component.TRANSFORMER,
            "date_int_comparison", "DATE compared with internal integer form"),
    Feature("vector_subquery", FeatureClass.TRANSFORMATION, Component.SERIALIZER,
            "vector_subquery", "(a, b) op ANY/ALL (SELECT x, y ...)"),
    Feature("null_ordering", FeatureClass.TRANSFORMATION, Component.SERIALIZER,
            None, "implicit NULL placement in ORDER BY"),
    # -- Emulation (9): mid-tier feature reconstruction ---------------------------
    Feature("macro", FeatureClass.EMULATION, Component.EMULATOR,
            "macros", "CREATE MACRO / EXEC parameterized statements"),
    Feature("stored_procedure", FeatureClass.EMULATION, Component.EMULATOR,
            "stored_procedures", "CREATE PROCEDURE / CALL with control flow"),
    Feature("recursive_query", FeatureClass.EMULATION, Component.EMULATOR,
            "recursive_cte", "WITH RECURSIVE common table expressions"),
    Feature("merge_statement", FeatureClass.EMULATION, Component.EMULATOR,
            "merge_statement", "MERGE upsert statement"),
    Feature("dml_on_view", FeatureClass.EMULATION, Component.EMULATOR,
            "updatable_views", "INSERT/UPDATE/DELETE against views"),
    Feature("help_command", FeatureClass.EMULATION, Component.EMULATOR,
            "help_commands", "HELP SESSION / SHOW TABLE introspection"),
    Feature("set_table", FeatureClass.EMULATION, Component.EMULATOR,
            "set_tables", "SET table duplicate-row elimination"),
    Feature("column_properties", FeatureClass.EMULATION, Component.BINDER,
            "nonconstant_defaults", "non-constant defaults / NOT CASESPECIFIC"),
    Feature("volatile_table", FeatureClass.EMULATION, Component.EMULATOR,
            "volatile_tables", "VOLATILE / global temporary tables"),
]

FEATURES_BY_NAME: dict[str, Feature] = {feature.name: feature for feature in FEATURES}

FEATURES_BY_CLASS: dict[FeatureClass, list[Feature]] = {
    cls: [feature for feature in FEATURES if feature.feature_class is cls]
    for cls in FeatureClass
}

assert all(len(features) == 9 for features in FEATURES_BY_CLASS.values()), \
    "the paper tracks exactly 9 features per class"


def feature(name: str) -> Feature:
    """Look up a tracked feature by name."""
    return FEATURES_BY_NAME[name]
