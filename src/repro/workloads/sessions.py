"""Interactive BI dashboard sessions: a seeded multi-tenant workload.

The paper's adoption story (Section 7, Table 1) is dominated by BI tools
re-issuing near-identical read-only queries as analysts interact with
dashboards — drill-downs, filters, pivots, sorts, and whole-dashboard
refreshes that fan out one query per tile at the same instant. This
module generates that traffic shape deterministically so the tenancy
control plane can be exercised (and benchmarked) with a reproducible
multi-tenant timeline.

Model: each session is one analyst's dashboard with a handful of tiles
(worksheets). Opening the dashboard issues every tile's query at once (a
burst); each subsequent *gesture* mutates the focused tile's worksheet
state — drill adds a dimension, filter adds a predicate, pivot rotates
dimensions or flips aggregate/top-n mode, sort flips direction — and
re-issues its SQL after an exponentially-distributed think time. A
*refresh* gesture re-issues every tile at the same timestamp.

All SQL is built from dialect shapes the conformance battery proves
end-to-end: ``GROUP BY ROLLUP (...)`` aggregates and ``QUALIFY
ROW_NUMBER() OVER (...) <= n`` top-n windows over the TPC-H schema
(:mod:`repro.workloads.tpch`).

Determinism contract: :func:`generate` is a pure function of its
:class:`SessionConfig` — same seed, byte-identical SQL stream *and*
timeline. :func:`render` canonicalizes the event list to text and
:func:`signature` hashes it; the regression suite pins both.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, fields
from typing import Callable, Optional

from repro.errors import SessionConfigError

#: Gestures a step may apply to the focused tile. ``refresh`` re-issues
#: every tile of the dashboard in one burst.
GESTURES = ("drill", "filter", "pivot", "sort", "refresh")

_GESTURE_WEIGHTS = (25, 25, 15, 15, 20)

#: Worksheet catalog: each entry describes one dashboard tile family over
#: the TPC-H schema. ``dims`` are drillable in order; ``filters`` are
#: appended (then cycled) by filter gestures; ``topn`` is ``(key column,
#: value column, partition column)`` for the window-mode rendering.
WORKSHEETS = (
    {
        "name": "orders_status",
        "table": "ORDERS",
        "dims": ("O_ORDERSTATUS", "O_ORDERPRIORITY"),
        "measure": "SUM(O_TOTALPRICE)",
        "filters": ("O_CUSTKEY > 10", "O_TOTALPRICE > 1000",
                    "O_ORDERSTATUS = 'F'"),
        "topn": ("O_ORDERKEY", "O_TOTALPRICE", "O_ORDERSTATUS"),
    },
    {
        "name": "lineitem_flow",
        "table": "LINEITEM",
        "dims": ("L_RETURNFLAG", "L_LINESTATUS", "L_SHIPMODE"),
        "measure": "SUM(L_EXTENDEDPRICE)",
        "filters": ("L_PARTKEY > 5", "L_QUANTITY > 10",
                    "L_SHIPMODE = 'AIR'"),
        "topn": ("L_ORDERKEY", "L_EXTENDEDPRICE", "L_RETURNFLAG"),
    },
    {
        "name": "customer_segments",
        "table": "CUSTOMER",
        "dims": ("C_MKTSEGMENT", "C_NATIONKEY"),
        "measure": "SUM(C_ACCTBAL)",
        "filters": ("C_ACCTBAL > 100", "C_CUSTKEY > 3",
                    "C_MKTSEGMENT = 'BUILDING'"),
        "topn": ("C_CUSTKEY", "C_ACCTBAL", "C_MKTSEGMENT"),
    },
)


@dataclass(frozen=True)
class SessionConfig:
    """Everything the generator needs; a pure value, safe to pickle.

    ``tenants`` get equal session counts; skew tenant load by repeating a
    name. Think times are exponential with mean ``think_mean`` seconds,
    floored at ``think_min``; session starts spread uniformly over
    ``start_spread`` seconds so tenants interleave from t=0.
    """

    seed: int = 20260808
    tenants: tuple[str, ...] = ("acme", "zenith")
    sessions_per_tenant: int = 2
    steps_per_session: int = 8
    tiles_per_session: int = 3
    think_mean: float = 1.0
    think_min: float = 0.05
    refresh_probability: float = 0.2
    start_spread: float = 2.0
    top_n: int = 5

    def __post_init__(self):
        if not self.tenants:
            raise SessionConfigError(
                "session config needs at least one tenant")
        for tenant in self.tenants:
            if not isinstance(tenant, str) or not tenant.strip():
                raise SessionConfigError(
                    f"tenant names must be non-empty strings, got {tenant!r}")
        object.__setattr__(self, "tenants",
                           tuple(t.strip().lower() for t in self.tenants))
        for name, minimum in (("sessions_per_tenant", 1),
                              ("steps_per_session", 1),
                              ("tiles_per_session", 1), ("top_n", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or value < minimum:
                raise SessionConfigError(
                    f"{name} must be an integer >= {minimum}, got {value!r}")
        if self.think_mean <= 0:
            raise SessionConfigError(
                f"think_mean must be positive seconds, got {self.think_mean!r}")
        if self.think_min < 0 or self.start_spread < 0:
            raise SessionConfigError(
                "think_min and start_spread must be non-negative")
        if not 0.0 <= self.refresh_probability <= 1.0:
            raise SessionConfigError(
                f"refresh_probability must be in [0, 1], "
                f"got {self.refresh_probability!r}")

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        """Build from a JSON-shaped dict, rejecting unknown keys by name
        (a typo'd field must not silently fall back to a default)."""
        if not isinstance(data, dict):
            raise SessionConfigError(
                f"session config must be an object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SessionConfigError(
                f"unknown session config keys {unknown}; "
                f"known keys are {sorted(known)}")
        value = dict(data)
        if "tenants" in value:
            if not isinstance(value["tenants"], (list, tuple)):
                raise SessionConfigError(
                    "session config 'tenants' must be a list of names")
            value["tenants"] = tuple(value["tenants"])
        return cls(**value)


@dataclass(frozen=True)
class SessionEvent:
    """One query issue: the instant, who issued it, and the exact SQL."""

    at: float          # seconds from timeline start
    tenant: str
    session: int       # per-tenant session ordinal
    step: int          # gesture ordinal within the session (0 = open)
    tile: int          # which dashboard tile issued the query
    gesture: str
    sql: str


class _Worksheet:
    """Mutable per-tile state the gesture machine evolves.

    Two render modes: ``rollup`` (aggregate grid — ``GROUP BY ROLLUP``)
    and ``topn`` (record detail — ``QUALIFY ROW_NUMBER()``), both proven
    by the conformance battery.
    """

    def __init__(self, spec: dict, top_n: int):
        self.spec = spec
        self.active_dims = [spec["dims"][0]]
        self.active_filters: list[str] = []
        self.mode = "rollup"
        self.top_n = top_n
        self.descending = True

    def drill(self) -> None:
        for dim in self.spec["dims"]:
            if dim not in self.active_dims:
                self.active_dims.append(dim)
                return
        self.pivot()  # fully drilled: rotate instead

    def filter(self) -> None:
        for predicate in self.spec["filters"]:
            if predicate not in self.active_filters:
                self.active_filters.append(predicate)
                return
        self.active_filters.clear()  # all applied: clear back to base view

    def pivot(self) -> None:
        if len(self.active_dims) > 1:
            self.active_dims = self.active_dims[1:] + self.active_dims[:1]
        else:
            self.mode = "topn" if self.mode == "rollup" else "rollup"

    def sort(self) -> None:
        if self.mode == "topn":
            self.descending = not self.descending
        else:
            self.mode = "topn"

    def compile_sql(self) -> str:
        where = (" WHERE " + " AND ".join(self.active_filters)
                 if self.active_filters else "")
        if self.mode == "rollup":
            dims = ", ".join(self.active_dims)
            return (f"SEL {dims}, {self.spec['measure']}, COUNT(*) "
                    f"FROM {self.spec['table']}{where} "
                    f"GROUP BY ROLLUP ({dims})")
        key, value, partition = self.spec["topn"]
        direction = "DESC" if self.descending else "ASC"
        return (f"SEL {key}, {value} FROM {self.spec['table']}{where} "
                f"QUALIFY ROW_NUMBER() OVER (PARTITION BY {partition} "
                f"ORDER BY {value} {direction}, {key}) <= {self.top_n}")


def _session_events(config: SessionConfig, tenant: str, tenant_index: int,
                    session: int) -> list[SessionEvent]:
    """One session's full timeline, from its own derived RNG stream.

    The derivation is plain integer arithmetic (never ``hash()``, which
    is salted per process) so a given (seed, tenant position, session)
    always replays the identical stream.
    """
    rng = random.Random(config.seed * 1_000_003
                        + tenant_index * 10_007 + session)
    tiles = [_Worksheet(WORKSHEETS[(tenant_index + session + k)
                                   % len(WORKSHEETS)], config.top_n)
             for k in range(config.tiles_per_session)]
    events: list[SessionEvent] = []
    at = rng.uniform(0.0, config.start_spread)
    # Opening the dashboard loads every tile at once — the first burst.
    for index, tile in enumerate(tiles):
        events.append(SessionEvent(at, tenant, session, 0, index, "open",
                                   tile.compile_sql()))
    for step in range(1, config.steps_per_session + 1):
        at += max(config.think_min,
                  rng.expovariate(1.0 / config.think_mean))
        if rng.random() < config.refresh_probability:
            # Whole-dashboard refresh: every tile re-issues at the same
            # instant — the bursty fan-out the tenancy quotas must absorb.
            for index, tile in enumerate(tiles):
                events.append(SessionEvent(at, tenant, session, step, index,
                                           "refresh", tile.compile_sql()))
            continue
        gesture = rng.choices(GESTURES[:4], weights=_GESTURE_WEIGHTS[:4])[0]
        focus = rng.randrange(len(tiles))
        tile = tiles[focus]
        getattr(tile, gesture)()
        events.append(SessionEvent(at, tenant, session, step, focus,
                                   gesture, tile.compile_sql()))
    return events


def generate(config: SessionConfig) -> list[SessionEvent]:
    """The full multi-tenant timeline, sorted by issue instant.

    Ties (dashboard bursts, cross-session coincidences) break on
    ``(tenant, session, step, tile)`` so the order itself is
    deterministic, not merely the set of events.
    """
    events: list[SessionEvent] = []
    for tenant_index, tenant in enumerate(config.tenants):
        for session in range(config.sessions_per_tenant):
            events.extend(
                _session_events(config, tenant, tenant_index, session))
    events.sort(key=lambda e: (e.at, e.tenant, e.session, e.step, e.tile))
    return events


def render(events: list[SessionEvent]) -> str:
    """Byte-canonical text form of a timeline (one TSV line per event).

    Timestamps print with fixed six-decimal precision; since every field
    is either deterministic text or a float produced by the seeded RNG,
    equal seeds yield equal bytes.
    """
    lines = [f"{event.at:.6f}\t{event.tenant}\t{event.session}"
             f"\t{event.step}\t{event.tile}\t{event.gesture}\t{event.sql}"
             for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def signature(events: list[SessionEvent]) -> str:
    """SHA-256 over :func:`render` — the replayability fingerprint."""
    return hashlib.sha256(render(events).encode("utf-8")).hexdigest()


def replay(events: list[SessionEvent],
           execute: Callable[[SessionEvent], object],
           timescale: float = 0.0,
           clock: Callable[[], float] = time.monotonic,
           sleep: Callable[[float], None] = time.sleep,
           stop: Optional[Callable[[], bool]] = None) -> int:
    """Drive a timeline against *execute* (called once per event).

    ``timescale`` scales the recorded timestamps into real waiting: 1.0
    replays at recorded speed, 0.1 ten times faster, 0 as fast as
    *execute* returns (the benchmark mode). *stop* is polled before each
    event for cooperative cancellation. Returns the number of events
    executed.
    """
    if timescale < 0:
        raise SessionConfigError("timescale must be non-negative")
    start = clock()
    issued = 0
    for event in events:
        if stop is not None and stop():
            break
        if timescale > 0:
            delay = event.at * timescale - (clock() - start)
            if delay > 0:
                sleep(delay)
        execute(event)
        issued += 1
    return issued
