"""TPC-H workload in the Teradata dialect (Section 7.2's benchmark)."""

from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES
from repro.workloads.tpch.datagen import generate, load_into
from repro.workloads.tpch.queries import QUERIES, query

__all__ = ["SCHEMA_DDL", "TABLE_NAMES", "generate", "load_into", "QUERIES", "query"]
