"""Deterministic TPC-H data generator (a laptop-scale dbgen).

Produces the eight TPC-H tables at a configurable scale factor with the
value distributions the 22 queries depend on (date ranges, segment / priority
/ ship-mode vocabularies, PROMO part types, comment patterns for Q13/Q16,
phone country codes for Q22). Everything is driven by a seeded RNG, so two
runs at the same scale produce identical databases.

Row counts follow the spec's SF ratios: SF=1 means 10k suppliers, 150k
customers, 1.5M orders. The reproduction defaults to small fractions of that.
"""

from __future__ import annotations

import datetime
import random
from typing import Callable, Iterable

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
               "LG BOX", "JUMBO PKG", "WRAP CASE"]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_COLORS = ["almond", "antique", "aquamarine", "azure", "beige", "bisque",
           "blanched", "blush", "burlywood", "chartreuse", "chiffon",
           "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim",
           "dodger", "drab", "firebrick", "floral", "forest", "frosted",
           "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew"]

_ORDER_DATE_MIN = datetime.date(1992, 1, 1)
_ORDER_DATE_MAX = datetime.date(1998, 8, 2)
_CURRENT_DATE = datetime.date(1995, 6, 17)  # returnflag pivot per spec

#: Base row counts at SF = 1.
_BASE_COUNTS = {
    "SUPPLIER": 10_000,
    "PART": 200_000,
    "CUSTOMER": 150_000,
    "ORDERS": 1_500_000,
}


def _comment(rng: random.Random, length: int) -> str:
    words = []
    total = 0
    while total < length:
        word = rng.choice(_COLORS)
        words.append(word)
        total += len(word) + 1
    return " ".join(words)[:length]


def _money(rng: random.Random, low: float, high: float) -> float:
    return round(rng.uniform(low, high), 2)


def _phone(rng: random.Random, nationkey: int) -> str:
    return (f"{10 + nationkey}-{rng.randrange(100, 999)}-"
            f"{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}")


def generate(scale: float = 0.001, seed: int = 20180610) -> dict[str, list[tuple]]:
    """Generate all eight tables at the given scale factor."""
    rng = random.Random(seed)
    counts = {name: max(1, int(base * scale))
              for name, base in _BASE_COUNTS.items()}
    n_supplier = max(counts["SUPPLIER"], 5)
    n_part = max(counts["PART"], 20)
    n_customer = max(counts["CUSTOMER"], 10)
    n_orders = max(counts["ORDERS"], 30)

    data: dict[str, list[tuple]] = {}
    data["REGION"] = [
        (key, name, _comment(rng, 40)) for key, name in enumerate(_REGIONS)
    ]
    data["NATION"] = [
        (key, name, region, _comment(rng, 40))
        for key, (name, region) in enumerate(_NATIONS)
    ]
    data["SUPPLIER"] = [
        (key,
         f"Supplier#{key:09d}",
         _comment(rng, 20),
         rng.randrange(len(_NATIONS)),
         _phone(rng, key % len(_NATIONS)),
         _money(rng, -999.99, 9999.99),
         ("Customer Complaints " if rng.random() < 0.02 else "") + _comment(rng, 40))
        for key in range(1, n_supplier + 1)
    ]
    data["CUSTOMER"] = [
        (key,
         f"Customer#{key:09d}",
         _comment(rng, 20),
         rng.randrange(len(_NATIONS)),
         _phone(rng, rng.randrange(len(_NATIONS))),
         _money(rng, -999.99, 9999.99),
         rng.choice(_SEGMENTS),
         _comment(rng, 60))
        for key in range(1, n_customer + 1)
    ]
    part_rows = []
    for key in range(1, n_part + 1):
        name = " ".join(rng.sample(_COLORS, 3))
        mfgr = rng.randrange(1, 6)
        part_rows.append((
            key,
            name,
            f"Manufacturer#{mfgr}",
            f"Brand#{mfgr}{rng.randrange(1, 6)}",
            f"{rng.choice(_TYPE_SYLL1)} {rng.choice(_TYPE_SYLL2)} "
            f"{rng.choice(_TYPE_SYLL3)}",
            rng.randrange(1, 51),
            rng.choice(_CONTAINERS),
            round(900 + (key % 1000) * 0.1 + rng.uniform(0, 100), 2),
            _comment(rng, 15),
        ))
    data["PART"] = part_rows
    retail = {row[0]: row[7] for row in part_rows}

    partsupp_rows = []
    for key in range(1, n_part + 1):
        for offset in range(4):
            suppkey = 1 + (key + offset * (n_supplier // 4 + 1)) % n_supplier
            partsupp_rows.append((
                key, suppkey, rng.randrange(1, 10_000),
                _money(rng, 1.0, 1000.0), _comment(rng, 50)))
    data["PARTSUPP"] = partsupp_rows
    supplycost = {(ps[0], ps[1]): ps[3] for ps in partsupp_rows}
    part_suppliers: dict[int, list[int]] = {}
    for ps in partsupp_rows:
        part_suppliers.setdefault(ps[0], []).append(ps[1])

    orders_rows = []
    lineitem_rows = []
    date_span = (_ORDER_DATE_MAX - _ORDER_DATE_MIN).days - 151
    for orderkey in range(1, n_orders + 1):
        custkey = rng.randrange(1, n_customer + 1)
        orderdate = _ORDER_DATE_MIN + datetime.timedelta(days=rng.randrange(date_span))
        n_lines = rng.randrange(1, 8)
        total = 0.0
        all_filled = True
        any_filled = False
        for line in range(1, n_lines + 1):
            partkey = rng.randrange(1, n_part + 1)
            suppkey = rng.choice(part_suppliers[partkey])
            quantity = rng.randrange(1, 51)
            extended = round(quantity * retail[partkey] / 10.0, 2)
            discount = round(rng.uniform(0.0, 0.10), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            shipdate = orderdate + datetime.timedelta(days=rng.randrange(1, 122))
            commitdate = orderdate + datetime.timedelta(days=rng.randrange(30, 91))
            receiptdate = shipdate + datetime.timedelta(days=rng.randrange(1, 31))
            if receiptdate <= _CURRENT_DATE:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > _CURRENT_DATE else "F"
            if linestatus == "F":
                any_filled = True
            else:
                all_filled = False
            total += extended * (1 + tax) * (1 - discount)
            lineitem_rows.append((
                orderkey, partkey, suppkey, line, float(quantity), extended,
                discount, tax, returnflag, linestatus, shipdate, commitdate,
                receiptdate, rng.choice(_SHIP_INSTRUCT),
                rng.choice(_SHIP_MODES), _comment(rng, 25)))
        status = "F" if all_filled else ("O" if not any_filled else "P")
        comment = _comment(rng, 40)
        if rng.random() < 0.01:
            comment = "special packages requests " + comment
        orders_rows.append((
            orderkey, custkey, status, round(total, 2), orderdate,
            rng.choice(_PRIORITIES), f"Clerk#{rng.randrange(1, 1000):09d}",
            0, comment))
    data["ORDERS"] = orders_rows
    data["LINEITEM"] = lineitem_rows
    return data


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    return repr(value)


def insert_statements(table: str, rows: Iterable[tuple],
                      batch_rows: int = 250) -> Iterable[str]:
    """Yield batched INSERT statements in the source dialect."""
    batch: list[str] = []
    for row in rows:
        batch.append("(" + ", ".join(_sql_literal(v) for v in row) + ")")
        if len(batch) >= batch_rows:
            yield f"INSERT INTO {table} VALUES " + ", ".join(batch)
            batch = []
    if batch:
        yield f"INSERT INTO {table} VALUES " + ", ".join(batch)


def load_into(execute: Callable[[str], object], scale: float = 0.001,
              seed: int = 20180610, create_schema: bool = True,
              batch_rows: int = 250) -> dict[str, int]:
    """Create the schema and load generated data through *execute*.

    ``execute`` is any callable accepting source-dialect SQL — a
    :class:`~repro.core.engine.HyperQSession` method, a wire-protocol client,
    or (for baseline measurements) a backend session.
    """
    from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES

    data = generate(scale, seed)
    loaded: dict[str, int] = {}
    for table in TABLE_NAMES:
        if create_schema:
            execute(SCHEMA_DDL[table].strip())
        count = 0
        for statement in insert_statements(table, data[table], batch_rows):
            execute(statement)
        loaded[table] = len(data[table])
    return loaded


def load_direct(database, scale: float = 0.001, seed: int = 20180610) -> dict[str, int]:
    """Fast path: write rows straight into a backend Database's storage.

    Used by benchmarks where load time is not under measurement. The schema
    must already exist (e.g. created through Hyper-Q so the shadow catalog
    is populated too).
    """
    data = generate(scale, seed)
    loaded = {}
    for table_name, rows in data.items():
        table = database.catalog.table(table_name)
        table.insert_rows(rows)
        loaded[table_name] = len(rows)
    return loaded
