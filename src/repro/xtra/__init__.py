"""eXtended Relational Algebra (XTRA).

XTRA is the dialect-neutral intermediate representation described in Section 4
of the paper. Frontend binders produce XTRA, the Transformer rewrites it, and
per-target Serializers render it back into SQL. It is the *only* currency
between dialects: no SQL text crosses an internal module boundary.
"""

from repro.xtra import scalars, relational, types
from repro.xtra.types import SQLType, TypeKind
from repro.xtra.schema import ColumnSchema, TableSchema

__all__ = [
    "scalars",
    "relational",
    "types",
    "SQLType",
    "TypeKind",
    "ColumnSchema",
    "TableSchema",
]
