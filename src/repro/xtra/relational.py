"""Relational operators and statement nodes of the XTRA algebra.

The operator vocabulary mirrors the paper's Figures 5/6: ``get``, ``select``
(here split into :class:`Filter` and :class:`Project`), ``window``, ``subq``
(a scalar node, see :mod:`repro.xtra.scalars`), joins, aggregation, sorting,
set operations, and statement-level DML/DDL. Every query operator can report
its output columns so binders and serializers can resolve names without a
side table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.scalars import (
    AggCall,
    ScalarExpr,
    SortKey,
    WindowFunc,
)
from repro.xtra.types import SQLType


@dataclass(frozen=True)
class OutputColumn:
    """One column of an operator's output: name, type and optional qualifier."""

    name: str
    type: SQLType
    qualifier: Optional[str] = None


class RelNode:
    """Base class for relational operators."""

    CHILD_RELS: tuple[str, ...] = ()
    SCALAR_FIELDS: tuple[str, ...] = ()

    def children(self) -> Iterable["RelNode"]:
        for name in self.CHILD_RELS:
            value = getattr(self, name)
            if isinstance(value, RelNode):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, RelNode):
                        yield item

    def scalars(self) -> Iterable[ScalarExpr]:
        """Yield top-level scalar expressions attached to this operator."""
        for name in self.SCALAR_FIELDS:
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, ScalarExpr):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ScalarExpr):
                        yield item

    def output_columns(self) -> list[OutputColumn]:
        raise NotImplementedError(type(self).__name__)


@dataclass(eq=False)
class Get(RelNode):
    """A base-table (or view) scan: the paper's ``get(SALES)``."""

    table: TableSchema
    alias: Optional[str] = None

    def output_columns(self) -> list[OutputColumn]:
        qualifier = (self.alias or self.table.name).upper()
        return [OutputColumn(col.name, col.type, qualifier) for col in self.table.columns]


@dataclass(eq=False)
class Values(RelNode):
    """An inline table of literal rows."""

    SCALAR_FIELDS = ("rows",)

    rows: list[list[ScalarExpr]] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    types: list[SQLType] = field(default_factory=list)

    def scalars(self) -> Iterable[ScalarExpr]:
        for row in self.rows:
            yield from row

    def output_columns(self) -> list[OutputColumn]:
        return [OutputColumn(name, typ) for name, typ in zip(self.names, self.types)]


@dataclass(eq=False)
class Filter(RelNode):
    """Row selection by a boolean predicate."""

    CHILD_RELS = ("child",)
    SCALAR_FIELDS = ("predicate",)

    child: RelNode
    predicate: ScalarExpr

    def output_columns(self) -> list[OutputColumn]:
        return self.child.output_columns()


@dataclass(eq=False)
class Project(RelNode):
    """Computed projection; pairs expressions with output names."""

    CHILD_RELS = ("child",)
    SCALAR_FIELDS = ("exprs",)

    child: RelNode
    exprs: list[ScalarExpr] = field(default_factory=list)
    names: list[str] = field(default_factory=list)

    def output_columns(self) -> list[OutputColumn]:
        return [OutputColumn(name, expr.type) for name, expr in zip(self.names, self.exprs)]


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"


@dataclass(eq=False)
class Join(RelNode):
    CHILD_RELS = ("left", "right")
    SCALAR_FIELDS = ("condition",)

    kind: JoinKind
    left: RelNode
    right: RelNode
    condition: Optional[ScalarExpr] = None

    def output_columns(self) -> list[OutputColumn]:
        return self.left.output_columns() + self.right.output_columns()


class GroupingKind(enum.Enum):
    """How GROUP BY keys combine (OLAP grouping extensions of Table 2)."""

    SIMPLE = "SIMPLE"
    ROLLUP = "ROLLUP"
    CUBE = "CUBE"
    SETS = "SETS"


@dataclass(eq=False)
class Aggregate(RelNode):
    """Grouping + aggregation.

    ``grouping_sets`` (for ``GroupingKind.SETS``) holds index lists into
    ``group_by``. The OLAP-grouping transformation rule expands ROLLUP/CUBE/
    SETS into a UNION ALL of SIMPLE aggregates for targets without support.
    """

    CHILD_RELS = ("child",)
    SCALAR_FIELDS = ("group_by", "aggs")

    child: RelNode
    group_by: list[ScalarExpr] = field(default_factory=list)
    group_names: list[str] = field(default_factory=list)
    aggs: list[AggCall] = field(default_factory=list)
    agg_names: list[str] = field(default_factory=list)
    kind: GroupingKind = GroupingKind.SIMPLE
    grouping_sets: Optional[list[list[int]]] = None

    def output_columns(self) -> list[OutputColumn]:
        cols = [OutputColumn(name, expr.type)
                for name, expr in zip(self.group_names, self.group_by)]
        cols += [OutputColumn(name, agg.type)
                 for name, agg in zip(self.agg_names, self.aggs)]
        return cols


@dataclass(eq=False)
class Window(RelNode):
    """Window computation: child columns pass through, plus one output column
    per :class:`~repro.xtra.scalars.WindowFunc` spec (the paper's
    ``window(RANK, DESC, AMOUNT)``)."""

    CHILD_RELS = ("child",)
    SCALAR_FIELDS = ("funcs",)

    child: RelNode
    funcs: list[WindowFunc] = field(default_factory=list)
    names: list[str] = field(default_factory=list)

    def output_columns(self) -> list[OutputColumn]:
        cols = list(self.child.output_columns())
        cols += [OutputColumn(name, func.type)
                 for name, func in zip(self.names, self.funcs)]
        return cols


@dataclass(eq=False)
class Sort(RelNode):
    CHILD_RELS = ("child",)
    SCALAR_FIELDS = ("keys",)

    child: RelNode
    keys: list[SortKey] = field(default_factory=list)

    def output_columns(self) -> list[OutputColumn]:
        return self.child.output_columns()


@dataclass(eq=False)
class Limit(RelNode):
    """TOP / LIMIT. ``with_ties`` models Teradata ``TOP n WITH TIES``."""

    CHILD_RELS = ("child",)

    child: RelNode
    count: Optional[int] = None
    offset: int = 0
    with_ties: bool = False

    def output_columns(self) -> list[OutputColumn]:
        return self.child.output_columns()


@dataclass(eq=False)
class Distinct(RelNode):
    """Duplicate elimination over the child's full row (SELECT DISTINCT)."""

    CHILD_RELS = ("child",)

    child: RelNode

    def output_columns(self) -> list[OutputColumn]:
        return self.child.output_columns()


class SetOpKind(enum.Enum):
    UNION = "UNION"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass(eq=False)
class SetOp(RelNode):
    CHILD_RELS = ("left", "right")

    kind: SetOpKind
    all: bool
    left: RelNode
    right: RelNode

    def output_columns(self) -> list[OutputColumn]:
        return [OutputColumn(col.name, col.type) for col in self.left.output_columns()]


@dataclass(eq=False)
class DerivedTable(RelNode):
    """A subquery in FROM with an alias (and optional column alias list)."""

    CHILD_RELS = ("child",)

    child: RelNode
    alias: str = ""
    column_names: Optional[list[str]] = None

    def output_columns(self) -> list[OutputColumn]:
        inner = self.child.output_columns()
        names = self.column_names or [col.name for col in inner]
        return [OutputColumn(name.upper(), col.type, self.alias.upper() or None)
                for name, col in zip(names, inner)]


@dataclass(eq=False)
class CTEDef:
    """One common-table-expression definition inside a WITH."""

    name: str
    plan: RelNode
    column_names: Optional[list[str]] = None
    recursive: bool = False


@dataclass(eq=False)
class With(RelNode):
    """WITH [RECURSIVE] ctes body. Recursive CTEs either serialize natively
    (capable targets) or are emulated via WorkTable/TempTable (Section 6)."""

    CHILD_RELS = ("body",)

    ctes: list[CTEDef] = field(default_factory=list)
    body: RelNode = None  # type: ignore[assignment]

    def children(self) -> Iterable[RelNode]:
        for cte in self.ctes:
            yield cte.plan
        yield self.body

    def output_columns(self) -> list[OutputColumn]:
        return self.body.output_columns()


@dataclass(eq=False)
class CTERef(RelNode):
    """A reference to a CTE (or the recursive self-reference)."""

    name: str
    columns: list[OutputColumn] = field(default_factory=list)
    alias: Optional[str] = None

    def output_columns(self) -> list[OutputColumn]:
        qualifier = (self.alias or self.name).upper()
        return [OutputColumn(col.name, col.type, qualifier) for col in self.columns]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class for executable statements."""


@dataclass(eq=False)
class Query(Statement):
    """A SELECT statement wrapping a relational plan."""

    plan: RelNode


@dataclass(eq=False)
class Insert(Statement):
    table: str
    columns: Optional[list[str]] = None
    source: RelNode = None  # type: ignore[assignment]  # Values or query plan


@dataclass(eq=False)
class Update(Statement):
    table: str
    assignments: list[tuple[str, ScalarExpr]] = field(default_factory=list)
    predicate: Optional[ScalarExpr] = None
    alias: Optional[str] = None


@dataclass(eq=False)
class Delete(Statement):
    table: str
    predicate: Optional[ScalarExpr] = None
    alias: Optional[str] = None


@dataclass(eq=False)
class Merge(Statement):
    """ANSI/Teradata MERGE; emulated as UPDATE + INSERT on weak targets."""

    target: str
    target_alias: Optional[str]
    source: RelNode
    source_alias: Optional[str]
    condition: ScalarExpr
    matched_assignments: Optional[list[tuple[str, ScalarExpr]]] = None
    insert_columns: Optional[list[str]] = None
    insert_values: Optional[list[ScalarExpr]] = None


@dataclass(eq=False)
class CreateTable(Statement):
    schema: TableSchema
    as_query: Optional[RelNode] = None
    if_not_exists: bool = False


@dataclass(eq=False)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(eq=False)
class CreateView(Statement):
    name: str
    column_names: Optional[list[str]]
    plan: RelNode
    source_sql: str = ""
    replace: bool = False


@dataclass(eq=False)
class DropView(Statement):
    name: str
    if_exists: bool = False


@dataclass(eq=False)
class CreateMacro(Statement):
    """Teradata CREATE MACRO: a named, parameterized statement sequence
    stored in the Hyper-Q catalog and expanded at EXEC time (Table 2)."""

    name: str
    parameters: list[tuple[str, SQLType]] = field(default_factory=list)
    body_sql: str = ""
    replace: bool = False


@dataclass(eq=False)
class DropMacro(Statement):
    name: str
    if_exists: bool = False


@dataclass(eq=False)
class ExecMacro(Statement):
    name: str
    arguments: list[ScalarExpr] = field(default_factory=list)
    named_arguments: dict[str, ScalarExpr] = field(default_factory=dict)


@dataclass(eq=False)
class CreateProcedure(Statement):
    """Stored procedure definition; the body is kept as parsed statements by
    the frontend and interpreted by the procedure emulator."""

    name: str
    parameters: list[tuple[str, str, SQLType]] = field(default_factory=list)  # (mode, name, type)
    body: object = None  # frontend AST block; interpreted by emulation
    replace: bool = False


@dataclass(eq=False)
class DropProcedure(Statement):
    name: str
    if_exists: bool = False


@dataclass(eq=False)
class CallProcedure(Statement):
    name: str
    arguments: list[ScalarExpr] = field(default_factory=list)


class HelpKind(enum.Enum):
    SESSION = "SESSION"
    TABLE = "TABLE"
    COLUMN = "COLUMN"
    DATABASE = "DATABASE"


@dataclass(eq=False)
class HelpCommand(Statement):
    """Teradata informational commands (HELP SESSION etc.) — pure emulation:
    answered from mid-tier state, never forwarded to the target."""

    kind: HelpKind
    subject: Optional[str] = None


@dataclass(eq=False)
class ShowCommand(Statement):
    """SHOW TABLE/VIEW — returns reconstructed DDL text."""

    object_kind: str = "TABLE"
    name: str = ""


@dataclass(eq=False)
class SetSessionParam(Statement):
    """SET SESSION <param> = <value>; recorded in session state."""

    name: str = ""
    value: object = None


@dataclass(eq=False)
class NoOp(Statement):
    """A statement Hyper-Q accepts and absorbs (e.g. COLLECT STATISTICS):
    the source system expects success, the target has no equivalent."""

    reason: str = ""


@dataclass(eq=False)
class Transaction(Statement):
    """BT/ET/BEGIN/COMMIT/ROLLBACK markers."""

    action: str = "BEGIN"  # BEGIN | COMMIT | ROLLBACK


def is_query(stmt: Statement) -> bool:
    return isinstance(stmt, Query)
