"""Scalar expression nodes of the XTRA algebra.

Every node is a plain dataclass. Fields that hold child expressions are listed
in ``CHILD_FIELDS`` so :mod:`repro.xtra.visitor` can walk and rewrite trees
generically. Nodes use identity equality (``eq=False``) because rewrite maps
key on node identity; structural comparison is provided by :func:`same`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterable, Optional

from repro.xtra import types as t
from repro.xtra.types import SQLType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.xtra.relational import RelNode


class ScalarExpr:
    """Base class for all scalar expressions."""

    CHILD_FIELDS: tuple[str, ...] = ()

    type: SQLType = t.UNKNOWN

    def children(self) -> Iterable["ScalarExpr"]:
        """Yield direct child expressions (flattening list-valued fields)."""
        for name in self.CHILD_FIELDS:
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ScalarExpr):
                        yield item
            elif isinstance(value, ScalarExpr):
                yield value


@dataclass(eq=False)
class ColumnRef(ScalarExpr):
    """A resolved reference to a column of some input relation."""

    name: str
    table: Optional[str] = None  # resolved qualifier (alias), if any
    type: SQLType = t.UNKNOWN

    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(eq=False)
class Const(ScalarExpr):
    """A literal constant. ``value is None`` represents SQL NULL."""

    value: object
    type: SQLType = t.UNKNOWN


@dataclass(eq=False)
class Param(ScalarExpr):
    """A query parameter marker (``?`` or ``:name``)."""

    name: str = "?"
    type: SQLType = t.UNKNOWN


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    POW = "**"
    CONCAT = "||"


@dataclass(eq=False)
class Arith(ScalarExpr):
    """Binary arithmetic / concatenation."""

    CHILD_FIELDS = ("left", "right")

    op: ArithOp
    left: ScalarExpr
    right: ScalarExpr
    type: SQLType = t.UNKNOWN


@dataclass(eq=False)
class Negate(ScalarExpr):
    """Unary minus."""

    CHILD_FIELDS = ("operand",)

    operand: ScalarExpr
    type: SQLType = t.UNKNOWN


class CompOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "CompOp":
        """The operator with operand sides swapped (a op b == b flipped(op) a)."""
        return {
            CompOp.EQ: CompOp.EQ, CompOp.NE: CompOp.NE,
            CompOp.LT: CompOp.GT, CompOp.GT: CompOp.LT,
            CompOp.LE: CompOp.GE, CompOp.GE: CompOp.LE,
        }[self]


@dataclass(eq=False)
class Comp(ScalarExpr):
    """Binary comparison; result type is BOOLEAN."""

    CHILD_FIELDS = ("left", "right")

    op: CompOp
    left: ScalarExpr
    right: ScalarExpr
    type: SQLType = t.BOOLEAN


class BoolOpKind(enum.Enum):
    AND = "AND"
    OR = "OR"


@dataclass(eq=False)
class BoolOp(ScalarExpr):
    """N-ary conjunction or disjunction."""

    CHILD_FIELDS = ("args",)

    op: BoolOpKind
    args: list[ScalarExpr]
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class Not(ScalarExpr):
    CHILD_FIELDS = ("operand",)

    operand: ScalarExpr
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class IsNull(ScalarExpr):
    CHILD_FIELDS = ("operand",)

    operand: ScalarExpr
    negated: bool = False
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class InList(ScalarExpr):
    """``expr [NOT] IN (item, item, ...)`` over literal/scalar items."""

    CHILD_FIELDS = ("operand", "items")

    operand: ScalarExpr
    items: list[ScalarExpr] = field(default_factory=list)
    negated: bool = False
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class Between(ScalarExpr):
    CHILD_FIELDS = ("operand", "low", "high")

    operand: ScalarExpr
    low: ScalarExpr
    high: ScalarExpr
    negated: bool = False
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class Like(ScalarExpr):
    CHILD_FIELDS = ("operand", "pattern")

    operand: ScalarExpr
    pattern: ScalarExpr
    escape: Optional[str] = None
    negated: bool = False
    type: SQLType = t.BOOLEAN


@dataclass(eq=False)
class FuncCall(ScalarExpr):
    """A scalar builtin or user function call (normalized ANSI name)."""

    CHILD_FIELDS = ("args",)

    name: str
    args: list[ScalarExpr] = field(default_factory=list)
    type: SQLType = t.UNKNOWN


@dataclass(eq=False)
class AggCall(ScalarExpr):
    """An aggregate function call (SUM/COUNT/MIN/MAX/AVG/...).

    ``args`` is empty for ``COUNT(*)`` (``star`` set instead).
    """

    CHILD_FIELDS = ("args",)

    name: str
    args: list[ScalarExpr] = field(default_factory=list)
    distinct: bool = False
    star: bool = False
    type: SQLType = t.UNKNOWN


@dataclass(eq=False)
class Case(ScalarExpr):
    """Searched or simple CASE expression.

    For a simple CASE, ``operand`` is set and each when-condition is the
    comparison value; the binder normalizes simple CASE into searched CASE.
    """

    CHILD_FIELDS = ("operand", "conditions", "results", "default")

    operand: Optional[ScalarExpr] = None
    conditions: list[ScalarExpr] = field(default_factory=list)
    results: list[ScalarExpr] = field(default_factory=list)
    default: Optional[ScalarExpr] = None
    type: SQLType = t.UNKNOWN


@dataclass(eq=False)
class Cast(ScalarExpr):
    CHILD_FIELDS = ("operand",)

    operand: ScalarExpr
    type: SQLType = t.UNKNOWN


class ExtractField(enum.Enum):
    YEAR = "YEAR"
    MONTH = "MONTH"
    DAY = "DAY"
    HOUR = "HOUR"
    MINUTE = "MINUTE"
    SECOND = "SECOND"


@dataclass(eq=False)
class Extract(ScalarExpr):
    """``EXTRACT(field FROM operand)``."""

    CHILD_FIELDS = ("operand",)

    field_name: ExtractField = ExtractField.YEAR
    operand: ScalarExpr = None  # type: ignore[assignment]
    type: SQLType = t.INTEGER


@dataclass(eq=False)
class SortKey(ScalarExpr):
    """An ordering key with direction and NULL placement.

    ``nulls_first is None`` means "dialect default" — the NULL-ordering
    transformation rule makes it explicit for targets whose default differs
    from the source's.
    """

    CHILD_FIELDS = ("expr",)

    expr: ScalarExpr = None  # type: ignore[assignment]
    ascending: bool = True
    nulls_first: Optional[bool] = None


@dataclass(eq=False)
class WindowFunc(ScalarExpr):
    """A window function specification: RANK/ROW_NUMBER/aggregates OVER (...).

    In XTRA, window functions are computed by the relational ``Window``
    operator; within scalar trees they appear as :class:`ColumnRef` to the
    computed output column. This node is the *specification* stored on the
    Window operator.
    """

    CHILD_FIELDS = ("args", "partition_by", "order_by")

    name: str = ""
    args: list[ScalarExpr] = field(default_factory=list)
    partition_by: list[ScalarExpr] = field(default_factory=list)
    order_by: list[SortKey] = field(default_factory=list)
    type: SQLType = t.UNKNOWN


class SubqueryKind(enum.Enum):
    SCALAR = "SCALAR"    # single-value subquery
    EXISTS = "EXISTS"    # EXISTS (...)
    IN = "IN"            # expr IN (...)
    QUANTIFIED = "QUANT"  # expr(s) op ANY/ALL (...)


class Quantifier(enum.Enum):
    ANY = "ANY"
    ALL = "ALL"


@dataclass(eq=False)
class SubqueryExpr(ScalarExpr):
    """A subquery in a scalar context.

    For QUANTIFIED subqueries, ``left`` holds one or more left-hand
    expressions: more than one means a Teradata *vector comparison* (Section
    5.3), which targets without that capability need rewritten into an
    existential correlated subquery.
    """

    CHILD_FIELDS = ("left",)

    kind: SubqueryKind = SubqueryKind.SCALAR
    plan: "RelNode" = None  # type: ignore[assignment]
    left: list[ScalarExpr] = field(default_factory=list)
    op: Optional[CompOp] = None
    quantifier: Optional[Quantifier] = None
    negated: bool = False
    type: SQLType = t.UNKNOWN


# -- helpers -----------------------------------------------------------------

def conjoin(predicates: list[ScalarExpr]) -> Optional[ScalarExpr]:
    """AND together a list of predicates; returns None for an empty list."""
    live = [p for p in predicates if p is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    return BoolOp(BoolOpKind.AND, live)


def const_int(value: int) -> Const:
    return Const(value, t.INTEGER)


def const_str(value: str) -> Const:
    return Const(value, t.varchar(max(1, len(value))))


def null_const() -> Const:
    return Const(None, t.UNKNOWN)


def same(a: ScalarExpr, b: ScalarExpr) -> bool:
    """Structural equality of two scalar trees (ignores node identity)."""
    if type(a) is not type(b):
        return False
    for f in fields(a):  # type: ignore[arg-type]
        left, right = getattr(a, f.name), getattr(b, f.name)
        if isinstance(left, ScalarExpr) or isinstance(right, ScalarExpr):
            if not (isinstance(left, ScalarExpr) and isinstance(right, ScalarExpr)
                    and same(left, right)):
                return False
        elif isinstance(left, list) and left and isinstance(left[0], ScalarExpr):
            if len(left) != len(right) or not all(same(x, y) for x, y in zip(left, right)):
                return False
        elif f.name == "plan":
            if left is not right:
                return False
        elif left != right:
            return False
    return True
