"""Schema metadata shared by the Hyper-Q shadow catalog and the backend.

Models the properties the paper calls out as migration hazards: SET-table
semantics, CASESPECIFIC text columns, non-constant column defaults, volatile
(session-scoped) tables, and views.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import CatalogError
from repro.xtra.types import SQLType


@dataclass(frozen=True)
class ColumnSchema:
    """Metadata for one column.

    Attributes:
        name: upper-cased column name.
        type: declared SQL type.
        nullable: whether NULLs are permitted.
        default_sql: SQL text of the DEFAULT expression, if any. Non-constant
            defaults (e.g. ``CURRENT_DATE``) are one of the emulated
            "unsupported column properties" of Table 2.
        case_specific: Teradata CASESPECIFIC comparison flag.
    """

    name: str
    type: SQLType
    nullable: bool = True
    default_sql: Optional[str] = None
    case_specific: bool = True


@dataclass
class TableSchema:
    """Metadata for a table or view.

    Attributes:
        name: upper-cased object name.
        columns: ordered column metadata.
        set_semantics: Teradata SET table (duplicate rows rejected).
        volatile: session-scoped table (Teradata VOLATILE / GTT).
        is_view: True for views; ``view_sql`` holds the defining query text
            in the *source* dialect.
        primary_index: column names of the (non-unique) primary index, kept
            for DDL fidelity; the backend ignores it for execution.
    """

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    set_semantics: bool = False
    volatile: bool = False
    is_view: bool = False
    view_sql: Optional[str] = None
    primary_index: tuple[str, ...] = ()

    def column(self, name: str) -> ColumnSchema:
        """Look up a column by (case-insensitive) name."""
        wanted = name.upper()
        for col in self.columns:
            if col.name == wanted:
                return col
        raise CatalogError(f"column {name!r} not found in {self.name}")

    def has_column(self, name: str) -> bool:
        wanted = name.upper()
        return any(col.name == wanted for col in self.columns)

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def rename(self, new_name: str) -> "TableSchema":
        clone = replace_table(self)
        clone.name = new_name.upper()
        return clone


def replace_table(table: TableSchema) -> TableSchema:
    """Shallow-copy a TableSchema (columns are immutable and shared)."""
    return TableSchema(
        name=table.name,
        columns=list(table.columns),
        set_semantics=table.set_semantics,
        volatile=table.volatile,
        is_view=table.is_view,
        view_sql=table.view_sql,
        primary_index=table.primary_index,
    )
