"""SQL type system shared across the pipeline.

Includes the Teradata-specific DATE-as-integer encoding that drives the
date/integer comparison and arithmetic rewrites of Section 5.2: Teradata
stores a DATE as ``(year - 1900) * 10000 + month * 100 + day``.
Also models the PERIOD compound type discussed in Section 2.2.2.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass


class TypeKind(enum.Enum):
    """Primitive SQL type families."""

    BOOLEAN = "BOOLEAN"
    SMALLINT = "SMALLINT"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DECIMAL = "DECIMAL"
    FLOAT = "FLOAT"
    CHAR = "CHAR"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    TIME = "TIME"
    TIMESTAMP = "TIMESTAMP"
    INTERVAL = "INTERVAL"
    PERIOD = "PERIOD"
    BYTE = "BYTE"
    UNKNOWN = "UNKNOWN"


_NUMERIC_KINDS = frozenset({
    TypeKind.SMALLINT, TypeKind.INTEGER, TypeKind.BIGINT,
    TypeKind.DECIMAL, TypeKind.FLOAT,
})

_TEXT_KINDS = frozenset({TypeKind.CHAR, TypeKind.VARCHAR})

# Rank for implicit numeric widening: result of mixing is the higher rank.
_NUMERIC_RANK = {
    TypeKind.SMALLINT: 0,
    TypeKind.INTEGER: 1,
    TypeKind.BIGINT: 2,
    TypeKind.DECIMAL: 3,
    TypeKind.FLOAT: 4,
}


@dataclass(frozen=True)
class SQLType:
    """A concrete SQL type: kind plus optional length/precision/scale.

    Attributes:
        kind: the type family.
        length: max length for CHAR/VARCHAR/BYTE.
        precision: total digits for DECIMAL; element kind name for PERIOD.
        scale: fractional digits for DECIMAL.
        case_specific: Teradata CASESPECIFIC flag for text comparisons.
    """

    kind: TypeKind
    length: int | None = None
    precision: int | None = None
    scale: int | None = None
    case_specific: bool = True

    # -- classification ----------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    @property
    def is_text(self) -> bool:
        return self.kind in _TEXT_KINDS

    @property
    def is_temporal(self) -> bool:
        return self.kind in (TypeKind.DATE, TypeKind.TIME, TypeKind.TIMESTAMP)

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL and self.precision is not None:
            return f"DECIMAL({self.precision},{self.scale or 0})"
        if self.kind in _TEXT_KINDS and self.length is not None:
            return f"{self.kind.value}({self.length})"
        if self.kind is TypeKind.PERIOD:
            return f"PERIOD({self.precision or 'DATE'})"
        return self.kind.value


# Singleton-ish convenience constructors used throughout the codebase.
BOOLEAN = SQLType(TypeKind.BOOLEAN)
SMALLINT = SQLType(TypeKind.SMALLINT)
INTEGER = SQLType(TypeKind.INTEGER)
BIGINT = SQLType(TypeKind.BIGINT)
FLOAT = SQLType(TypeKind.FLOAT)
DATE = SQLType(TypeKind.DATE)
TIME = SQLType(TypeKind.TIME)
TIMESTAMP = SQLType(TypeKind.TIMESTAMP)
INTERVAL = SQLType(TypeKind.INTERVAL)
UNKNOWN = SQLType(TypeKind.UNKNOWN)


def decimal(precision: int = 18, scale: int = 2) -> SQLType:
    """A DECIMAL type with the given precision and scale."""
    return SQLType(TypeKind.DECIMAL, precision=precision, scale=scale)


def varchar(length: int = 256) -> SQLType:
    """A VARCHAR type with the given maximum length."""
    return SQLType(TypeKind.VARCHAR, length=length)


def char(length: int = 1) -> SQLType:
    """A fixed-length CHAR type."""
    return SQLType(TypeKind.CHAR, length=length)


def period(element: TypeKind = TypeKind.DATE) -> SQLType:
    """A Teradata PERIOD compound type over the given element kind."""
    return SQLType(TypeKind.PERIOD, precision=None, scale=None, length=None,
                   case_specific=True) if element is TypeKind.DATE else SQLType(TypeKind.PERIOD)


def common_numeric(left: SQLType, right: SQLType) -> SQLType:
    """The implicit widening result of mixing two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        return UNKNOWN
    if _NUMERIC_RANK[left.kind] >= _NUMERIC_RANK[right.kind]:
        return left
    return right


# -- Teradata DATE-as-integer semantics -------------------------------------

def date_to_teradata_int(value: datetime.date) -> int:
    """Encode a date the way Teradata stores DATE values internally.

    ``2014-01-01`` encodes as ``1140101``: (2014-1900)*10000 + 1*100 + 1.
    """
    return (value.year - 1900) * 10000 + value.month * 100 + value.day


def teradata_int_to_date(value: int) -> datetime.date:
    """Decode a Teradata internal DATE integer back into a date."""
    year = value // 10000 + 1900
    month = (value % 10000) // 100
    day = value % 100
    return datetime.date(year, month, day)


def is_valid_teradata_date_int(value: int) -> bool:
    """Return True if *value* decodes to a real calendar date."""
    try:
        teradata_int_to_date(value)
    except ValueError:
        return False
    return True
