"""Generic walkers and rewriters for XTRA trees.

Transformation rules use :func:`rewrite_scalars` / :func:`rewrite_rel` to
express rewrites as small functions over single nodes; the driver handles
recursion, list-valued fields, and statement boundaries.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Callable, Iterator

from repro.xtra.relational import CTEDef, RelNode, Statement
from repro.xtra.scalars import ScalarExpr, SubqueryExpr

ScalarFn = Callable[[ScalarExpr], ScalarExpr]
RelFn = Callable[[RelNode], RelNode]


def walk_scalars(expr: ScalarExpr, into_subqueries: bool = False) -> Iterator[ScalarExpr]:
    """Depth-first pre-order walk over a scalar tree."""
    yield expr
    for child in expr.children():
        yield from walk_scalars(child, into_subqueries)
    if into_subqueries and isinstance(expr, SubqueryExpr) and expr.plan is not None:
        for node in walk_rel(expr.plan):
            for scalar in node.scalars():
                yield from walk_scalars(scalar, into_subqueries)


def walk_rel(node: RelNode) -> Iterator[RelNode]:
    """Depth-first pre-order walk over a relational tree (not subqueries)."""
    yield node
    for child in node.children():
        yield from walk_rel(child)


def walk_all_scalars(node: RelNode) -> Iterator[ScalarExpr]:
    """All scalar expressions under a plan, descending into subquery plans."""
    for rel in walk_rel(node):
        for scalar in rel.scalars():
            yield from walk_scalars(scalar, into_subqueries=True)


def rewrite_scalars(expr: ScalarExpr, fn: ScalarFn, into_subqueries: bool = True,
                    rel_fn: RelFn | None = None) -> ScalarExpr:
    """Bottom-up rewrite of a scalar tree.

    ``fn`` receives each node after its children were rewritten in place and
    returns a replacement node (possibly the same one). Subquery plans are
    descended into when ``into_subqueries`` is set; ``rel_fn`` (if given) is
    applied to the relational nodes of those plans as well.
    """
    for name in expr.CHILD_FIELDS:
        value = getattr(expr, name)
        if value is None:
            continue
        if isinstance(value, list):
            setattr(expr, name, [
                rewrite_scalars(item, fn, into_subqueries, rel_fn)
                if isinstance(item, ScalarExpr) else item
                for item in value
            ])
        elif isinstance(value, ScalarExpr):
            setattr(expr, name, rewrite_scalars(value, fn, into_subqueries, rel_fn))
    if into_subqueries and isinstance(expr, SubqueryExpr) and expr.plan is not None:
        expr.plan = rewrite_rel(expr.plan, rel_fn or (lambda n: n), fn)
    return fn(expr)


def _rewrite_rel_fields(node: RelNode, rel_fn: RelFn, scalar_fn: ScalarFn | None) -> None:
    """Rewrite the child-rel and scalar fields of *node* in place."""
    for f in fields(node):  # type: ignore[arg-type]
        value = getattr(node, f.name)
        if isinstance(value, RelNode):
            setattr(node, f.name, rewrite_rel(value, rel_fn, scalar_fn))
        elif isinstance(value, CTEDef):
            value.plan = rewrite_rel(value.plan, rel_fn, scalar_fn)
        elif isinstance(value, list):
            new_items = []
            for item in value:
                if isinstance(item, RelNode):
                    new_items.append(rewrite_rel(item, rel_fn, scalar_fn))
                elif isinstance(item, CTEDef):
                    item.plan = rewrite_rel(item.plan, rel_fn, scalar_fn)
                    new_items.append(item)
                elif isinstance(item, ScalarExpr) and scalar_fn is not None:
                    new_items.append(rewrite_scalars(item, scalar_fn, rel_fn=rel_fn))
                elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], ScalarExpr) \
                        and scalar_fn is not None:
                    new_items.append((item[0], rewrite_scalars(item[1], scalar_fn, rel_fn=rel_fn)))
                else:
                    new_items.append(item)
            setattr(node, f.name, new_items)
        elif isinstance(value, ScalarExpr) and scalar_fn is not None:
            setattr(node, f.name, rewrite_scalars(value, scalar_fn, rel_fn=rel_fn))


def rewrite_rel(node: RelNode, rel_fn: RelFn, scalar_fn: ScalarFn | None = None) -> RelNode:
    """Bottom-up rewrite of a relational tree.

    Children (including CTE plans and scalar fields) are rewritten first, then
    ``rel_fn`` maps the node itself.
    """
    _rewrite_rel_fields(node, rel_fn, scalar_fn)
    return rel_fn(node)


def rewrite_statement(stmt: Statement, rel_fn: RelFn, scalar_fn: ScalarFn | None = None) -> Statement:
    """Apply a rewrite to every plan/scalar embedded in a statement."""
    for f in fields(stmt):  # type: ignore[arg-type]
        value = getattr(stmt, f.name)
        if isinstance(value, RelNode):
            setattr(stmt, f.name, rewrite_rel(value, rel_fn, scalar_fn))
        elif isinstance(value, ScalarExpr) and scalar_fn is not None:
            setattr(stmt, f.name, rewrite_scalars(value, scalar_fn, rel_fn=rel_fn))
        elif isinstance(value, list):
            new_items = []
            for item in value:
                if isinstance(item, ScalarExpr) and scalar_fn is not None:
                    new_items.append(rewrite_scalars(item, scalar_fn, rel_fn=rel_fn))
                elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], ScalarExpr) \
                        and scalar_fn is not None:
                    new_items.append((item[0], rewrite_scalars(item[1], scalar_fn, rel_fn=rel_fn)))
                else:
                    new_items.append(item)
            setattr(stmt, f.name, new_items)
    return stmt


def statement_plans(stmt: Statement) -> Iterator[RelNode]:
    """Yield the top-level relational plans embedded in a statement."""
    for f in fields(stmt):  # type: ignore[arg-type]
        value = getattr(stmt, f.name)
        if isinstance(value, RelNode):
            yield value


def statement_scalars(stmt: Statement) -> Iterator[ScalarExpr]:
    """Yield every scalar expression reachable from a statement."""
    for f in fields(stmt):  # type: ignore[arg-type]
        value = getattr(stmt, f.name)
        if isinstance(value, RelNode):
            yield from walk_all_scalars(value)
        elif isinstance(value, ScalarExpr):
            yield from walk_scalars(value, into_subqueries=True)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ScalarExpr):
                    yield from walk_scalars(item, into_subqueries=True)
                elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], ScalarExpr):
                    yield from walk_scalars(item[1], into_subqueries=True)
