"""Seeded generative corpus for the conformance matrix.

Statements are synthesized from the TPC-H schema (plus a few auxiliary
tables for NULL-ordering, MERGE, and reserved-word coverage) by template
families that each target a transform-rule trigger shape: Teradata date
arithmetic and date/integer comparisons, implicit NULL ordering, grouping
extensions (ROLLUP / CUBE / GROUPING SETS), vector subqueries and other
quantified predicates, QUALIFY, Teradata scalar idioms, and MERGE.

Everything is driven by one seeded :class:`random.Random`, so the corpus is
deterministic: the same ≥200 ``(name, sql)`` pairs come back on every run,
and a disagreement reported by CI reproduces locally by name.
"""

from __future__ import annotations

import random

SEED = 20260808

#: TPC-H scale factor for matrix runs. Small on purpose: the corpus cares
#: about *shape* coverage, not volume, and every statement runs once per
#: profile on a pure-Python executor.
TPCH_SCALE = 0.0002

#: Auxiliary schema: NULL-bearing measures with a unique tiebreaker key,
#: a MERGE/DML target with its delta feed, and a table whose column names
#: are reserved words (exercises identifier quoting on every dialect).
GENERATOR_SETUP = [
    "CREATE TABLE CONF_NULLS (K INTEGER, GRP VARCHAR(1), V INTEGER)",
    """INSERT INTO CONF_NULLS VALUES
        (1, 'a', 30), (2, 'a', NULL), (3, 'a', 10),
        (4, 'b', NULL), (5, 'b', 20), (6, 'b', 20),
        (7, 'c', NULL), (8, 'c', 5), (9, 'c', 40), (10, 'c', NULL)""",
    """CREATE TABLE CONF_TARGET (
        PK INTEGER, NAME VARCHAR(20), QTY INTEGER, PRICE DECIMAL(10,2))""",
    """INSERT INTO CONF_TARGET VALUES
        (1, 'anchor', 5, 10.00), (2, 'beacon', 3, 20.50),
        (3, 'candle', 9, 7.25), (4, 'dynamo', 1, 99.99)""",
    """CREATE TABLE CONF_DELTA (
        PK INTEGER, NAME VARCHAR(20), QTY INTEGER, PRICE DECIMAL(10,2))""",
    """INSERT INTO CONF_DELTA VALUES
        (2, 'beacon', 30, 21.00), (4, 'dynamo', 10, 89.99),
        (5, 'ember', 2, 3.50), (6, 'fathom', 8, 12.00)""",
    """CREATE TABLE CONF_RSVD ("SELECT" INTEGER, "FROM" VARCHAR(5))""",
    """INSERT INTO CONF_RSVD VALUES (1, 'one'), (2, 'two'), (3, 'six')""",
]


def tpch_ddl() -> list[str]:
    """The TPC-H DDL in source dialect, ready for :meth:`Matrix.run_setup`."""
    from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES

    return [SCHEMA_DDL[name].strip() for name in TABLE_NAMES]


def load_tpch(matrix) -> None:
    """Create the TPC-H schema through every leg, then bulk-load rows
    directly into each backend (the slow path would dominate the matrix)."""
    from repro.workloads.tpch.datagen import load_direct

    matrix.run_setup(tpch_ddl())
    for profile in matrix.profiles:
        load_direct(matrix.engine(profile).backend, scale=TPCH_SCALE,
                    seed=SEED)


def _teradata_date_int(year: int, month: int, day: int) -> int:
    """Teradata internal date integer: (year-1900)*10000 + mm*100 + dd."""
    return (year - 1900) * 10000 + month * 100 + day


def generate_statements() -> list[tuple[str, str]]:
    """Deterministic ``(name, sql)`` list, ≥200 statements."""
    rng = random.Random(SEED)
    out: list[tuple[str, str]] = []

    def emit(family: str, sql: str) -> None:
        out.append((f"gen_{family}_{sum(1 for n, _ in out if n.startswith(f'gen_{family}_')):03d}",
                    sql))

    # -- date arithmetic and date/integer comparisons (30) -------------------------
    for _ in range(10):
        days = rng.randrange(1, 120)
        year = rng.randrange(1993, 1998)
        emit("date_arith",
             f"SEL O_ORDERKEY FROM ORDERS "
             f"WHERE O_ORDERDATE + {days} > DATE '{year}-06-01' "
             f"ORDER BY O_ORDERKEY")
    for _ in range(10):
        year = rng.randrange(1993, 1998)
        month = rng.randrange(1, 13)
        emit("date_int",
             f"SEL COUNT(*) FROM ORDERS "
             f"WHERE O_ORDERDATE > {_teradata_date_int(year, month, 15)}")
    for _ in range(10):
        days = rng.randrange(5, 90)
        emit("date_span",
             f"SEL L_ORDERKEY, L_LINENUMBER FROM LINEITEM "
             f"WHERE L_RECEIPTDATE > L_SHIPDATE + {days} "
             f"ORDER BY L_ORDERKEY, L_LINENUMBER")

    # -- NULL ordering (25): unique key K breaks every tie -------------------------
    for _ in range(25):
        direction = rng.choice(["ASC", "DESC"])
        extra = rng.choice(["", "GRP, "])
        predicate = rng.choice(
            ["", "WHERE V IS NOT NULL ", "WHERE K > 2 ", "WHERE GRP <> 'b' "])
        emit("null_order",
             f"SEL K, GRP, V FROM CONF_NULLS {predicate}"
             f"ORDER BY {extra}V {direction}, K")

    # -- grouping extensions (30) --------------------------------------------------
    for _ in range(10):
        emit("rollup",
             f"SEL O_ORDERSTATUS, O_ORDERPRIORITY, SUM(O_TOTALPRICE), COUNT(*) "
             f"FROM ORDERS WHERE O_CUSTKEY > {rng.randrange(0, 20)} "
             f"GROUP BY ROLLUP (O_ORDERSTATUS, O_ORDERPRIORITY)")
    for _ in range(10):
        emit("cube",
             f"SEL L_RETURNFLAG, L_LINESTATUS, SUM(L_QUANTITY) FROM LINEITEM "
             f"WHERE L_PARTKEY > {rng.randrange(0, 15)} "
             f"GROUP BY CUBE (L_RETURNFLAG, L_LINESTATUS)")
    for _ in range(10):
        emit("grouping_sets",
             f"SEL L_RETURNFLAG, L_SHIPMODE, SUM(L_EXTENDEDPRICE) "
             f"FROM LINEITEM WHERE L_SUPPKEY >= {rng.randrange(0, 4)} "
             f"GROUP BY GROUPING SETS ((L_RETURNFLAG), (L_SHIPMODE))")

    # -- vector subqueries and quantified predicates (25) --------------------------
    for _ in range(9):
        bal = rng.randrange(1000, 8000)
        emit("vector_any",
             f"SEL C_NAME FROM CUSTOMER "
             f"WHERE (C_ACCTBAL, C_NATIONKEY) > "
             f"ANY (SEL C_ACCTBAL, C_NATIONKEY FROM CUSTOMER "
             f"WHERE C_ACCTBAL > {bal}) "
             f"ORDER BY C_NAME")
    for _ in range(8):
        status = rng.choice(["'O'", "'F'", "'P'"])
        emit("in_subquery",
             f"SEL C_NAME FROM CUSTOMER "
             f"WHERE C_CUSTKEY IN (SEL O_CUSTKEY FROM ORDERS "
             f"WHERE O_ORDERSTATUS = {status}) ORDER BY C_NAME")
    # No end-anchored patterns ('%ST'): CHAR columns are blank-padded on
    # targets with a true CHAR type, so a trailing anchor is a genuine
    # cross-dialect incompatibility rather than a translation defect.
    for _ in range(8):
        patterns = rng.sample(
            ["'A%'", "'EU%'", "'M%'", "'AF%'", "'%IC%'", "'%AS%'"], k=2)
        emit("like_any",
             f"SEL R_NAME FROM REGION "
             f"WHERE R_NAME LIKE ANY ({', '.join(patterns)}) ORDER BY 1")

    # -- QUALIFY (20) --------------------------------------------------------------
    for _ in range(7):
        n = rng.randrange(2, 8)
        emit("qualify_rownum",
             f"SEL O_ORDERKEY, O_TOTALPRICE FROM ORDERS "
             f"QUALIFY ROW_NUMBER() OVER "
             f"(ORDER BY O_TOTALPRICE DESC, O_ORDERKEY) <= {n}")
    for _ in range(7):
        n = rng.randrange(1, 4)
        emit("qualify_partition",
             f"SEL L_ORDERKEY, L_LINENUMBER FROM LINEITEM "
             f"QUALIFY ROW_NUMBER() OVER (PARTITION BY L_ORDERKEY "
             f"ORDER BY L_EXTENDEDPRICE DESC, L_LINENUMBER) <= {n} "
             f"ORDER BY L_ORDERKEY, L_LINENUMBER")
    for _ in range(6):
        n = rng.randrange(2, 6)
        emit("qualify_legacy",
             f"SEL C_NAME FROM CUSTOMER QUALIFY RANK(C_ACCTBAL DESC) <= {n}")

    # -- Teradata scalar idioms (20) -----------------------------------------------
    for _ in range(7):
        length = rng.randrange(12, 22)
        emit("chars",
             f"SEL C_NAME FROM CUSTOMER WHERE CHARS(C_NAME) > {length} "
             f"ORDER BY C_NAME")
    for _ in range(7):
        emit("zeroifnull",
             f"SEL K, ZEROIFNULL(V) + {rng.randrange(0, 5)} FROM CONF_NULLS "
             f"ORDER BY K")
    for _ in range(6):
        emit("nullifzero",
             f"SEL K, NULLIFZERO(V - {rng.choice([5, 10, 20])}) "
             f"FROM CONF_NULLS WHERE V IS NOT NULL ORDER BY K")

    # -- EXISTS and scalar subqueries (15) -----------------------------------------
    for _ in range(8):
        bal = rng.randrange(0, 5000)
        emit("exists",
             f"SEL N_NAME FROM NATION WHERE EXISTS "
             f"(SEL 1 FROM SUPPLIER WHERE S_NATIONKEY = N_NATIONKEY "
             f"AND S_ACCTBAL > {bal}) ORDER BY N_NAME")
    for _ in range(7):
        emit("scalar_subquery",
             f"SEL O_ORDERKEY FROM ORDERS "
             f"WHERE O_TOTALPRICE > (SEL AVG(O_TOTALPRICE) + {rng.randrange(0, 9000)} "
             f"FROM ORDERS) ORDER BY O_ORDERKEY")

    # -- implicit (comma) joins (15) -----------------------------------------------
    for _ in range(8):
        emit("implicit_join",
             f"SEL N_NAME, R_NAME FROM NATION, REGION "
             f"WHERE N_REGIONKEY = R_REGIONKEY "
             f"AND N_NATIONKEY > {rng.randrange(0, 15)} ORDER BY N_NAME")
    for _ in range(7):
        emit("join_agg",
             f"SEL C_MKTSEGMENT, COUNT(*), SUM(O_TOTALPRICE) "
             f"FROM CUSTOMER, ORDERS WHERE C_CUSTKEY = O_CUSTKEY "
             f"AND O_ORDERKEY > {rng.randrange(0, 50)} "
             f"GROUP BY C_MKTSEGMENT")

    # -- aggregates, HAVING, DISTINCT (15) -----------------------------------------
    for _ in range(8):
        n = rng.randrange(1, 5)
        emit("having",
             f"SEL L_SHIPMODE, COUNT(*), MIN(L_QUANTITY), MAX(L_QUANTITY) "
             f"FROM LINEITEM GROUP BY L_SHIPMODE HAVING COUNT(*) > {n}")
    for _ in range(7):
        emit("distinct",
             f"SEL DISTINCT O_ORDERSTATUS, O_ORDERPRIORITY FROM ORDERS "
             f"WHERE O_SHIPPRIORITY = {rng.choice([0, 0, 1])} "
             f"ORDER BY 1, 2")

    # -- reserved-word identifiers (5) ---------------------------------------------
    for bound in (0, 1, 2, 3, 9):
        emit("reserved_ident",
             f'SEL "SELECT", "FROM" FROM CONF_RSVD '
             f'WHERE "SELECT" > {bound} ORDER BY "SELECT"')

    # -- MERGE and DML on CONF_TARGET, each followed by verification (20) ----------
    # Ordering matters: every leg applies the same mutations in lockstep, so
    # the verification SELECT after each DML compares the mutated state.
    verify = ("SEL PK, NAME, QTY, PRICE FROM CONF_TARGET ORDER BY PK")
    emit("merge", "MERGE INTO CONF_TARGET USING CONF_DELTA D "
                  "ON CONF_TARGET.PK = D.PK "
                  "WHEN MATCHED THEN UPDATE SET QTY = D.QTY, PRICE = D.PRICE "
                  "WHEN NOT MATCHED THEN INSERT (PK, NAME, QTY, PRICE) "
                  "VALUES (D.PK, D.NAME, D.QTY, D.PRICE)")
    emit("merge", verify)
    emit("merge", "MERGE INTO CONF_TARGET USING CONF_DELTA D "
                  "ON CONF_TARGET.PK = D.PK AND D.QTY > 5 "
                  "WHEN MATCHED THEN UPDATE SET QTY = CONF_TARGET.QTY + D.QTY")
    emit("merge", verify)
    for qty, price in ((7, "11.50"), (2, "8.00"), (12, "30.25")):
        emit("dml", f"UPD CONF_TARGET SET QTY = QTY + {qty} "
                    f"WHERE PRICE < {price}")
        emit("dml", verify)
    emit("dml", "INSERT INTO CONF_TARGET VALUES (90, 'gale', 4, 44.00)")
    emit("dml", verify)
    emit("dml", "DEL FROM CONF_TARGET WHERE QTY > 30")
    emit("dml", verify)
    for _ in range(6):
        emit("dml", f"SEL NAME, QTY * PRICE FROM CONF_TARGET "
                    f"WHERE QTY >= {rng.randrange(0, 6)} ORDER BY NAME")

    return out


if __name__ == "__main__":
    statements = generate_statements()
    print(f"{len(statements)} statements")
    for name, sql in statements:
        print(f"{name}: {sql}")
