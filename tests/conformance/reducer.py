"""RISE-style statement reducer: shrink a disagreement to a minimal repro.

The reducer never parses SQL with the real grammar. It tokenizes just enough
to find paren-depth-0 clause boundaries, then greedily applies shrinking
passes — delete a whole clause, delete a select-list item, delete a
parenthesized-list item, delete an AND/OR conjunct, shrink a literal — and
keeps any candidate for which the caller-supplied predicate still reports a
disagreement. Invalid candidates take care of themselves: a statement both
sides reject is an *agreement* (both-error), so the predicate rejects it.

Passes loop to a fixpoint, so a 9-clause query typically lands on the 2-3
clauses that actually trigger the diverging serializer path.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator, Optional

#: Keywords that open a new top-level clause in a SELECT statement.
_CLAUSE_HEADS = ("SELECT", "SEL", "FROM", "WHERE", "GROUP", "HAVING",
                 "QUALIFY", "ORDER")

_WORD = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def reducible(sql: str) -> bool:
    """Only read-only statements are safe to re-run while shrinking."""
    head = sql.lstrip().split(None, 1)
    return bool(head) and head[0].upper() in ("SEL", "SELECT", "WITH")


# -- lightweight scanning -------------------------------------------------------------


def _scan(sql: str) -> Iterator[tuple[int, int, str]]:
    """Yield ``(position, depth, word)`` for every word outside literals."""
    depth = 0
    index = 0
    while index < len(sql):
        char = sql[index]
        if char in ("'", '"'):
            quote = char
            index += 1
            while index < len(sql):
                if sql[index] == quote:
                    if index + 1 < len(sql) and sql[index + 1] == quote:
                        index += 2
                        continue
                    break
                index += 1
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        else:
            match = _WORD.match(sql, index)
            if match:
                yield match.start(), depth, match.group().upper()
                index = match.end()
                continue
        index += 1


def clause_count(sql: str) -> int:
    """Number of top-level clauses — the reducer's minimality metric."""
    return sum(1 for __, depth, word in _scan(sql)
               if depth == 0 and word in _CLAUSE_HEADS)


def _clause_spans(sql: str) -> list[tuple[str, int, int]]:
    """``(head_word, start, end)`` for every depth-0 clause, in order."""
    heads = [(pos, word) for pos, depth, word in _scan(sql)
             if depth == 0 and word in _CLAUSE_HEADS]
    spans = []
    for i, (pos, word) in enumerate(heads):
        end = heads[i + 1][0] if i + 1 < len(heads) else len(sql)
        spans.append((word, pos, end))
    return spans


def _top_level_commas(sql: str, start: int, end: int) -> list[int]:
    """Positions of paren-depth-0 commas inside ``sql[start:end]``."""
    commas = []
    depth = 0
    index = start
    while index < end:
        char = sql[index]
        if char in ("'", '"'):
            quote = char
            index += 1
            while index < end:
                if sql[index] == quote:
                    if index + 1 < end and sql[index + 1] == quote:
                        index += 2
                        continue
                    break
                index += 1
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            commas.append(index)
        index += 1
    return commas


def _splice(sql: str, start: int, end: int, replacement: str = "") -> str:
    return (sql[:start] + replacement + sql[end:]).strip()


# -- shrinking passes: each yields candidate statements -------------------------------


def _drop_clauses(sql: str) -> Iterator[str]:
    """Delete one optional clause (everything except SELECT/FROM)."""
    for word, start, end in _clause_spans(sql):
        if word not in ("SELECT", "SEL", "FROM"):
            yield _splice(sql, start, end, " ")


def _drop_list_items(sql: str) -> Iterator[str]:
    """Delete one item of the select list (keep at least one item)."""
    for word, start, end in _clause_spans(sql):
        if word not in ("SELECT", "SEL"):
            continue
        body_start = start + len(word)
        commas = _top_level_commas(sql, body_start, end)
        if not commas:
            continue
        edges = [body_start] + commas + [end]
        for i in range(len(edges) - 1):
            item_start = edges[i] + (0 if i == 0 else 1)
            item_end = edges[i + 1]
            if i + 1 < len(edges) - 1:
                item_end += 1  # swallow the trailing comma instead
            yield _splice(sql, item_start, item_end, " ")


def _drop_paren_items(sql: str) -> Iterator[str]:
    """Delete one element of any parenthesized comma list with ≥2 items."""
    for open_pos, char in enumerate(sql):
        if char != "(":
            continue
        depth = 0
        close_pos = None
        for index in range(open_pos, len(sql)):
            if sql[index] == "(":
                depth += 1
            elif sql[index] == ")":
                depth -= 1
                if depth == 0:
                    close_pos = index
                    break
        if close_pos is None:
            continue
        commas = _top_level_commas(sql, open_pos + 1, close_pos)
        if not commas:
            continue
        edges = [open_pos] + commas + [close_pos]
        for i in range(len(edges) - 1):
            yield _splice(sql, edges[i] + 1,
                          edges[i + 1] + (1 if i + 1 < len(edges) - 1 else 0),
                          " ")


def _drop_conjuncts(sql: str) -> Iterator[str]:
    """Delete one side of a depth-0 AND/OR inside WHERE/HAVING/QUALIFY."""
    for word, start, end in _clause_spans(sql):
        if word not in ("WHERE", "HAVING", "QUALIFY"):
            continue
        joins = [(pos, w) for pos, depth, w in _scan(sql)
                 if depth == 0 and start < pos < end and w in ("AND", "OR")]
        if not joins:
            continue
        body_start = start + len(word)
        edges = [body_start] + [pos for pos, __ in joins] + [end]
        for i in range(len(edges) - 1):
            lo = edges[i]
            hi = edges[i + 1]
            if i > 0:
                lo += len(joins[i - 1][1])  # keep the preceding AND/OR out
            if i + 1 < len(edges) - 1:
                hi += len(joins[i][1])      # swallow the following AND/OR
            yield _splice(sql, lo, hi, " ")


_NUMBER = re.compile(r"\b\d+(?:\.\d+)?\b")
_STRING = re.compile(r"'(?:[^']|'')+'")


def _shrink_literals(sql: str) -> Iterator[str]:
    """Replace one numeric literal with 0 (or 1), one string with ''."""
    for match in _NUMBER.finditer(sql):
        for small in ("0", "1"):
            if match.group() != small:
                yield _splice(sql, match.start(), match.end(), small)
    for match in _STRING.finditer(sql):
        yield _splice(sql, match.start(), match.end(), "''")


_PASSES = (_drop_clauses, _drop_list_items, _drop_paren_items,
           _drop_conjuncts, _shrink_literals)


def _normalize_ws(sql: str) -> str:
    out = []
    index = 0
    while index < len(sql):
        char = sql[index]
        if char in ("'", '"'):
            quote = char
            end = index + 1
            while end < len(sql):
                if sql[end] == quote:
                    if end + 1 < len(sql) and sql[end + 1] == quote:
                        end += 2
                        continue
                    break
                end += 1
            out.append(sql[index:end + 1])
            index = end + 1
        elif char.isspace():
            if out and out[-1] != " ":
                out.append(" ")
            index += 1
        else:
            out.append(char)
            index += 1
    return "".join(out).strip()


def reduce_statement(sql: str, still_fails: Callable[[str], bool],
                     max_rounds: int = 25) -> str:
    """Greedy fixpoint reduction of *sql* under the *still_fails* oracle.

    The predicate must return True when a candidate still reproduces the
    disagreement. The original statement is assumed to fail; the result is
    1-minimal with respect to the passes (no single pass step fails).
    """
    current = _normalize_ws(sql)
    seen = {current}
    for _ in range(max_rounds):
        improved = False
        for shrink_pass in _PASSES:
            for candidate in shrink_pass(current):
                candidate = _normalize_ws(candidate)
                if len(candidate) >= len(current) or candidate in seen:
                    continue
                seen.add(candidate)
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break   # restart the pass on the smaller statement
        if not improved:
            break
    return current
