"""Differential conformance runner: one statement, every dialect, one truth.

The matrix keeps a live Hyper-Q engine per capability profile in
:data:`PROFILES`, all fed the *same* Teradata statement stream in lockstep.
Each statement is translated by the full pipeline (parse → bind → transform →
serialize) for its profile and cross-executed on an in-memory backend
configured with that profile — backtick/bracket quoting, dialect type names,
TOP-vs-LIMIT and all. The oracle leg is direct Teradata-frontend execution
against the reference target (``hyperion``): whatever the customer's
application observed on Teradata must be what every cloud translation
produces. Row results compare as multisets unless the source statement has a
top-level ORDER BY, in which case sequence order must match too.

Run one cell of the matrix locally::

    PYTHONPATH=src python -m tests.conformance.runner --profile skyquery \
        --corpus golden --name group_by_cube
"""

from __future__ import annotations

import argparse
import datetime
import decimal
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: Execution profiles of the matrix. The first entry is the oracle: the
#: reference target whose results stand in for "what Teradata returned".
#: ("teradata" itself is the *source* grammar, not an executable target.)
PROFILES = ("hyperion", "hyperion_plus", "meadowshift", "skyquery",
            "azuresynth", "snowfield")

ORACLE = PROFILES[0]

#: Rows shown per side in a disagreement report.
_REPORT_ROWS = 12


# -- result normalization ------------------------------------------------------------


def normalize_value(value: object) -> object:
    """Collapse representation differences that are not semantic ones.

    Exact numerics (int / Decimal) unify on their exact decimal string so a
    ``DECIMAL(8,2)`` leg agrees with a ``NUMBER(18,2)`` leg; floats round to
    9 significant decimals to absorb re-association across plan shapes.
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, decimal.Decimal):
        text = format(value.normalize(), "f")
        return ("n", text.rstrip("0").rstrip(".") if "." in text else text)
    if isinstance(value, int):
        return ("n", str(value))
    if isinstance(value, float):
        return ("f", f"{value:.9g}")
    if isinstance(value, (datetime.date, datetime.time, datetime.datetime)):
        return ("t", value.isoformat())
    if value is None:
        return ("z",)
    # ANSI PAD SPACE: trailing blanks are insignificant in CHAR comparison,
    # and dialects without a fixed-width CHAR type (e.g. STRING) store the
    # unpadded form. Strip them so both spellings agree.
    return ("s", str(value).rstrip(" "))


def normalize_rows(rows: Iterable[tuple]) -> list[tuple]:
    return [tuple(normalize_value(v) for v in row) for row in rows]


def is_order_sensitive(sql: str) -> bool:
    """True when *sql* has a top-level ORDER BY (paren-depth-0 scan)."""
    depth = 0
    index = 0
    while index < len(sql):
        char = sql[index]
        if char == "'" or char == '"':
            quote = char
            index += 1
            while index < len(sql):
                if sql[index] == quote:
                    if index + 1 < len(sql) and sql[index + 1] == quote:
                        index += 2
                        continue
                    break
                index += 1
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and (char.isalpha() or char == "_"):
            start = index
            while index + 1 < len(sql) and (sql[index + 1].isalnum()
                                            or sql[index + 1] == "_"):
                index += 1
            if sql[start:index + 1].upper() == "ORDER":
                return True
        index += 1
    return False


# -- matrix cells ---------------------------------------------------------------------


@dataclass
class Cell:
    """One (statement, profile) execution outcome."""

    profile: str
    kind: str                       # "rows" | "count" | "ok" | "error"
    rows: Optional[list[tuple]]     # raw values, display order
    rowcount: int
    error: Optional[str]
    target_sql: list[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.kind == "error":
            return f"error: {self.error}"
        if self.kind == "rows":
            return f"{len(self.rows or [])} row(s)"
        if self.kind == "count":
            return f"count={self.rowcount}"
        return "ok"


@dataclass
class Disagreement:
    """A matrix cell that diverged from the oracle leg."""

    name: str
    statement: str
    profile: str
    reason: str
    oracle: Cell
    subject: Cell


class Matrix:
    """Lockstep sessions over every profile; statement-at-a-time checking."""

    def __init__(self, profiles: Iterable[str] = PROFILES,
                 oracle: str = ORACLE, **engine_kwargs):
        from repro.core.engine import HyperQ

        self.oracle_name = oracle
        self.profiles = list(dict.fromkeys([oracle, *profiles]))
        self._engines = {name: HyperQ(target=name, **engine_kwargs)
                         for name in self.profiles}
        self._sessions = {name: engine.create_session()
                          for name, engine in self._engines.items()}

    def engine(self, profile: str):
        return self._engines[profile]

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()

    # -- execution --------------------------------------------------------------------

    def _execute_cell(self, profile: str, sql: str) -> Cell:
        session = self._sessions[profile]
        try:
            result = session.execute(sql)
        except Exception as exc:  # typed engine errors — keep the taxonomy
            return Cell(profile, "error", None, 0,
                        f"{type(exc).__name__}: {exc}")
        try:
            rows = list(result.rows) if result.kind == "rows" else None
            cell = Cell(profile, result.kind, rows, result.rowcount,
                        None, list(result.target_sql))
        finally:
            result.close()
        return cell

    def execute_all(self, sql: str) -> dict[str, Cell]:
        return {profile: self._execute_cell(profile, sql)
                for profile in self.profiles}

    def run_setup(self, statements: Iterable[str]) -> None:
        """Run schema/data statements on every leg; all must succeed."""
        for sql in statements:
            for profile, cell in self.execute_all(sql).items():
                if cell.kind == "error":
                    raise AssertionError(
                        f"setup statement failed on {profile}: {cell.error}\n"
                        f"  {sql}")

    # -- comparison -------------------------------------------------------------------

    def check(self, sql: str, name: str = "<statement>",
              cells: Optional[dict[str, Cell]] = None) -> list[Disagreement]:
        """Execute *sql* everywhere; return each leg's disagreement, if any.

        Pass *cells* to compare an :meth:`execute_all` result without
        re-executing (mutating statements must run exactly once per leg).
        """
        if cells is None:
            cells = self.execute_all(sql)
        oracle = cells[self.oracle_name]
        ordered = is_order_sensitive(sql)
        out = []
        for profile in self.profiles:
            if profile == self.oracle_name:
                continue
            reason = _compare(oracle, cells[profile], ordered)
            if reason is not None:
                out.append(Disagreement(name, sql, profile, reason,
                                        oracle, cells[profile]))
        return out


def _compare(oracle: Cell, subject: Cell, ordered: bool) -> Optional[str]:
    if oracle.kind == "error" and subject.kind == "error":
        return None  # both sides reject — message texts may differ
    if oracle.kind != subject.kind:
        return (f"result kind differs: oracle {oracle.summary()}, "
                f"{subject.profile} {subject.summary()}")
    if oracle.kind == "count" and oracle.rowcount != subject.rowcount:
        return (f"affected-row count differs: oracle {oracle.rowcount}, "
                f"{subject.profile} {subject.rowcount}")
    if oracle.kind != "rows":
        return None
    left = normalize_rows(oracle.rows or [])
    right = normalize_rows(subject.rows or [])
    if ordered:
        if left != right:
            return "ordered row sequence differs"
        return None
    if sorted(left, key=repr) != sorted(right, key=repr):
        return "row multiset differs"
    return None


# -- reporting ------------------------------------------------------------------------


def _rows_block(cell: Cell) -> str:
    if cell.kind == "error":
        return f"  {cell.error}"
    if cell.kind != "rows":
        return f"  {cell.summary()}"
    rows = cell.rows or []
    lines = [f"  {row!r}" for row in rows[:_REPORT_ROWS]]
    if len(rows) > _REPORT_ROWS:
        lines.append(f"  ... {len(rows) - _REPORT_ROWS} more row(s)")
    if not lines:
        lines = ["  (no rows)"]
    return "\n".join(lines)


def format_report(disagreement: Disagreement,
                  reduced: Optional[str] = None) -> str:
    """A disagreement as a human-readable repro: minimal statement first,
    then both result sets, then the diverging serializer outputs."""
    d = disagreement
    lines = [
        f"conformance disagreement [{d.profile}] on '{d.name}': {d.reason}",
        f"statement: {d.statement}",
    ]
    if reduced is not None and reduced != d.statement:
        lines.append(f"reduced repro: {reduced}")
    lines.append(f"oracle ({d.oracle.profile}) result:")
    lines.append(_rows_block(d.oracle))
    lines.append(f"{d.profile} result:")
    lines.append(_rows_block(d.subject))
    lines.append(f"oracle ({d.oracle.profile}) target SQL:")
    lines += [f"  {sql}" for sql in d.oracle.target_sql] or ["  (none)"]
    lines.append(f"{d.profile} target SQL:")
    lines += [f"  {sql}" for sql in d.subject.target_sql] or ["  (none)"]
    return "\n".join(lines)


def report_with_reduction(matrix: Matrix, disagreement: Disagreement) -> str:
    """Shrink the failing statement (read-only statements only) and format."""
    from tests.conformance.reducer import reduce_statement, reducible

    reduced = None
    if reducible(disagreement.statement):
        target = disagreement.profile

        def still_fails(candidate: str) -> bool:
            return any(d.profile == target
                       for d in matrix.check(candidate, disagreement.name))

        reduced = reduce_statement(disagreement.statement, still_fails)
    return format_report(disagreement, reduced)


# -- CLI: run one matrix cell ---------------------------------------------------------


def _cli(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run one cell of the conformance matrix")
    parser.add_argument("--profile", required=True,
                        help=f"target profile ({', '.join(PROFILES[1:])})")
    parser.add_argument("--corpus", default="golden",
                        choices=("golden", "generated"))
    parser.add_argument("--name", default=None,
                        help="statement name (default: every statement)")
    args = parser.parse_args(argv)
    if args.profile not in PROFILES or args.profile == ORACLE:
        parser.error(f"--profile must be one of {', '.join(PROFILES[1:])}")

    if args.corpus == "golden":
        from tests.golden.corpus import CORPUS, SETUP
        setup, statements = SETUP, CORPUS
    else:
        from tests.conformance.generator import (
            GENERATOR_SETUP, generate_statements, load_tpch,
        )
        setup, statements = GENERATOR_SETUP, generate_statements()

    matrix = Matrix(profiles=(ORACLE, args.profile))
    if args.corpus == "generated":
        load_tpch(matrix)
    matrix.run_setup(setup)
    failures = 0
    checked = 0
    for name, sql in statements:
        if args.name is not None and name != args.name:
            continue
        checked += 1
        for disagreement in matrix.check(sql, name):
            failures += 1
            print(report_with_reduction(matrix, disagreement))
            print()
    matrix.close()
    print(f"{checked} statement(s) checked against {args.profile}; "
          f"{failures} disagreement(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(_cli())
