"""The conformance matrix: every corpus statement × every dialect profile.

One module-scoped pass executes both corpora — the golden translation corpus
(stateful: macros, views, volatile tables, MERGE) and the seeded generative
corpus over TPC-H — through a lockstep :class:`Matrix` of all profiles, and
records one report per (statement, profile) disagreement. The parametrized
tests below then assert per statement, so a red run names exactly which
statements diverged on which dialects, with both result sets, both targets'
SQL, and a reduced reproducer in the failure message.
"""

from __future__ import annotations

import pytest

from tests.conformance.generator import (
    GENERATOR_SETUP, generate_statements, load_tpch,
)
from tests.conformance.runner import (
    Matrix, PROFILES, report_with_reduction,
)
from tests.golden.corpus import CORPUS, SETUP

GENERATED = generate_statements()


@pytest.fixture(scope="module")
def matrix_failures():
    """Run everything once; map (corpus, name) -> list of failure reports."""
    matrix = Matrix()
    failures: dict[tuple[str, str], list[str]] = {}

    def run(corpus: str, statements) -> None:
        for name, sql in statements:
            cells = matrix.execute_all(sql)
            oracle = cells[matrix.oracle_name]
            if oracle.kind == "error":
                failures.setdefault((corpus, name), []).append(
                    f"oracle leg ({matrix.oracle_name}) rejected the "
                    f"statement: {oracle.error}\n  {sql}")
                continue
            for disagreement in matrix.check(sql, name, cells=cells):
                failures.setdefault((corpus, name), []).append(
                    report_with_reduction(matrix, disagreement))

    matrix.run_setup(SETUP)
    run("golden", CORPUS)
    load_tpch(matrix)
    matrix.run_setup(GENERATOR_SETUP)
    run("generated", GENERATED)
    matrix.close()
    return failures


def test_matrix_covers_all_profiles():
    assert set(PROFILES) == {"hyperion", "hyperion_plus", "meadowshift",
                             "skyquery", "azuresynth", "snowfield"}


def test_generated_corpus_is_big_and_deterministic():
    names = [name for name, __ in GENERATED]
    assert len(GENERATED) >= 200
    assert len(names) == len(set(names)), "duplicate statement names"
    assert GENERATED == generate_statements(), "generator is not seeded"


@pytest.mark.parametrize("name", [name for name, __ in CORPUS])
def test_golden_statement_conforms(matrix_failures, name):
    reports = matrix_failures.get(("golden", name))
    if reports:
        pytest.fail("\n\n".join(reports))


@pytest.mark.parametrize("name", [name for name, __ in GENERATED])
def test_generated_statement_conforms(matrix_failures, name):
    reports = matrix_failures.get(("generated", name))
    if reports:
        pytest.fail("\n\n".join(reports))


def test_no_unattributed_failures(matrix_failures):
    """Every recorded failure belongs to a known corpus statement."""
    known = {("golden", n) for n, __ in CORPUS}
    known |= {("generated", n) for n, __ in GENERATED}
    assert set(matrix_failures) <= known
