"""The reducer, proven on a seeded serializer bug.

The headline test plants a real defect — a meadowshift serializer that spells
``>`` as ``>=`` — builds a two-profile matrix, and shows the conformance
harness (a) catches the divergence and (b) shrinks a sprawling multi-clause
query to a minimal reproducer of at most 3 top-level clauses that still
triggers the bug. The remaining tests pin the reducer's text surgery.
"""

from __future__ import annotations

import pytest

from repro.serializer import dialects
from repro.xtra import scalars as s
from tests.conformance.reducer import (
    clause_count, reduce_statement, reducible,
)
from tests.conformance.runner import Matrix, format_report


class _GreaterSpelledGreaterEqual(dialects.PostgresSerializer):
    """Seeded bug: every ``>`` comparison is serialized as ``>=``."""

    def render_expr(self, expr, env):
        if isinstance(expr, s.Comp) and expr.op is s.CompOp.GT:
            left = self.render_expr(expr.left, env)
            right = self.render_expr(expr.right, env)
            return f"{left} >= {right}"
        return super().render_expr(expr, env)


@pytest.fixture
def buggy_matrix(monkeypatch):
    """A hyperion/meadowshift matrix whose meadowshift leg has the bug.

    Serializers are instantiated per engine from the registry, so patching
    the registry before building the matrix is all it takes.
    """
    monkeypatch.setitem(dialects._SERIALIZERS, "meadowshift",
                        _GreaterSpelledGreaterEqual)
    matrix = Matrix(profiles=("hyperion", "meadowshift"))
    matrix.run_setup([
        "CREATE TABLE M (GRP VARCHAR(1), K INTEGER, V INTEGER)",
        """INSERT INTO M VALUES
            ('a', 1, 10), ('a', 2, 20), ('a', 3, 30),
            ('b', 4, 20), ('b', 5, 40), ('c', 6, 50)""",
    ])
    yield matrix
    matrix.close()


# A deliberately baggy statement: 7 top-level clauses, multi-item select
# list, conjunction chain. Only `V > 20` touches the seeded bug (the
# boundary row V = 20 flips sides under `>=`).
SEEDED_QUERY = ("SEL GRP, K, V, V + 1 FROM M "
                "WHERE V > 20 AND K < 9 AND GRP <> 'z' "
                "GROUP BY GRP, K, V HAVING COUNT(*) >= 1 "
                "QUALIFY ROW_NUMBER() OVER (ORDER BY K) >= 1 "
                "ORDER BY GRP, K")


def test_seeded_bug_is_caught(buggy_matrix):
    disagreements = buggy_matrix.check(SEEDED_QUERY, "seeded")
    assert [d.profile for d in disagreements] == ["meadowshift"]
    report = format_report(disagreements[0])
    assert ">= 20" in "\n".join(disagreements[0].subject.target_sql)
    assert "meadowshift" in report and "target SQL" in report


def test_seeded_bug_reduces_to_three_clauses(buggy_matrix):
    assert reducible(SEEDED_QUERY)

    def still_fails(candidate: str) -> bool:
        return any(d.profile == "meadowshift"
                   for d in buggy_matrix.check(candidate, "seeded"))

    assert still_fails(SEEDED_QUERY)
    reduced = reduce_statement(SEEDED_QUERY, still_fails)
    assert still_fails(reduced), "reduction lost the disagreement"
    assert clause_count(reduced) <= 3, reduced
    assert len(reduced) < len(SEEDED_QUERY)
    # The essential trigger survives: a strict > comparison.
    assert ">" in reduced


def test_clean_matrix_has_no_disagreement_on_seeded_query():
    matrix = Matrix(profiles=("hyperion", "meadowshift"))
    matrix.run_setup([
        "CREATE TABLE M (GRP VARCHAR(1), K INTEGER, V INTEGER)",
        "INSERT INTO M VALUES ('a', 1, 10), ('a', 2, 20), ('b', 5, 40)",
    ])
    assert matrix.check(SEEDED_QUERY, "seeded") == []
    matrix.close()


# -- text-surgery unit tests ----------------------------------------------------------


def test_clause_count_ignores_nested_clauses():
    sql = ("SELECT A FROM T WHERE X IN (SELECT B FROM U WHERE Y > 1) "
           "ORDER BY A")
    assert clause_count(sql) == 4  # SELECT, FROM, WHERE, ORDER


def test_clause_count_ignores_string_literals():
    assert clause_count("SELECT 'WHERE ORDER FROM' FROM T") == 2


def test_reducible_only_for_read_only_statements():
    assert reducible("SEL A FROM T")
    assert reducible("  select a from t")
    assert reducible("WITH X AS (SELECT 1) SELECT * FROM X")
    assert not reducible("UPDATE T SET A = 1")
    assert not reducible("DELETE FROM T")
    assert not reducible("MERGE INTO T USING U ON T.A = U.A "
                         "WHEN MATCHED THEN UPDATE SET A = 2")


def test_reduce_drops_irrelevant_clauses():
    # Predicate: any candidate still containing the magic token "fails".
    def still_fails(sql: str) -> bool:
        return "QUALIFY" in sql.upper()

    reduced = reduce_statement(
        "SEL A, B FROM T WHERE A > 1 QUALIFY ROW_NUMBER() OVER "
        "(ORDER BY A) <= 2 ORDER BY B", still_fails)
    assert "QUALIFY" in reduced
    assert "WHERE" not in reduced
    assert "ORDER BY B" not in reduced
    assert clause_count(reduced) <= 3


def test_reduce_shrinks_select_list_and_literals():
    def still_fails(sql: str) -> bool:
        return "ZEROIFNULL" in sql

    reduced = reduce_statement(
        "SEL A, ZEROIFNULL(B), C, D FROM T WHERE X = 12345", still_fails)
    assert "ZEROIFNULL" in reduced
    assert "C" not in reduced and "D" not in reduced
    assert "12345" not in reduced


def test_reduce_keeps_original_when_nothing_smaller_fails():
    sql = "SEL A FROM T"
    assert reduce_statement(sql, lambda c: c == sql) == sql
