"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import re

import pytest

from repro.backend import Database
from repro.core.engine import HyperQ
from repro.core.tracker import FeatureTracker


def pytest_runtest_makereport(item, call):
    """On failure, dump every live trace ring buffer as JSONL.

    Gated on ``HQ_TRACE_DUMP_DIR`` (set by the CI integration/resilience
    jobs, which upload the directory as an artifact) so local runs pay
    nothing. One file per failed test, all hubs concatenated.
    """
    dump_dir = os.environ.get("HQ_TRACE_DUMP_DIR")
    if not dump_dir or call.when != "call" or call.excinfo is None:
        return
    from repro.core.trace import live_hubs

    lines = []
    for hub in live_hubs():
        dumped = hub.dump_jsonl()
        if dumped:
            lines.append(dumped)
    if not lines:
        return
    os.makedirs(dump_dir, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.nodeid)
    path = os.path.join(dump_dir, f"{safe}.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


@pytest.fixture
def backend():
    """A fresh in-memory backend database (default HYPERION profile)."""
    return Database()


@pytest.fixture
def backend_session(backend):
    return backend.create_session()


@pytest.fixture
def tracker():
    return FeatureTracker()


@pytest.fixture
def engine(tracker):
    """A fresh Hyper-Q engine with feature tracking attached."""
    return HyperQ(tracker=tracker)


@pytest.fixture
def session(engine):
    return engine.create_session()


@pytest.fixture
def sales_session(session):
    """A Hyper-Q session with the paper's SALES/SALES_HISTORY schema loaded."""
    session.execute("""
        CREATE MULTISET TABLE SALES (
            PRODUCT_NAME VARCHAR(40),
            STORE INTEGER,
            AMOUNT DECIMAL(12,2),
            SALES_DATE DATE)
    """)
    session.execute("""
        CREATE MULTISET TABLE SALES_HISTORY (
            GROSS DECIMAL(12,2), NET DECIMAL(12,2))
    """)
    session.execute("""
        INSERT INTO SALES VALUES
            ('alpha', 1, 100.00, DATE '2015-02-03'),
            ('beta',  1,  50.00, DATE '2013-01-01'),
            ('gamma', 2,  80.00, DATE '2016-05-05'),
            ('delta', 2,  80.00, DATE '2014-07-01'),
            ('omega', 3,  20.00, DATE '2014-01-02')
    """)
    session.execute("INSERT INTO SALES_HISTORY VALUES (90.00, 70.00), (60.00, 40.00)")
    return session


@pytest.fixture
def emp_session(session):
    """A Hyper-Q session with the paper's Example 4 employee hierarchy."""
    session.execute("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)")
    session.execute(
        "INSERT INTO EMP VALUES (1, 7), (7, 8), (8, 10), (9, 10), (10, 11)")
    return session
