"""Seeded fuzzing of the wire-protocol frame parser, on both wire paths.

Feeds malformed byte sequences — truncated frames, oversized length
prefixes, bad magic, unknown kinds, garbage mid-stream, and pathological
1-byte split sends — at a live server and asserts the invariants that make
the protocol layer safe to expose:

* the server answers with a clean FAILURE or closes the connection — it
  never hangs holding a half-parsed frame;
* no FAILURE payload ever leaks an internal traceback;
* no session and no result buffer outlives its connection
  (``engine.open_session_count`` and ``ResultStore.open_count`` return to
  baseline after the whole corpus).

The corpus is deterministic per seed. CI runs the default seed; the
nightly job widens coverage by exporting ``HQ_FUZZ_SEED`` (one extra seed
per run) and ``HQ_FUZZ_CASES`` without any code change. When a case fails,
the test greedily minimizes the byte sequence (drop-a-span to a fixpoint,
RISE-style) and prints the minimized hex so the failure is replayable in a
commit message or a regression corpus entry.
"""

import os
import socket
import struct
import time

import pytest

from repro.core.engine import HyperQ
from repro.protocol.aio_server import AioServerThread
from repro.protocol.messages import HEADER, MAGIC, MessageKind
from repro.protocol.server import ServerThread
from repro.results.store import ResultStore

DEFAULT_SEED = 0xD470
CASES = int(os.environ.get("HQ_FUZZ_CASES", "60"))
READ_DEADLINE = 5.0

_LOGON = HEADER.pack(MAGIC, int(MessageKind.LOGON_REQUEST), 7) + b"dbc\0dbc"
_QUERY_SQL = b"SELECT 1"
_QUERY = HEADER.pack(MAGIC, int(MessageKind.RUN_QUERY),
                     len(_QUERY_SQL)) + _QUERY_SQL


def _seeds():
    seeds = [DEFAULT_SEED]
    extra = os.environ.get("HQ_FUZZ_SEED")
    if extra:
        seeds.append(int(extra, 0))
    return seeds


# -- corpus generation ----------------------------------------------------------------

def _mutations(rng):
    """One malformed byte sequence per call, spanning the parser's attack
    surface. Returns (description, payload bytes)."""
    choice = rng.randrange(8)
    if choice == 0:
        # Truncated header: fewer bytes than the 7-byte frame header.
        return "truncated-header", _LOGON + HEADER.pack(
            MAGIC, int(MessageKind.RUN_QUERY), 4)[:rng.randrange(1, 7)]
    if choice == 1:
        # Oversized length prefix: declares more than MAX_PAYLOAD.
        return "oversized-length", _LOGON + HEADER.pack(
            MAGIC, int(MessageKind.RUN_QUERY),
            rng.randrange(2 ** 26 + 1, 2 ** 32 - 1))
    if choice == 2:
        # Bad magic on the first or a later frame.
        bad = bytes([rng.randrange(256), rng.randrange(256)])
        frame = struct.pack(">2sBI", bad, 3, 5) + b"hello"
        return "bad-magic", (frame if rng.random() < 0.5
                             else _LOGON + frame)
    if choice == 3:
        # Unknown message kind after a clean logon.
        kind = rng.choice([0, 10, 42, 200, 255])
        return "unknown-kind", _LOGON + HEADER.pack(MAGIC, kind, 0)
    if choice == 4:
        # Truncated payload: header promises more bytes than ever arrive.
        declared = rng.randrange(5, 4096)
        sent = rng.randrange(0, declared)
        return "truncated-payload", _LOGON + HEADER.pack(
            MAGIC, int(MessageKind.RUN_QUERY), declared) + bytes(sent)
    if choice == 5:
        # Pure garbage, no valid logon.
        return "garbage", bytes(rng.randrange(256)
                                for __ in range(rng.randrange(1, 64)))
    if choice == 6:
        # Garbage mid-stream: a full valid exchange, then junk.
        return "garbage-midstream", _LOGON + _QUERY + bytes(
            rng.randrange(256) for __ in range(rng.randrange(1, 32)))
    # Response-kind frame sent where a request belongs.
    kind = rng.choice([MessageKind.RESULT_ROWS, MessageKind.SUCCESS,
                       MessageKind.FAILURE, MessageKind.LOGON_RESPONSE])
    return "response-kind", _LOGON + HEADER.pack(MAGIC, int(kind), 2) + b"xx"


# -- exchange + invariant check -------------------------------------------------------

def _exchange(address, data, split=False):
    """Send *data* (optionally byte-at-a-time), half-close, then drain the
    server's reply until EOF. Returns (reply_bytes, hung)."""
    with socket.create_connection(address, timeout=READ_DEADLINE) as sock:
        sock.settimeout(READ_DEADLINE)
        try:
            if split:
                for i in range(len(data)):
                    sock.sendall(data[i:i + 1])
            else:
                sock.sendall(data)
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # server already slammed the door — that's a clean reject
        reply = bytearray()
        deadline = time.monotonic() + READ_DEADLINE
        while time.monotonic() < deadline:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                return bytes(reply), True
            except OSError:
                break
            if not chunk:
                break
            reply += chunk
        else:
            return bytes(reply), True
        return bytes(reply), False


def _frames(reply):
    """Parse whatever complete frames the server sent back."""
    out = []
    offset = 0
    while offset + HEADER.size <= len(reply):
        magic, kind, length = HEADER.unpack_from(reply, offset)
        if magic != MAGIC or offset + HEADER.size + length > len(reply):
            break
        out.append((kind, bytes(reply[offset + HEADER.size:
                                      offset + HEADER.size + length])))
        offset += HEADER.size + length
    return out


def _violation(reply, hung):
    """The fuzz property: clean FAILURE or disconnect, no hang, no
    traceback leak. Returns a description or None."""
    if hung:
        return "server hung instead of closing the connection"
    for kind, payload in _frames(reply):
        if kind == int(MessageKind.FAILURE):
            if b"Traceback" in payload or b'File "' in payload:
                return f"FAILURE leaks a traceback: {payload[:120]!r}"
    return None


def _minimize(address, data, split):
    """Greedy span-drop minimization: repeatedly remove byte spans while
    the violation persists, halving span width down to single bytes."""
    current = data

    def still_fails(candidate):
        reply, hung = _exchange(address, candidate, split=split)
        return _violation(reply, hung) is not None

    width = max(1, len(current) // 2)
    while width >= 1:
        offset = 0
        while offset < len(current):
            candidate = current[:offset] + current[offset + width:]
            if candidate and still_fails(candidate):
                current = candidate
            else:
                offset += width
        width //= 2
    return current


# -- fixtures -------------------------------------------------------------------------

@pytest.fixture(params=["threaded", "async"])
def wire_server(request):
    engine = HyperQ(tracing=False)
    thread_cls = ServerThread if request.param == "threaded" \
        else AioServerThread
    thread = thread_cls(engine, max_connections=16)
    address = thread.start()
    yield engine, address
    thread.stop()


def _settle(predicate, deadline=5.0):
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# -- the battery ----------------------------------------------------------------------

class TestWireFuzz:
    def test_malformed_corpus(self, wire_server):
        import random

        engine, address = wire_server
        store_baseline = ResultStore.open_count()
        for seed in _seeds():
            rng = random.Random(seed)
            for case in range(CASES):
                label, data = _mutations(rng)
                split = rng.random() < 0.25
                reply, hung = _exchange(address, data, split=split)
                problem = _violation(reply, hung)
                if problem is not None:
                    minimized = _minimize(address, data, split)
                    pytest.fail(
                        f"seed={seed:#x} case={case} ({label}, "
                        f"split={split}): {problem}\n"
                        f"minimized ({len(minimized)} bytes): "
                        f"{minimized.hex()}")
        # No session and no result buffer may outlive its connection.
        assert _settle(lambda: engine.open_session_count == 0), \
            f"{engine.open_session_count} sessions leaked"
        assert _settle(
            lambda: ResultStore.open_count() <= store_baseline), \
            f"{ResultStore.open_count() - store_baseline} stores leaked"

    def test_split_sends_still_served(self, wire_server):
        """A pathologically fragmented but valid exchange must succeed:
        framing cannot depend on TCP segment boundaries."""
        __, address = wire_server
        logoff = HEADER.pack(MAGIC, int(MessageKind.LOGOFF), 0)
        reply, hung = _exchange(address, _LOGON + _QUERY + logoff,
                                split=True)
        assert not hung
        kinds = [kind for kind, __ in _frames(reply)]
        assert int(MessageKind.LOGON_RESPONSE) == kinds[0]
        assert int(MessageKind.SUCCESS) in kinds
        assert int(MessageKind.FAILURE) not in kinds

    def test_oversized_reply_refused_cleanly(self, wire_server):
        """An oversized length prefix is rejected before any payload is
        read — immediately, not after 64 MiB of allocation."""
        __, address = wire_server
        data = _LOGON + HEADER.pack(MAGIC, int(MessageKind.RUN_QUERY),
                                    2 ** 31)
        start = time.monotonic()
        reply, hung = _exchange(address, data)
        assert not hung
        assert time.monotonic() - start < READ_DEADLINE
        # Logon succeeded; the poisoned frame just drops the connection.
        kinds = [kind for kind, __ in _frames(reply)]
        assert kinds[0] == int(MessageKind.LOGON_RESPONSE)

    def test_disconnect_between_frames_releases_session(self, wire_server):
        """100 abrupt disconnects (no LOGOFF, mid-conversation) leak
        nothing: sessions and result buffers return to baseline."""
        engine, address = wire_server
        store_baseline = ResultStore.open_count()
        for __ in range(100):
            with socket.create_connection(address, timeout=5.0) as sock:
                sock.sendall(_LOGON)
                sock.settimeout(5.0)
                sock.recv(HEADER.size + 4)  # LOGON_RESPONSE
                sock.sendall(_QUERY)
                # Vanish without draining the reply or sending LOGOFF.
        assert _settle(lambda: engine.open_session_count == 0), \
            f"{engine.open_session_count} sessions leaked"
        assert _settle(
            lambda: ResultStore.open_count() <= store_baseline), \
            f"{ResultStore.open_count() - store_baseline} stores leaked"
