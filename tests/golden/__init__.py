"""Golden-corpus differential harness for the translation pipeline.

``corpus.py`` holds ~40 representative Teradata statements; for each one
the harness records the exact target SQL Hyper-Q emits plus a trace summary
(pipeline stages + fired rewrite rules). ``test_golden.py`` diffs fresh
output against the checked-in files under ``expected/``;
``python -m tests.golden.regen`` regenerates them after an intentional
translation change.
"""
