"""The golden translation corpus: one engine, one scripted conversation.

Every entry is executed in order against a single fresh engine (so volatile
tables, macros, and views created early in the corpus are visible to later
statements, exactly like a real migrated application session). For each
corpus statement the harness captures:

* the **target SQL** actually sent to the warehouse (``result.target_sql``
  — emulated features produce several statements per request);
* the **trace summary**: the request's pipeline stages in span-tree
  pre-order plus the rewrite rules that fired.

Both projections are deterministic — no durations, no ids, no wall clock —
so regeneration is byte-identical across runs (checked by
``test_golden.py::test_regen_is_deterministic``).
"""

from __future__ import annotations

#: Schema + data the corpus statements run against (not golden-checked).
SETUP = [
    """CREATE MULTISET TABLE SALES (
        PRODUCT_NAME VARCHAR(40),
        STORE INTEGER,
        AMOUNT DECIMAL(12,2),
        SALES_DATE DATE)""",
    """CREATE MULTISET TABLE SALES_HISTORY (
        GROSS DECIMAL(12,2), NET DECIMAL(12,2))""",
    "CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)",
    "CREATE TABLE DELTAS (PRODUCT_NAME VARCHAR(40), AMOUNT DECIMAL(12,2))",
    "CREATE TABLE SERIES (GRP VARCHAR(1), T INTEGER, V INTEGER)",
    "CREATE TABLE WORDS (W VARCHAR(20))",
    """INSERT INTO SALES VALUES
        ('alpha', 1, 100.00, DATE '2015-02-03'),
        ('beta',  1,  50.00, DATE '2013-01-01'),
        ('gamma', 2,  80.00, DATE '2016-05-05'),
        ('delta', 2,  80.00, DATE '2014-07-01'),
        ('omega', 3,  20.00, DATE '2014-01-02')""",
    "INSERT INTO SALES_HISTORY VALUES (90.00, 70.00), (60.00, 40.00)",
    "INSERT INTO EMP VALUES (1, 7), (7, 8), (8, 10), (9, 10), (10, 11)",
    "INSERT INTO DELTAS VALUES ('alpha', 111.00), ('newone', 9.99)",
    """INSERT INTO SERIES VALUES
        ('a', 1, 10), ('a', 2, 20), ('a', 3, 30),
        ('b', 1, 5), ('b', 2, NULL), ('b', 3, 15)""",
    "INSERT INTO WORDS VALUES ('apple'), ('plum'), ('pear'), ('banana')",
]

#: (name, teradata_sql) in execution order; names key the expected/ files.
CORPUS = [
    # -- SEL shortcut, projection shapes -------------------------------------------
    ("sel_star", "SEL * FROM SALES"),
    ("sel_shortcut_where", "SEL PRODUCT_NAME FROM SALES WHERE STORE = 1"),
    ("named_expression",
     "SEL AMOUNT AS BASE, BASE + 100 AS OFFSET_AMT FROM SALES"),
    ("select_distinct", "SEL DISTINCT STORE FROM SALES"),
    ("order_before_where",
     "SEL PRODUCT_NAME FROM SALES ORDER BY PRODUCT_NAME WHERE AMOUNT > 40"),
    # -- QUALIFY and window functions ----------------------------------------------
    ("qualify_row_number",
     "SEL PRODUCT_NAME FROM SALES "
     "QUALIFY ROW_NUMBER() OVER (ORDER BY AMOUNT DESC) <= 2"),
    ("qualify_sum_window",
     "SEL PRODUCT_NAME, AMOUNT FROM SALES "
     "QUALIFY 10 < SUM(AMOUNT) OVER (PARTITION BY STORE)"),
    ("qualify_legacy_rank",
     "SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= 3"),
    ("window_lag",
     "SEL T, LAG(V) OVER (PARTITION BY GRP ORDER BY T) FROM SERIES"),
    ("window_lead_offset_default",
     "SEL T, LEAD(V, 2, -1) OVER (ORDER BY T) FROM SERIES"),
    ("window_first_value",
     "SEL T, FIRST_VALUE(V) OVER (PARTITION BY GRP ORDER BY T) FROM SERIES"),
    # -- date/int comparisons and date arithmetic ----------------------------------
    ("date_int_comparison",
     "SEL PRODUCT_NAME FROM SALES WHERE SALES_DATE > 1140101"),
    ("date_arith_plus_days",
     "SEL PRODUCT_NAME FROM SALES WHERE SALES_DATE + 30 > DATE '2015-01-01'"),
    ("paper_example_3",
     """SEL * FROM SALES
        WHERE SALES_DATE > 1140101
          AND (AMOUNT, AMOUNT * 0.85) >
              ANY (SEL GROSS, NET FROM SALES_HISTORY)
        QUALIFY RANK(AMOUNT DESC) <= 10"""),
    # -- vector subqueries and quantified predicates -------------------------------
    ("vector_subquery_any",
     "SEL PRODUCT_NAME FROM SALES WHERE (AMOUNT, AMOUNT) > "
     "ANY (SEL GROSS, NET FROM SALES_HISTORY)"),
    ("in_subquery",
     "SEL PRODUCT_NAME FROM SALES "
     "WHERE STORE IN (SEL STORE FROM SALES WHERE AMOUNT > 90)"),
    ("like_any",
     "SEL W FROM WORDS WHERE W LIKE ANY ('ap%', 'pl%') ORDER BY 1"),
    ("not_like_any",
     "SEL W FROM WORDS WHERE W NOT LIKE ANY ('ap%', 'pl%') ORDER BY 1"),
    # -- aggregation and OLAP grouping extensions ----------------------------------
    ("group_by_having",
     "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY STORE "
     "HAVING SUM(AMOUNT) > 50"),
    ("group_by_rollup",
     "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP (STORE)"),
    ("group_by_cube",
     "SEL STORE, SALES_DATE, SUM(AMOUNT) FROM SALES "
     "GROUP BY CUBE (STORE, SALES_DATE)"),
    ("null_ordering",
     "SEL T, V FROM SERIES ORDER BY V DESC"),
    # -- teradata scalar idioms ----------------------------------------------------
    ("chars_function",
     "SEL PRODUCT_NAME FROM SALES WHERE CHARS(PRODUCT_NAME) > 4"),
    ("zeroifnull",
     "SEL T, ZEROIFNULL(V) FROM SERIES"),
    ("nullifzero",
     "SEL T, NULLIFZERO(V) FROM SERIES"),
    # -- recursive query emulation (Example 4) -------------------------------------
    ("recursive_reports",
     """WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
            SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
            UNION ALL
            SELECT EMP.EMPNO, EMP.MGRNO
            FROM EMP, REPORTS
            WHERE REPORTS.EMPNO = EMP.MGRNO)
        SELECT EMPNO FROM REPORTS ORDER BY EMPNO"""),
    # -- MERGE emulation -----------------------------------------------------------
    ("merge_update_insert",
     """MERGE INTO SALES USING DELTAS D
        ON SALES.PRODUCT_NAME = D.PRODUCT_NAME
        WHEN MATCHED THEN UPDATE SET AMOUNT = D.AMOUNT
        WHEN NOT MATCHED THEN INSERT (PRODUCT_NAME, AMOUNT)
            VALUES (D.PRODUCT_NAME, D.AMOUNT)"""),
    ("merge_update_only",
     """MERGE INTO SALES USING DELTAS D
        ON SALES.PRODUCT_NAME = D.PRODUCT_NAME
        WHEN MATCHED THEN UPDATE SET AMOUNT = 77.00"""),
    # -- macros --------------------------------------------------------------------
    ("create_macro",
     "CREATE MACRO TOP_SALES (N INTEGER) AS "
     "(SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= :N;)"),
    ("exec_macro", "EXEC TOP_SALES (2)"),
    ("exec_macro_named", "EXEC TOP_SALES (N = 1)"),
    # -- views ---------------------------------------------------------------------
    ("create_view",
     "CREATE VIEW PRICY AS SEL PRODUCT_NAME AS PNAME, AMOUNT, STORE "
     "FROM SALES WHERE AMOUNT > 60"),
    ("select_from_view", "SEL PNAME FROM PRICY ORDER BY 1"),
    ("update_through_view",
     "UPD PRICY SET AMOUNT = AMOUNT + 1 WHERE STORE = 1"),
    ("delete_through_view", "DEL FROM PRICY WHERE PNAME = 'gamma'"),
    # -- volatile tables -----------------------------------------------------------
    ("create_volatile",
     "CREATE VOLATILE TABLE SCRATCH (X INTEGER) ON COMMIT PRESERVE ROWS"),
    ("insert_volatile", "INSERT INTO SCRATCH VALUES (7)"),
    ("select_volatile", "SEL X FROM SCRATCH"),
    ("drop_volatile", "DROP TABLE SCRATCH"),
    # -- DML shorthand and catalog statements --------------------------------------
    ("upd_shorthand", "UPD SALES SET AMOUNT = AMOUNT WHERE STORE = 3"),
    ("del_shorthand", "DEL FROM DELTAS WHERE PRODUCT_NAME = 'newone'"),
    ("help_table", "HELP TABLE SALES"),
    ("show_table", "SHOW TABLE EMP"),
    # -- warm-cache repeat: the cache-hit trace shape ------------------------------
    ("cache_hit_repeat", "SEL PRODUCT_NAME FROM SALES WHERE STORE = 1"),
]


# Every target profile the golden corpus is pinned for. "hyperion" is the
# default target and keeps the flat expected/<name>.sql + .trace layout; the
# other dialects check in SQL only, under expected/<dialect>/<name>.sql.
GOLDEN_DIALECTS = ("hyperion", "hyperion_plus", "meadowshift", "skyquery",
                   "azuresynth", "snowfield")


def run_corpus(target: str = "hyperion"):
    """Execute the corpus on one fresh engine translating for *target*;
    yield ``(name, target_sql_list, trace_summary)`` per statement."""
    from repro.core.engine import HyperQ

    engine = HyperQ(target=target)
    session = engine.create_session()
    for sql in SETUP:
        session.execute(sql).close()
    for name, sql in CORPUS:
        result = session.execute(sql)
        targets = list(result.target_sql)
        result.close()
        trace = engine.tracing.last_trace()
        yield name, targets, trace.summary()
    session.close()


def render_sql(targets: list[str]) -> str:
    """The checked-in .sql form: one target statement per ';'-terminated
    line (some requests legitimately emit none — catalog-only DDL)."""
    if not targets:
        return "-- no target statements (catalog-side request)\n"
    return "".join(f"{sql};\n" for sql in targets)


def render_summary(summary: dict) -> str:
    """The checked-in .trace form: stage list then fired rules."""
    lines = ["stages:"]
    lines += [f"  {stage}" for stage in summary["stages"]]
    lines.append("rules:")
    if summary["rules"]:
        lines += [f"  {rule}" for rule in summary["rules"]]
    else:
        lines.append("  (none)")
    return "\n".join(lines) + "\n"
