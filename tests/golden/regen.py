"""Regenerate the golden corpus files: ``python -m tests.golden.regen``.

Writes ``tests/golden/expected/<name>.sql`` (exact target SQL) and
``<name>.trace`` (stage + rule summary) for every corpus statement against
the default target, and removes stale files for statements no longer in the
corpus. ``--dialect <name>`` regenerates one cloud dialect's SQL under
``expected/<dialect>/``; ``--dialect all`` covers every dialect. ``--check``
writes nothing and instead exits non-zero with a unified diff naming each
dialect that drifted. Output is deterministic: running regen twice produces
byte-identical files.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

from tests.golden.corpus import (
    GOLDEN_DIALECTS, render_sql, render_summary, run_corpus,
)

EXPECTED_DIR = pathlib.Path(__file__).resolve().parent / "expected"


def expected_files(dialect: str) -> dict[str, str]:
    """Run the corpus for *dialect*; map relative file path -> content.

    The default dialect pins SQL and trace summaries in the flat layout;
    cloud dialects pin SQL only, under ``expected/<dialect>/``.
    """
    files: dict[str, str] = {}
    for name, targets, summary in run_corpus(dialect):
        if dialect == GOLDEN_DIALECTS[0]:
            files[f"{name}.sql"] = render_sql(targets)
            files[f"{name}.trace"] = render_summary(summary)
        else:
            files[f"{dialect}/{name}.sql"] = render_sql(targets)
    return files


def _checked_in(dialect: str) -> dict[str, str]:
    """The on-disk golden files of one dialect, path -> content."""
    if dialect == GOLDEN_DIALECTS[0]:
        root, prefix = EXPECTED_DIR, ""
    else:
        root, prefix = EXPECTED_DIR / dialect, f"{dialect}/"
    if not root.is_dir():
        return {}
    return {
        f"{prefix}{path.name}": path.read_text(encoding="utf-8")
        for path in root.iterdir()
        if path.is_file() and path.suffix in (".sql", ".trace")
    }


def regenerate(dialects: list[str] | None = None) -> list[str]:
    """Write the expected files of *dialects*; returns the paths written."""
    EXPECTED_DIR.mkdir(exist_ok=True)
    written: list[str] = []
    for dialect in dialects or [GOLDEN_DIALECTS[0]]:
        files = expected_files(dialect)
        for relative, content in files.items():
            path = EXPECTED_DIR / relative
            path.parent.mkdir(exist_ok=True)
            path.write_text(content, encoding="utf-8")
            written.append(relative)
        for stale in set(_checked_in(dialect)) - set(files):
            (EXPECTED_DIR / stale).unlink()
    return written


def check(dialects: list[str]) -> list[tuple[str, str, str]]:
    """Diff regenerated output against the checked-in files.

    Returns ``(dialect, relative_path, diff_text)`` per drifted, missing, or
    stale file, so a failure names exactly which dialects drifted.
    """
    problems: list[tuple[str, str, str]] = []
    for dialect in dialects:
        fresh = expected_files(dialect)
        on_disk = _checked_in(dialect)
        for relative in sorted(set(fresh) | set(on_disk)):
            expected = on_disk.get(relative)
            actual = fresh.get(relative)
            if expected == actual:
                continue
            diff = "".join(difflib.unified_diff(
                (expected or "").splitlines(keepends=True),
                (actual or "").splitlines(keepends=True),
                fromfile=f"checked-in/{relative}",
                tofile=f"regenerated/{relative}"))
            if expected is None:
                diff = f"missing golden file {relative}\n" + diff
            elif actual is None:
                diff = f"stale golden file {relative}\n"
            problems.append((dialect, relative, diff))
    return problems


def _resolve_dialects(option: str) -> list[str]:
    if option == "all":
        return list(GOLDEN_DIALECTS)
    if option not in GOLDEN_DIALECTS:
        raise SystemExit(
            f"unknown dialect {option!r}; choose from "
            f"{', '.join(GOLDEN_DIALECTS)} or 'all'")
    return [option]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate (or --check) the golden corpus files")
    parser.add_argument(
        "--dialect", default=GOLDEN_DIALECTS[0], metavar="NAME|all",
        help="target dialect to regenerate (default: %(default)s)")
    parser.add_argument(
        "--check", action="store_true",
        help="write nothing; fail with a unified diff per drifted dialect")
    args = parser.parse_args(argv)
    dialects = _resolve_dialects(args.dialect)
    if args.check:
        problems = check(dialects)
        if problems:
            drifted = sorted({dialect for dialect, __, __ in problems})
            print(f"golden drift in dialect(s): {', '.join(drifted)}\n")
            print("".join(diff for __, __, diff in problems))
            return 1
        print(f"golden files up to date for: {', '.join(dialects)}")
        return 0
    written = regenerate(dialects)
    print(f"regenerated {len(written)} golden files under {EXPECTED_DIR} "
          f"({', '.join(dialects)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
