"""Regenerate the golden corpus files: ``python -m tests.golden.regen``.

Writes ``tests/golden/expected/<name>.sql`` (exact target SQL) and
``<name>.trace`` (stage + rule summary) for every corpus statement, and
removes stale files for statements no longer in the corpus. Output is
deterministic: running regen twice produces byte-identical files.
"""

from __future__ import annotations

import pathlib
import sys

from tests.golden.corpus import render_sql, render_summary, run_corpus

EXPECTED_DIR = pathlib.Path(__file__).resolve().parent / "expected"


def regenerate() -> list[str]:
    """Write all expected files; returns the corpus names written."""
    EXPECTED_DIR.mkdir(exist_ok=True)
    names = []
    for name, targets, summary in run_corpus():
        names.append(name)
        (EXPECTED_DIR / f"{name}.sql").write_text(
            render_sql(targets), encoding="utf-8")
        (EXPECTED_DIR / f"{name}.trace").write_text(
            render_summary(summary), encoding="utf-8")
    keep = {f"{name}.sql" for name in names} \
        | {f"{name}.trace" for name in names}
    for stale in EXPECTED_DIR.iterdir():
        if stale.name not in keep and stale.suffix in (".sql", ".trace"):
            stale.unlink()
    return names


def main() -> int:
    names = regenerate()
    print(f"regenerated {len(names)} golden entries under {EXPECTED_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
