"""Differential tests against the checked-in golden corpus.

A failure means the translation pipeline's output (or its trace shape)
drifted. If the drift is intentional, regenerate with
``python -m tests.golden.regen`` and review the diff in the commit.
"""

from __future__ import annotations

import difflib
import pathlib

import pytest

from tests.golden.corpus import (
    CORPUS, GOLDEN_DIALECTS, render_sql, render_summary, run_corpus,
)

EXPECTED_DIR = pathlib.Path(__file__).resolve().parent / "expected"
CLOUD_DIALECTS = [d for d in GOLDEN_DIALECTS if d != "hyperion"]


@pytest.fixture(scope="module")
def corpus_output():
    """Run the whole corpus once; map name -> (sql_text, trace_text)."""
    return {name: (render_sql(targets), render_summary(summary))
            for name, targets, summary in run_corpus()}


def _diff(expected: str, actual: str, label: str) -> str:
    return "".join(difflib.unified_diff(
        expected.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=f"expected/{label}", tofile=f"actual/{label}"))


@pytest.mark.parametrize("name", [name for name, __ in CORPUS])
def test_target_sql_matches_golden(corpus_output, name):
    path = EXPECTED_DIR / f"{name}.sql"
    assert path.exists(), (
        f"no golden file for corpus entry '{name}' — run "
        "`python -m tests.golden.regen`")
    expected = path.read_text(encoding="utf-8")
    actual = corpus_output[name][0]
    if actual != expected:
        pytest.fail(
            f"target SQL drifted for '{name}' (regen with "
            "`python -m tests.golden.regen` if intentional):\n"
            + _diff(expected, actual, f"{name}.sql"))


@pytest.mark.parametrize("name", [name for name, __ in CORPUS])
def test_trace_summary_matches_golden(corpus_output, name):
    path = EXPECTED_DIR / f"{name}.trace"
    assert path.exists(), (
        f"no golden trace for corpus entry '{name}' — run "
        "`python -m tests.golden.regen`")
    expected = path.read_text(encoding="utf-8")
    actual = corpus_output[name][1]
    if actual != expected:
        pytest.fail(
            f"trace summary drifted for '{name}' (regen with "
            "`python -m tests.golden.regen` if intentional):\n"
            + _diff(expected, actual, f"{name}.trace"))


@pytest.mark.parametrize("dialect", CLOUD_DIALECTS)
def test_dialect_sql_matches_golden(dialect):
    """Per-dialect target SQL matches expected/<dialect>/<name>.sql."""
    dialect_dir = EXPECTED_DIR / dialect
    assert dialect_dir.is_dir(), (
        f"no golden directory for dialect '{dialect}' — run "
        f"`python -m tests.golden.regen --dialect {dialect}`")
    drifted = []
    for name, targets, __ in run_corpus(dialect):
        path = dialect_dir / f"{name}.sql"
        actual = render_sql(targets)
        expected = path.read_text(encoding="utf-8") if path.exists() else ""
        if actual != expected:
            drifted.append(_diff(expected, actual, f"{dialect}/{name}.sql"))
    if drifted:
        pytest.fail(
            f"{len(drifted)} statement(s) drifted for dialect '{dialect}' "
            f"(regen with `python -m tests.golden.regen --dialect {dialect}` "
            "if intentional):\n" + "\n".join(drifted))


def test_no_stale_golden_files():
    """Every expected/ file corresponds to a live corpus entry."""
    names = {name for name, __ in CORPUS}
    stale = [p.name for p in EXPECTED_DIR.iterdir()
             if p.suffix in (".sql", ".trace") and p.stem not in names]
    stale += [f"{d.name}/{p.name}"
              for d in EXPECTED_DIR.iterdir() if d.is_dir()
              for p in d.iterdir()
              if d.name not in GOLDEN_DIALECTS or p.stem not in names]
    assert not stale, f"stale golden files (rerun regen): {stale}"


def test_regen_is_deterministic():
    """Two corpus runs produce byte-identical output (fresh engine each)."""
    first = {name: (render_sql(t), render_summary(s))
             for name, t, s in run_corpus()}
    second = {name: (render_sql(t), render_summary(s))
              for name, t, s in run_corpus()}
    assert first == second
