"""Integration tests for the second (ANSI) frontend — the paper's
"add a parser, reuse everything else" extensibility claim, and the B.1
observation that developers may keep writing old-dialect SQL or switch to
the new dialect against the same virtualized database."""

import pytest

from repro.core.engine import HyperQ
from repro.errors import HyperQError


@pytest.fixture
def ansi():
    engine = HyperQ(source="ansi")
    session = engine.create_session()
    session.execute("CREATE TABLE ITEMS (ID INTEGER, NAME VARCHAR(20), "
                    "PRICE DOUBLE PRECISION)")
    session.execute("INSERT INTO ITEMS VALUES (1, 'apple', 1.5), "
                    "(2, 'pear', 2.0), (3, 'plum', 0.5)")
    return engine, session


class TestAnsiBasics:
    def test_select_executes(self, ansi):
        __, session = ansi
        result = session.execute(
            "SELECT NAME FROM ITEMS WHERE PRICE > 1.0 ORDER BY NAME")
        assert [row[0] for row in result.rows] == ["apple", "pear"]

    def test_window_functions(self, ansi):
        __, session = ansi
        result = session.execute(
            "SELECT NAME, RANK() OVER (ORDER BY PRICE DESC) AS R "
            "FROM ITEMS ORDER BY R")
        assert result.rows[0] == ("pear", 1)

    def test_group_by_having(self, ansi):
        __, session = ansi
        result = session.execute(
            "SELECT COUNT(*), SUM(PRICE) FROM ITEMS HAVING COUNT(*) > 1")
        assert result.rows == [(3, 4.0)]

    def test_dml(self, ansi):
        __, session = ansi
        assert session.execute(
            "UPDATE ITEMS SET PRICE = PRICE * 2 WHERE ID = 3").rowcount == 1
        assert session.execute(
            "DELETE FROM ITEMS WHERE PRICE >= 1.5").rowcount == 2
        assert session.execute("SELECT COUNT(*) FROM ITEMS").rows == [(1,)]

    def test_views(self, ansi):
        __, session = ansi
        session.execute("CREATE VIEW CHEAP AS SELECT NAME FROM ITEMS "
                        "WHERE PRICE < 1.0")
        assert session.execute("SELECT * FROM CHEAP").rows == [("plum",)]

    def test_null_ordering_keeps_target_semantics(self, ansi):
        __, session = ansi
        session.execute("INSERT INTO ITEMS VALUES (4, 'kiwi', NULL)")
        result = session.execute("SELECT PRICE FROM ITEMS ORDER BY PRICE")
        # ANSI source: the target's native placement (NULLs last) applies —
        # unlike the Teradata frontend, which pins NULLs first.
        assert result.rows[-1] == (None,)

    def test_teradata_syntax_rejected(self, ansi):
        __, session = ansi
        with pytest.raises(HyperQError):
            session.execute("SEL NAME FROM ITEMS")
        with pytest.raises(HyperQError):
            session.execute("SELECT NAME FROM ITEMS QUALIFY RANK() "
                            "OVER (ORDER BY PRICE) = 1")


class TestAnsiEmulation:
    def test_recursive_cte_emulated_for_weak_target(self, ansi):
        __, session = ansi
        result = session.execute(
            "WITH RECURSIVE SEQ (N) AS ("
            "SELECT ID FROM ITEMS WHERE ID = 1 "
            "UNION ALL SELECT N + 1 FROM SEQ WHERE N < 5) "
            "SELECT N FROM SEQ ORDER BY N")
        assert [row[0] for row in result.rows] == [1, 2, 3, 4, 5]
        assert len(result.target_sql) > 3  # emulated, not native

    def test_merge_emulated(self, ansi):
        __, session = ansi
        session.execute("CREATE TABLE PATCH (ID INTEGER, PRICE DOUBLE PRECISION)")
        session.execute("INSERT INTO PATCH VALUES (1, 9.99), (42, 0.42)")
        result = session.execute(
            "MERGE INTO ITEMS USING PATCH P ON ITEMS.ID = P.ID "
            "WHEN MATCHED THEN UPDATE SET PRICE = P.PRICE "
            "WHEN NOT MATCHED THEN INSERT (ID, PRICE) VALUES (P.ID, P.PRICE)")
        assert result.rowcount == 2
        assert session.execute(
            "SELECT PRICE FROM ITEMS WHERE ID = 1").rows == [(9.99,)]


class TestDualFrontendsOneTarget:
    """Appendix B.1: old and new dialects side by side on one database."""

    def test_teradata_and_ansi_share_a_backend(self):
        ansi_engine = HyperQ(source="ansi")
        td_engine = HyperQ(backend=ansi_engine.backend)
        td_engine.shadow = ansi_engine.shadow  # one shared schema picture

        ansi_session = ansi_engine.create_session()
        td_session = td_engine.create_session()

        ansi_session.execute("CREATE TABLE SHARED (A INTEGER, D DATE)")
        td_session.execute("INS SHARED (1, DATE '2014-03-01')")
        ansi_session.execute(
            "INSERT INTO SHARED VALUES (2, DATE '2015-03-01')")

        # Teradata app queries with TD-isms; ANSI app queries plainly.
        td_result = td_session.execute(
            "SEL COUNT(*) FROM SHARED WHERE D > 1140101")
        ansi_result = ansi_session.execute(
            "SELECT COUNT(*) FROM SHARED WHERE D > DATE '2014-01-01'")
        assert td_result.rows == ansi_result.rows == [(2,)]

    def test_unknown_source_rejected(self):
        with pytest.raises(HyperQError):
            HyperQ(source="cobol")
