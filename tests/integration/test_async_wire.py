"""The asyncio wire path against the threaded one: byte parity and the
async-only behaviors (backpressure, cancellation).

Parity is checked at the rawest level that matters: two identically
configured engines, one behind each server, receive the same frame script
and must produce **byte-identical** reply streams — streaming results,
workload-managed admission, tenancy rejections, and mid-stream FAILURE
included. Any divergence (a different chunk boundary, a different error
text, a missing frame) is a client-visible protocol change.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro import HyperQ, ServerThread, TdClient
from repro.core.budget import BatchBudget
from repro.core.tenancy import TenancyConfig, TenantRegistry
from repro.core.workload import WorkloadConfig, WorkloadManager
from repro.protocol.aio_server import AioHyperQServer, AioServerThread
from repro.protocol.messages import HEADER, MAGIC, MessageKind
from repro.results.store import ResultStore

PAD = "p" * 40


def _frame(kind: MessageKind, payload: bytes = b"") -> bytes:
    return HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def _logon(tenant: str | None = None) -> bytes:
    payload = b"dbc\0dbc"
    if tenant is not None:
        payload += b"\0" + tenant.encode()
    return _frame(MessageKind.LOGON_REQUEST, payload)


def _query(sql: str) -> bytes:
    return _frame(MessageKind.RUN_QUERY, sql.encode())


def _raw_exchange(address, script: bytes, timeout: float = 60.0) -> bytes:
    """Send a pre-built frame script, then drain the reply to EOF."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(script)
        sock.shutdown(socket.SHUT_WR)
        reply = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return bytes(reply)
            reply += chunk


def _frames(reply: bytes) -> list[tuple[int, bytes]]:
    out, offset = [], 0
    while offset + HEADER.size <= len(reply):
        __, kind, length = HEADER.unpack_from(reply, offset)
        out.append((kind, reply[offset + HEADER.size:
                                offset + HEADER.size + length]))
        offset += HEADER.size + length
    return out


def _seed_table(engine, rows: int) -> None:
    session = engine.create_session()
    session.execute("CREATE TABLE BIGSTREAM (N INTEGER, PAD VARCHAR(80))")
    session.close()
    table = engine.backend.catalog.table("BIGSTREAM")
    table.insert_rows([(i, PAD) for i in range(rows)])


def _both_replies(make_engine, script: bytes) -> tuple[bytes, bytes]:
    """The same frame script against a threaded and an async server, each
    wrapping an identically built engine."""
    replies = []
    for thread_cls in (ServerThread, AioServerThread):
        engine = make_engine()
        thread = thread_cls(engine)
        try:
            address = thread.start()
            replies.append(_raw_exchange(address, script))
        finally:
            thread.stop()
    return replies[0], replies[1]


def _settle(predicate, deadline: float = 5.0) -> bool:
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestReplyParity:
    def test_streaming_result_byte_identical(self):
        """A multi-chunk streaming SELECT: same metas, same chunk
        boundaries, same SUCCESS total — byte for byte."""
        def make_engine():
            engine = HyperQ(batch_budget=BatchBudget(batch_rows=64))
            _seed_table(engine, rows=1500)
            return engine

        script = _logon() + _query("SEL N, PAD FROM BIGSTREAM") \
            + _frame(MessageKind.LOGOFF)
        threaded, asyncio_ = _both_replies(make_engine, script)
        assert threaded == asyncio_
        kinds = [kind for kind, __ in _frames(threaded)]
        assert kinds.count(int(MessageKind.RESULT_ROWS)) > 1  # multi-chunk

    def test_workload_managed_admission_byte_identical(self):
        """Managed path: classify → admit → execute replies identically."""
        def make_engine():
            manager = WorkloadManager(WorkloadConfig(workers=2))
            engine = HyperQ(workload=manager,
                            batch_budget=BatchBudget(batch_rows=32))
            _seed_table(engine, rows=200)
            return engine

        script = _logon() \
            + _query("SEL N FROM BIGSTREAM WHERE N < 10") \
            + _query("INS INTO BIGSTREAM VALUES (9999, 'x')") \
            + _frame(MessageKind.LOGOFF)
        threaded, asyncio_ = _both_replies(make_engine, script)
        assert threaded == asyncio_

    def test_tenancy_rejections_byte_identical(self):
        """Unknown tenant at LOGON and a tripped QPS quota both produce
        identical FAILURE frames on both paths."""
        tenancy = {
            "tenants": {
                # One admission token, effectively never refilled: the
                # first query is admitted, the second sheds QUOTA_EXCEEDED.
                "meter": {"weight": 1.0, "rate": 0.000001, "burst": 1},
            },
        }

        def make_engine():
            registry = TenantRegistry(TenancyConfig.from_dict(tenancy))
            manager = WorkloadManager(WorkloadConfig(workers=2),
                                      tenancy=registry)
            return HyperQ(workload=manager)

        unknown = _logon(tenant="ghost")
        threaded, asyncio_ = _both_replies(make_engine, unknown)
        assert threaded == asyncio_
        assert _frames(threaded)[0][0] == int(MessageKind.FAILURE)

        quota = _logon(tenant="meter") + _query("SEL 1") \
            + _query("SEL 2") + _frame(MessageKind.LOGOFF)
        threaded, asyncio_ = _both_replies(make_engine, quota)
        assert threaded == asyncio_
        kinds = [kind for kind, __ in _frames(threaded)]
        assert int(MessageKind.SUCCESS) in kinds
        assert int(MessageKind.FAILURE) in kinds
        failure = next(payload for kind, payload in _frames(threaded)
                       if kind == int(MessageKind.FAILURE))
        assert b"QUOTA_EXCEEDED" in failure

    def test_mid_stream_failure_byte_identical(self):
        """A lazily raised backend error after chunks already shipped:
        both paths truncate at the same chunk and send the same FAILURE."""
        def make_engine():
            engine = HyperQ(batch_budget=BatchBudget(batch_rows=16))
            _seed_table(engine, rows=200)
            return engine

        script = _logon() \
            + _query("SEL 100 / (N - 50) FROM BIGSTREAM") \
            + _frame(MessageKind.LOGOFF)
        threaded, asyncio_ = _both_replies(make_engine, script)
        assert threaded == asyncio_
        kinds = [kind for kind, __ in _frames(threaded)]
        assert int(MessageKind.RESULT_ROWS) in kinds  # rows shipped first
        assert kinds[-1] == int(MessageKind.FAILURE)  # then truncation
        assert int(MessageKind.SUCCESS) not in kinds


class TestBackpressure:
    def test_slow_consumer_bounds_server_buffering(self):
        """With a deliberately tiny write high-water mark and a paced
        client, the server's write buffer stays bounded: the chunk pump
        stalls in drain() instead of buffering the whole result."""
        high_water = 8 * 1024
        engine = HyperQ(batch_budget=BatchBudget(batch_rows=64))
        _seed_table(engine, rows=4000)
        server = AioHyperQServer(engine, write_high_water=high_water)
        try:
            host, port = server.start()
            with TdClient(host, port, timeout=120.0) as client:
                stream = client.execute_stream("SEL N, PAD FROM BIGSTREAM")
                frame_sizes: list[int] = []

                def paced(frame_rows):
                    frame_sizes.append(len(frame_rows))
                    time.sleep(0.005)

                stream.on_rows = paced
                total = sum(1 for __ in stream)
            assert total == 4000
            assert len(frame_sizes) > 1
            # One frame may be mid-write when the mark trips; anything
            # beyond high-water + one frame means drain() wasn't honored.
            biggest_frame = 64 * (4 + 2 + len(PAD) + 4 + 2) + HEADER.size
            assert server.peak_write_buffer <= high_water + biggest_frame, \
                (f"peak write buffer {server.peak_write_buffer} "
                 f"not bounded by {high_water} + {biggest_frame}")
        finally:
            server.server_close()


class TestCancellation:
    @pytest.mark.parametrize("thread_cls", [ServerThread, AioServerThread],
                             ids=["threaded", "async"])
    def test_disconnect_mid_stream_releases_everything(self, thread_cls):
        """A client that vanishes mid-result releases the executor slot
        (no pull left in flight), closes the converter's stream, and frees
        the session — on both wire paths."""
        engine = HyperQ(batch_budget=BatchBudget(batch_rows=32))
        _seed_table(engine, rows=5000)
        store_baseline = ResultStore.open_count()
        thread = thread_cls(engine)
        try:
            host, port = thread.start()
            for __ in range(10):
                sock = socket.create_connection((host, port), timeout=30.0)
                sock.sendall(_logon())
                sock.settimeout(30.0)
                sock.recv(HEADER.size + 4)  # LOGON_RESPONSE
                sock.sendall(_query("SEL N, PAD FROM BIGSTREAM"))
                sock.recv(4096)  # first reply bytes are in flight...
                sock.close()     # ...and the client is gone.
            assert _settle(lambda: engine.open_session_count == 0), \
                f"{engine.open_session_count} sessions leaked"
            assert _settle(
                lambda: ResultStore.open_count() <= store_baseline), \
                "result stores leaked"
            server = thread.server
            if isinstance(server, AioHyperQServer):
                assert _settle(lambda: server.active_pulls == 0), \
                    f"{server.active_pulls} executor pulls leaked"
        finally:
            thread.stop()

    def test_session_survives_for_next_request_after_failure(self):
        """After a mid-stream FAILURE the async connection keeps serving:
        the stream was closed server-side, not the session."""
        engine = HyperQ(batch_budget=BatchBudget(batch_rows=16))
        _seed_table(engine, rows=200)
        with AioServerThread(engine) as (host, port):
            with TdClient(host, port) as client:
                from repro.errors import BackendError
                with pytest.raises(BackendError, match="division by zero"):
                    client.execute("SEL 100 / (N - 50) FROM BIGSTREAM")
                result = client.execute(
                    "SEL N FROM BIGSTREAM WHERE N = 7")
                assert result.rows == [(7,)]
