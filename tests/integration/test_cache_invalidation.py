"""Integration tests for the translation cache wired through the engine:
catalog-versioned invalidation, per-session volatile overlays, tracker
replay, cross-session sharing, and cache-off equivalence on TPC-H."""

import pytest

from repro.core.engine import HyperQ
from repro.core.tracker import FeatureTracker
from repro.workloads.tpch import queries as tpch_queries
from repro.workloads.tpch import schema as tpch_schema


@pytest.fixture
def engine():
    return HyperQ()


@pytest.fixture
def session(engine):
    s = engine.create_session()
    s.execute("CREATE MULTISET TABLE BASE "
              "(ID INTEGER, VAL DECIMAL(12,2), NAME VARCHAR(20), D DATE)")
    for i in range(1, 6):
        s.execute(f"INSERT INTO BASE VALUES "
                  f"({i}, {i}0.50, 'n{i}', DATE '2016-01-0{i}')")
    return s


def stats(engine):
    return engine.cache_stats()


class TestCacheHitBehaviour:
    def test_literal_lifting_shares_one_entry(self, engine, session):
        r7 = session.execute("SEL ID, VAL FROM BASE WHERE ID = 2")
        before = stats(engine)
        r42 = session.execute("SEL ID, VAL FROM BASE WHERE ID = 4")
        after = stats(engine)
        assert after.hits == before.hits + 1
        assert r7.rows == [(2, 20.5)]
        assert r42.rows == [(4, 40.5)]

    def test_whitespace_case_comments_share_entry(self, engine, session):
        session.execute("SELECT ID FROM BASE WHERE ID = 1")
        before = stats(engine)
        result = session.execute(
            "select  id\nFROM base -- comment\nWHERE id = 1")
        assert stats(engine).hits == before.hits + 1
        assert result.rows == [(1,)]

    def test_string_and_date_literals_splice(self, engine, session):
        session.execute("SELECT ID FROM BASE WHERE NAME = 'n1'")
        hit = session.execute("SELECT ID FROM BASE WHERE NAME = 'n3'")
        assert hit.rows == [(3,)]
        session.execute("SELECT ID FROM BASE WHERE D > DATE '2016-01-03'")
        hit = session.execute("SELECT ID FROM BASE WHERE D > DATE '2016-01-04'")
        assert sorted(hit.rows) == [(5,)]

    def test_ordinal_group_by_does_not_cross_contaminate(self, engine, session):
        by_one = session.execute(
            "SELECT ID, SUM(VAL) FROM BASE GROUP BY 1 ORDER BY 1")
        # Same shape, different ordinal target: must not reuse the template.
        by_col = session.execute(
            "SELECT ID, SUM(VAL) FROM BASE GROUP BY ID ORDER BY ID")
        assert by_one.rows == by_col.rows

    def test_parameterized_requests_cached_by_value(self, engine, session):
        first = session.execute("SELECT ID FROM BASE WHERE ID = ?", [2])
        before = stats(engine)
        same = session.execute("SELECT ID FROM BASE WHERE ID = ?", [2])
        assert stats(engine).hits == before.hits + 1
        other = session.execute("SELECT ID FROM BASE WHERE ID = ?", [3])
        assert first.rows == same.rows == [(2,)]
        assert other.rows == [(3,)]

    def test_shared_across_sessions(self, engine, session):
        session.execute("SELECT ID FROM BASE WHERE ID = 1")
        other = engine.create_session()
        before = stats(engine)
        result = other.execute("SELECT ID FROM BASE WHERE ID = 5")
        assert stats(engine).hits == before.hits + 1
        assert result.rows == [(5,)]

    def test_emulated_requests_bypass(self, engine, session):
        before = stats(engine)
        session.execute("HELP TABLE BASE")
        session.execute("HELP TABLE BASE")
        after = stats(engine)
        assert after.bypasses == before.bypasses + 2
        assert after.hits == before.hits


class TestInvalidation:
    def test_ddl_on_disjoint_table_leaves_entry(self, engine, session):
        """Per-table invalidation: DDL on a table the cached statement never
        touches must leave its entry serving hits."""
        session.execute("SELECT ID FROM BASE WHERE ID = 1")
        before = stats(engine)
        session.execute("CREATE MULTISET TABLE OTHER (X INTEGER)")
        assert stats(engine).invalidations == before.invalidations
        session.execute("SELECT ID FROM BASE WHERE ID = 1")
        assert stats(engine).hits == before.hits + 1

    def test_ddl_on_base_table_invalidates(self, engine, session):
        session.execute("SELECT ID FROM BASE WHERE ID = 1")
        before = stats(engine)
        session.execute("DROP TABLE BASE")
        assert stats(engine).invalidations > before.invalidations

    def test_replace_view_invalidates_and_refreshes(self, engine, session):
        session.execute("CREATE VIEW V AS SELECT ID FROM BASE")
        assert session.execute("SELECT * FROM V WHERE ID = 1").rows == [(1,)]
        before = stats(engine)
        session.execute("REPLACE VIEW V AS SELECT ID, VAL FROM BASE")
        assert stats(engine).invalidations > before.invalidations
        # The stale single-column translation is gone; the view's new shape
        # is what executes.
        assert session.execute("SELECT * FROM V WHERE ID = 1").rows \
            == [(1, 10.5)]

    def test_macro_redefinition_leaves_unrelated_entries(self, engine, session):
        """Redefining a macro bumps only the macro's name; cached
        translations on unrelated tables keep serving hits — and the new
        macro body is what executes."""
        session.execute("CREATE MACRO M (P1 INTEGER) AS "
                        "(SELECT ID FROM BASE WHERE ID = :P1;)")
        session.execute("SELECT ID FROM BASE WHERE ID = 2")
        before = stats(engine)
        session.execute("REPLACE MACRO M (P1 INTEGER) AS "
                        "(SELECT VAL FROM BASE WHERE ID = :P1;)")
        session.execute("SELECT ID FROM BASE WHERE ID = 2")
        assert stats(engine).hits == before.hits + 1
        assert session.execute("EXEC M (2)").rows == [(20.5,)]

    def test_volatile_create_invalidates_overlay_entries(self, engine, session):
        session.execute("CREATE VOLATILE TABLE VT (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        session.execute("INSERT INTO VT VALUES (5)")
        assert session.execute("SELECT K FROM VT WHERE K = 5").rows == [(5,)]
        before = stats(engine)
        session.execute("CREATE VOLATILE TABLE VT2 (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        assert stats(engine).invalidations > before.invalidations

    def test_volatile_drop_invalidates_overlay_entries(self, engine, session):
        session.execute("CREATE VOLATILE TABLE VT (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        session.execute("SELECT K FROM VT WHERE K = 1")
        before = stats(engine)
        session.execute("DROP TABLE VT")
        assert stats(engine).invalidations > before.invalidations

    def test_overlay_entries_are_private_to_their_session(self, engine, session):
        session.execute("CREATE VOLATILE TABLE PRIVATE_VT (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        session.execute("SELECT K FROM PRIVATE_VT WHERE K = 1")
        other = engine.create_session()
        # The other session cannot resolve the volatile name at all — and in
        # particular must not replay this session's cached translation.
        from repro.errors import HyperQError
        with pytest.raises(HyperQError):
            other.execute("SELECT K FROM PRIVATE_VT WHERE K = 1")


class TestTrackerReplay:
    def test_cached_requests_still_report_feature_incidence(self):
        engine = HyperQ(tracker=FeatureTracker())
        session = engine.create_session()
        session.execute("CREATE MULTISET TABLE BASE "
                        "(ID INTEGER, VAL DECIMAL(12,2))")
        query = ("SEL ID, VAL FROM BASE WHERE ID > 0 "
                 "QUALIFY RANK(VAL DESC) <= 3")
        session.execute(query)
        session.execute(query)
        session.execute(query)
        assert stats(engine).hits >= 2
        tracker = engine.tracker
        assert tracker.feature_query_counts["qualify"] == 3
        assert tracker.feature_query_counts["sel_shortcut"] == 3


class TestCacheDisabled:
    def test_cache_size_zero_disables(self):
        engine = HyperQ(cache_size=0)
        assert engine.cache is None
        assert engine.cache_stats() is None
        session = engine.create_session()
        session.execute("CREATE MULTISET TABLE T (A INTEGER)")
        session.execute("INSERT INTO T VALUES (1)")
        assert session.execute("SELECT A FROM T").rows == [(1,)]

    def test_disabled_and_enabled_agree_on_tpch(self):
        """Cache-off translation is the reference; cold and warm cache-on
        translations must be bit-identical to it for all 22 queries."""

        def fresh_session(cache_size):
            engine = HyperQ(cache_size=cache_size)
            session = engine.create_session()
            for name in tpch_schema.TABLE_NAMES:
                session.execute(tpch_schema.SCHEMA_DDL[name])
            return session

        reference = fresh_session(0)
        cached = fresh_session(32 * 1024 * 1024)
        for number, sql in tpch_queries.QUERIES.items():
            expected = reference.translate(sql).statements
            cold = cached.translate(sql).statements
            warm = cached.translate(sql).statements
            assert cold == expected, f"Q{number} cold translation diverged"
            assert warm == expected, f"Q{number} warm translation diverged"
