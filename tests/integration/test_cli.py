"""Integration tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestRunCommand:
    def test_runs_script_file(self, tmp_path, capsys):
        script = tmp_path / "demo.sql"
        script.write_text(
            "CREATE TABLE T (A INTEGER);"
            "INS T (1); INS T (2);"
            "SEL A FROM T ORDER BY A DESC;")
        assert main(["run", str(script)]) == 0
        out = capsys.readouterr().out
        assert "(2 rows)" in out
        data = out[out.index("A\n"):]
        assert data.index("2") < data.index("1")  # DESC ordering visible

    def test_error_reports_nonzero_exit(self, tmp_path, capsys):
        script = tmp_path / "bad.sql"
        script.write_text("SEL * FROM MISSING;")
        assert main(["run", str(script)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_dml_flag(self, tmp_path, capsys):
        script = tmp_path / "batch.sql"
        script.write_text(
            "CREATE TABLE T (A INTEGER);"
            + "".join(f"INSERT INTO T VALUES ({i});" for i in range(5))
            + "SEL COUNT(*) FROM T;")
        assert main(["run", str(script), "--batch-dml"]) == 0
        out = capsys.readouterr().out
        assert "(5 rows affected)" in out  # one merged insert

    def test_ansi_source_flag(self, tmp_path, capsys):
        script = tmp_path / "ansi.sql"
        script.write_text(
            "CREATE TABLE T (A INTEGER);"
            "INSERT INTO T VALUES (7);"
            "SELECT A FROM T;")
        assert main(["--source", "ansi", "run", str(script)]) == 0
        assert "(1 rows)" in capsys.readouterr().out


class TestTpchCommand:
    def test_prints_overhead_split(self, capsys):
        assert main(["tpch", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        assert "query translation" in out
        assert "total overhead" in out


class TestArgumentParsing:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_source_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--source", "cobol", "shell"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 10250
