"""Integration tests: translating the full TPC-H workload for every modeled
cloud target dialect.

The executing backend only accepts its own dialect, but translation to the
other four targets must always *produce* SQL (the paper's M-frontends ×
N-backends claim rests on serializers being independent plugins).
"""

import pytest

from repro.core.engine import HyperQ
from repro.transform.capabilities import cloud_profiles
from repro.workloads.tpch import queries
from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES

TARGETS = [profile.name for profile in cloud_profiles()] + ["hyperion"]


@pytest.fixture(scope="module")
def sessions():
    """One translation-only session per target, sharing the TPC-H schema."""
    out = {}
    for target in TARGETS:
        engine = HyperQ(target=target)
        session = engine.create_session()
        for table in TABLE_NAMES:
            # Register schema in the shadow catalog through the binder (the
            # backend DDL side effect is irrelevant for translation tests,
            # but executing is the honest path and works for every target's
            # serializer).
            session.translate(SCHEMA_DDL[table].strip())
            bound = session.binder.bind(
                session.parser.parse_statement(SCHEMA_DDL[table].strip()))
            engine.shadow.add_table(bound.schema)
        out[target] = session
    return out


class TestTPCHAcrossDialects:
    @pytest.mark.parametrize("target", TARGETS)
    @pytest.mark.parametrize("number", list(range(1, 23)))
    def test_query_translates(self, sessions, target, number):
        translation = sessions[target].translate(queries.query(number))
        assert translation.kind == "sql"
        (sql,) = translation.statements
        assert sql.startswith("SELECT") or sql.startswith("WITH")
        # No Teradata-isms may survive serialization for any target.
        upper = sql.upper()
        assert "QUALIFY" not in upper
        assert " SEL " not in f" {upper} "

    def test_dialects_actually_differ(self, sessions):
        texts = {target: sessions[target].translate(queries.query(1)).statements[0]
                 for target in TARGETS}
        # The T-SQL target spells TOP/date arithmetic differently from the
        # Postgres-flavoured one somewhere across the workload; check a
        # concrete known divergence on Q2 (TOP 100).
        q2 = {target: sessions[target].translate(queries.query(2)).statements[0]
              for target in TARGETS}
        assert "TOP 100" in q2["azuresynth"]
        assert q2["meadowshift"].endswith("LIMIT 100")

    @pytest.mark.parametrize("target", TARGETS)
    def test_date_arithmetic_respects_target_capability(self, sessions, target):
        translation = sessions[target].translate(
            "SEL L_ORDERKEY FROM LINEITEM WHERE L_SHIPDATE < "
            "DATE '1998-12-01' - 90")
        (sql,) = translation.statements
        if target == "meadowshift":  # Postgres family: date - int is native
            assert "DATEADD" not in sql
        else:
            assert "DATEADD" in sql
