"""Edge-case integration tests: corners of the pipeline that regressions
love — duplicate output names, set-operation ALL variants, subqueries in
projections, QUALIFY over partitioned aggregates, empty results."""

import pytest

from repro.core.engine import HyperQ


@pytest.fixture
def pairs(session):
    session.execute("CREATE TABLE P1 (X INTEGER)")
    session.execute("CREATE TABLE P2 (X INTEGER)")
    session.execute("INSERT INTO P1 VALUES (1), (2), (2), (3)")
    session.execute("INSERT INTO P2 VALUES (2), (2), (4)")
    return session


class TestSetOpAllVariants:
    def test_intersect_all_keeps_multiplicity(self, pairs):
        result = pairs.execute(
            "SEL X FROM P1 INTERSECT ALL SEL X FROM P2 ORDER BY 1")
        assert [row[0] for row in result.rows] == [2, 2]

    def test_except_all_subtracts_multiplicity(self, pairs):
        result = pairs.execute(
            "SEL X FROM P1 EXCEPT ALL SEL X FROM P2 ORDER BY 1")
        assert [row[0] for row in result.rows] == [1, 3]

    def test_minus_is_distinct_except(self, pairs):
        result = pairs.execute("SEL X FROM P1 MINUS SEL X FROM P2 ORDER BY 1")
        assert [row[0] for row in result.rows] == [1, 3]

    def test_three_way_chain(self, pairs):
        result = pairs.execute(
            "SEL X FROM P1 UNION SEL X FROM P2 UNION ALL SEL X FROM P2")
        # distinct(P1 ∪ P2) = {1,2,3,4} then + 3 more rows.
        assert result.rowcount == 7


class TestDuplicateNames:
    def test_same_column_name_from_two_tables(self, pairs):
        result = pairs.execute(
            "SEL A.X, B.X FROM P1 A, P2 B WHERE A.X = B.X AND A.X = 2")
        assert result.rowcount == 4  # 2 dup rows x 2 dup rows
        assert result.columns[0] != result.columns[1]  # uniquified on output

    def test_duplicate_names_through_derived_table(self, pairs):
        result = pairs.execute(
            "SEL COUNT(*) FROM "
            "(SEL A.X, B.X FROM P1 A, P2 B WHERE A.X = B.X) AS D (XA, XB)")
        assert result.rows == [(4,)]


class TestSubqueriesInProjections:
    def test_scalar_subquery_in_select_list(self, pairs):
        result = pairs.execute(
            "SEL X, (SEL COUNT(*) FROM P2 WHERE P2.X = P1.X) AS MATCHES "
            "FROM P1 ORDER BY X, MATCHES")
        by_x = {}
        for x, matches in result.rows:
            by_x[x] = matches
        assert by_x == {1: 0, 2: 2, 3: 0}

    def test_case_wrapping_exists(self, pairs):
        result = pairs.execute(
            "SEL X, CASE WHEN EXISTS (SEL 1 FROM P2 WHERE P2.X = P1.X) "
            "THEN 'hit' ELSE 'miss' END FROM P1 ORDER BY 1, 2")
        verdicts = {row[0]: row[1] for row in result.rows}
        assert verdicts == {1: "miss", 2: "hit", 3: "miss"}


class TestQualifyCorners:
    @pytest.fixture
    def teams(self, session):
        session.execute("CREATE TABLE TEAMS (CITY VARCHAR(5), PTS INTEGER)")
        session.execute("INSERT INTO TEAMS VALUES ('nyc', 10), ('nyc', 30), "
                        "('sf', 20), ('sf', 5), ('sf', 20)")
        return session

    def test_qualify_partitioned_rank(self, teams):
        result = teams.execute(
            "SEL CITY, PTS FROM TEAMS "
            "QUALIFY ROW_NUMBER() OVER (PARTITION BY CITY ORDER BY PTS DESC) = 1 "
            "ORDER BY CITY")
        assert result.rows == [("nyc", 30), ("sf", 20)]

    def test_qualify_over_grouped_aggregate(self, teams):
        result = teams.execute(
            "SEL CITY, SUM(PTS) AS TOTAL FROM TEAMS GROUP BY CITY "
            "QUALIFY RANK(TOTAL DESC) = 1")
        assert result.rows == [("sf", 45)]

    def test_qualify_and_where_combined(self, teams):
        result = teams.execute(
            "SEL CITY, PTS FROM TEAMS WHERE PTS > 5 "
            "QUALIFY RANK(PTS DESC) <= 2 ORDER BY PTS DESC, CITY")
        # after WHERE: 10, 30, 20, 20 -> top-2 ranks with ties: 30, 20, 20.
        assert result.rows == [("nyc", 30), ("sf", 20), ("sf", 20)]


class TestEmptyResults:
    def test_empty_rows_through_full_pipeline(self, pairs):
        result = pairs.execute("SEL X FROM P1 WHERE X > 100")
        assert result.kind == "rows"
        assert result.rowcount == 0
        assert result.rows == []
        assert result.columns == ["X"]

    def test_aggregate_over_empty_through_pipeline(self, pairs):
        result = pairs.execute(
            "SEL COUNT(*), SUM(X), MIN(X) FROM P1 WHERE X > 100")
        assert result.rows == [(0, None, None)]

    def test_empty_qualify(self, pairs):
        result = pairs.execute(
            "SEL X FROM P1 WHERE X > 100 QUALIFY RANK(X DESC) <= 1")
        assert result.rows == []


class TestChainedEmulations:
    def test_macro_calling_recursive_query(self, session):
        session.execute("CREATE TABLE EDGES (S INTEGER, D INTEGER)")
        session.execute("INSERT INTO EDGES VALUES (1, 2), (2, 3), (3, 4)")
        session.execute("""
            CREATE MACRO REACH (START INTEGER) AS (
                WITH RECURSIVE R (N) AS (
                    SELECT D FROM EDGES WHERE S = :START
                    UNION ALL
                    SELECT EDGES.D FROM EDGES, R WHERE EDGES.S = R.N)
                SELECT N FROM R ORDER BY N;)
        """)
        result = session.execute("EXEC REACH (1)")
        assert [row[0] for row in result.rows] == [2, 3, 4]

    def test_procedure_using_volatile_table(self, session):
        session.execute("CREATE TABLE SRC_T (V INTEGER)")
        session.execute("INSERT INTO SRC_T VALUES (5), (10)")
        session.execute("""
            CREATE PROCEDURE SNAPSHOT ()
            BEGIN
                CREATE VOLATILE TABLE SNAP (V INTEGER) ON COMMIT PRESERVE ROWS;
                INSERT INTO SNAP SEL V FROM SRC_T;
            END
        """)
        session.execute("CALL SNAPSHOT()")
        assert session.execute("SEL COUNT(*) FROM SNAP").rows == [(2,)]
