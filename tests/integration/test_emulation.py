"""Integration tests for every emulation path of Section 6 / Table 2."""

import datetime

import pytest

from repro.errors import EmulationError, HyperQError


class TestMacros:
    def test_create_exec_with_positional_args(self, sales_session):
        sales_session.execute(
            "CREATE MACRO TOP_SALES (LIM INTEGER) AS "
            "(SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= :LIM "
            "ORDER BY PRODUCT_NAME;)")
        result = sales_session.execute("EXEC TOP_SALES (2)")
        assert [row[0] for row in result.rows] == ["alpha", "delta", "gamma"]

    def test_exec_with_named_args(self, sales_session):
        sales_session.execute(
            "CREATE MACRO BY_STORE (S INTEGER) AS "
            "(SEL PRODUCT_NAME FROM SALES WHERE STORE = :S ORDER BY 1;)")
        result = sales_session.execute("EXEC BY_STORE (S = 2)")
        assert [row[0] for row in result.rows] == ["delta", "gamma"]

    def test_multi_statement_macro_returns_last_result_set(self, sales_session):
        sales_session.execute(
            "CREATE MACRO REFRESH (S INTEGER) AS ("
            "DEL FROM SALES_HISTORY WHERE GROSS < 0; "
            "SEL COUNT(*) FROM SALES WHERE STORE = :S;)")
        result = sales_session.execute("EXEC REFRESH (1)")
        assert result.rows == [(2,)]

    def test_missing_argument_rejected(self, sales_session):
        sales_session.execute(
            "CREATE MACRO NEEDS (X INTEGER) AS (SEL :X FROM SALES;)")
        with pytest.raises(EmulationError):
            sales_session.execute("EXEC NEEDS")

    def test_drop_macro(self, sales_session):
        sales_session.execute("CREATE MACRO M1 AS (SEL 1 FROM SALES;)")
        sales_session.execute("DROP MACRO M1")
        with pytest.raises(HyperQError):
            sales_session.execute("EXEC M1")

    def test_replace_macro(self, sales_session):
        sales_session.execute("CREATE MACRO M2 AS (SEL COUNT(*) FROM SALES;)")
        sales_session.execute(
            "REPLACE MACRO M2 AS (SEL COUNT(*) + 100 FROM SALES;)")
        assert sales_session.execute("EXEC M2").rows == [(105,)]


class TestStoredProcedures:
    def test_control_flow_and_select_into(self, sales_session):
        sales_session.execute("""
            CREATE PROCEDURE RERATE (IN P_STORE INTEGER, IN P_LIMIT FLOAT)
            BEGIN
                DECLARE V_TOTAL FLOAT;
                SELECT SUM(AMOUNT) INTO :V_TOTAL FROM SALES
                    WHERE STORE = :P_STORE;
                IF V_TOTAL > P_LIMIT THEN
                    UPDATE SALES SET AMOUNT = AMOUNT * 0.9
                        WHERE STORE = :P_STORE;
                END IF;
            END
        """)
        sales_session.execute("CALL RERATE(1, 100.0)")  # total 150 > 100
        result = sales_session.execute(
            "SEL SUM(AMOUNT) FROM SALES WHERE STORE = 1")
        assert result.rows[0][0] == pytest.approx(135.0)

    def test_branch_not_taken(self, sales_session):
        sales_session.execute("""
            CREATE PROCEDURE NOOP_IF_SMALL (IN P_STORE INTEGER)
            BEGIN
                DECLARE V_TOTAL FLOAT;
                SELECT SUM(AMOUNT) INTO :V_TOTAL FROM SALES
                    WHERE STORE = :P_STORE;
                IF V_TOTAL > 10000 THEN
                    DELETE FROM SALES WHERE STORE = :P_STORE;
                END IF;
            END
        """)
        sales_session.execute("CALL NOOP_IF_SMALL(1)")
        assert sales_session.execute(
            "SEL COUNT(*) FROM SALES WHERE STORE = 1").rows == [(2,)]

    def test_while_loop(self, session):
        session.execute("CREATE TABLE LOG_T (I INTEGER)")
        session.execute("""
            CREATE PROCEDURE FILL (IN N INTEGER)
            BEGIN
                DECLARE I INTEGER DEFAULT 0;
                WHILE I < N DO
                    SET I = I + 1;
                    INSERT INTO LOG_T VALUES (:I);
                END WHILE;
            END
        """)
        session.execute("CALL FILL(4)")
        assert session.execute("SEL COUNT(*), MAX(I) FROM LOG_T").rows == [(4, 4)]

    def test_out_parameter_returned(self, sales_session):
        sales_session.execute("""
            CREATE PROCEDURE GET_TOTAL (IN P_STORE INTEGER, OUT P_TOTAL FLOAT)
            BEGIN
                SELECT SUM(AMOUNT) INTO :P_TOTAL FROM SALES
                    WHERE STORE = :P_STORE;
            END
        """)
        result = sales_session.execute("CALL GET_TOTAL(2, 0.0)")
        assert result.columns == ["P_TOTAL"]
        assert result.rows[0][0] == pytest.approx(160.0)

    def test_select_into_requires_single_row(self, sales_session):
        sales_session.execute("""
            CREATE PROCEDURE BAD ()
            BEGIN
                DECLARE V FLOAT;
                SELECT AMOUNT INTO :V FROM SALES;
            END
        """)
        with pytest.raises(EmulationError):
            sales_session.execute("CALL BAD()")


class TestMerge:
    @pytest.fixture
    def merged(self, sales_session):
        sales_session.execute(
            "CREATE TABLE DELTAS (PRODUCT_NAME VARCHAR(40), AMOUNT DECIMAL(12,2))")
        sales_session.execute(
            "INSERT INTO DELTAS VALUES ('alpha', 111.00), ('newone', 9.99)")
        return sales_session

    def test_update_and_insert_branches(self, merged):
        result = merged.execute("""
            MERGE INTO SALES USING DELTAS D
            ON SALES.PRODUCT_NAME = D.PRODUCT_NAME
            WHEN MATCHED THEN UPDATE SET AMOUNT = D.AMOUNT
            WHEN NOT MATCHED THEN INSERT (PRODUCT_NAME, AMOUNT)
                VALUES (D.PRODUCT_NAME, D.AMOUNT)
        """)
        assert result.rowcount == 2
        assert merged.execute(
            "SEL AMOUNT FROM SALES WHERE PRODUCT_NAME = 'alpha'").rows == [(111.0,)]
        assert merged.execute(
            "SEL AMOUNT FROM SALES WHERE PRODUCT_NAME = 'newone'").rows == [(9.99,)]

    def test_update_only_merge(self, merged):
        result = merged.execute("""
            MERGE INTO SALES USING DELTAS D
            ON SALES.PRODUCT_NAME = D.PRODUCT_NAME
            WHEN MATCHED THEN UPDATE SET AMOUNT = 0.00
        """)
        assert result.rowcount == 1
        assert merged.execute(
            "SEL COUNT(*) FROM SALES WHERE PRODUCT_NAME = 'newone'").rows == [(0,)]

    def test_merge_is_emulated_as_two_statements(self, merged, tracker):
        result = merged.execute("""
            MERGE INTO SALES USING DELTAS D
            ON SALES.PRODUCT_NAME = D.PRODUCT_NAME
            WHEN MATCHED THEN UPDATE SET AMOUNT = D.AMOUNT
            WHEN NOT MATCHED THEN INSERT (PRODUCT_NAME, AMOUNT)
                VALUES (D.PRODUCT_NAME, D.AMOUNT)
        """)
        assert len(result.target_sql) == 2
        assert result.target_sql[0].startswith("UPDATE")
        assert result.target_sql[1].startswith("INSERT")
        assert "merge_statement" in tracker.features_seen()


class TestDMLOnViews:
    @pytest.fixture
    def viewed(self, sales_session):
        sales_session.execute(
            "CREATE VIEW PRICY AS SEL PRODUCT_NAME AS PNAME, AMOUNT, STORE "
            "FROM SALES WHERE AMOUNT > 60")
        return sales_session

    def test_select_from_view(self, viewed):
        result = viewed.execute("SEL PNAME FROM PRICY ORDER BY 1")
        assert [row[0] for row in result.rows] == ["alpha", "delta", "gamma"]

    def test_update_through_view_respects_view_predicate(self, viewed):
        count = viewed.execute(
            "UPD PRICY SET AMOUNT = AMOUNT + 1 WHERE STORE = 1").rowcount
        # Only alpha (store 1, amount > 60) is visible through the view.
        assert count == 1
        assert viewed.execute(
            "SEL AMOUNT FROM SALES WHERE PRODUCT_NAME = 'beta'").rows == [(50.0,)]

    def test_delete_through_view(self, viewed):
        count = viewed.execute("DEL FROM PRICY WHERE PNAME = 'gamma'").rowcount
        assert count == 1
        assert viewed.execute("SEL COUNT(*) FROM SALES").rows == [(4,)]

    def test_insert_through_view_maps_columns(self, viewed):
        viewed.execute("INSERT INTO PRICY (PNAME, AMOUNT, STORE) "
                       "VALUES ('epsilon', 75.00, 9)")
        assert viewed.execute(
            "SEL STORE FROM SALES WHERE PRODUCT_NAME = 'epsilon'").rows == [(9,)]

    def test_complex_view_rejected(self, sales_session):
        sales_session.execute(
            "CREATE VIEW AGGV AS SEL STORE, SUM(AMOUNT) AS TOTAL FROM SALES "
            "GROUP BY STORE")
        with pytest.raises(EmulationError):
            sales_session.execute("UPD AGGV SET TOTAL = 0")


class TestSetTables:
    def test_duplicates_silently_dropped(self, session):
        session.execute("CREATE SET TABLE UNIQ (A INTEGER, B VARCHAR(5))")
        first = session.execute(
            "INSERT INTO UNIQ VALUES (1, 'x'), (1, 'x'), (2, 'y')")
        assert first.rowcount == 2
        second = session.execute("INSERT INTO UNIQ VALUES (1, 'x'), (3, 'z')")
        assert second.rowcount == 1
        assert session.execute("SEL COUNT(*) FROM UNIQ").rows == [(3,)]

    def test_null_safe_duplicate_detection(self, session):
        session.execute("CREATE SET TABLE UNIQ2 (A INTEGER, B VARCHAR(5))")
        session.execute("INSERT INTO UNIQ2 VALUES (1, NULL)")
        result = session.execute("INSERT INTO UNIQ2 VALUES (1, NULL)")
        assert result.rowcount == 0

    def test_multiset_table_keeps_duplicates(self, session):
        session.execute("CREATE MULTISET TABLE MULTI (A INTEGER)")
        session.execute("INSERT INTO MULTI VALUES (1), (1)")
        assert session.execute("SEL COUNT(*) FROM MULTI").rows == [(2,)]


class TestHelpAndShow:
    def test_help_session_returns_parameters(self, session):
        result = session.execute("HELP SESSION")
        params = dict(result.rows)
        assert params["USER"] == "HYPERQ"
        assert "TARGET" in params

    def test_set_session_visible_in_help(self, session):
        session.execute("SET SESSION COLLATION = 'ASCII'")
        params = dict(session.execute("HELP SESSION").rows)
        assert params["COLLATION"] == "ASCII"

    def test_help_table_lists_columns(self, sales_session):
        result = sales_session.execute("HELP TABLE SALES")
        names = [row[0] for row in result.rows]
        assert names == ["PRODUCT_NAME", "STORE", "AMOUNT", "SALES_DATE"]

    def test_help_column(self, sales_session):
        result = sales_session.execute("HELP COLUMN SALES.AMOUNT")
        assert result.rows[0][0] == "AMOUNT"

    def test_show_table_reconstructs_teradata_ddl(self, session):
        session.execute("CREATE SET TABLE SHOWME (A INTEGER NOT NULL) "
                        "PRIMARY INDEX (A)")
        (ddl,) = session.execute("SHOW TABLE SHOWME").rows[0]
        assert ddl.startswith("CREATE SET TABLE SHOWME")
        assert "PRIMARY INDEX (A)" in ddl

    def test_show_view_returns_source_sql(self, sales_session):
        sales_session.execute("CREATE VIEW SV AS SEL STORE FROM SALES")
        (ddl,) = sales_session.execute("SHOW VIEW SV").rows[0]
        assert "CREATE VIEW SV" in ddl

    def test_show_macro(self, session):
        session.execute("CREATE MACRO SM (X INTEGER) AS (SEL :X;)")
        (ddl,) = session.execute("SHOW MACRO SM").rows[0]
        assert ddl.startswith("CREATE MACRO SM")


class TestVolatileTables:
    def test_session_scoped(self, engine):
        one = engine.create_session()
        two = engine.create_session()
        one.execute("CREATE VOLATILE TABLE VT (X INTEGER) "
                    "ON COMMIT PRESERVE ROWS")
        one.execute("INSERT INTO VT VALUES (1)")
        assert one.execute("SEL COUNT(*) FROM VT").rows == [(1,)]
        with pytest.raises(HyperQError):
            two.execute("SEL * FROM VT")

    def test_drop_volatile(self, session):
        session.execute("CREATE VOLATILE TABLE VT2 (X INTEGER)")
        session.execute("DROP TABLE VT2")
        with pytest.raises(HyperQError):
            session.execute("SEL * FROM VT2")


class TestColumnProperties:
    def test_nonconstant_default_filled_in_mid_tier(self, session, tracker):
        session.execute("CREATE TABLE AUDIT_T (ID INTEGER, "
                        "CREATED DATE DEFAULT CURRENT_DATE)")
        session.execute("INSERT INTO AUDIT_T (ID) VALUES (1)")
        (created,) = session.execute(
            "SEL CREATED FROM AUDIT_T WHERE ID = 1").rows[0]
        assert isinstance(created, datetime.date)
        assert "column_properties" in tracker.features_seen()

    def test_case_insensitive_column_comparison(self, session):
        session.execute("CREATE TABLE NAMES_T "
                        "(N VARCHAR(20) NOT CASESPECIFIC)")
        session.execute("INSERT INTO NAMES_T VALUES ('Alice')")
        result = session.execute("SEL COUNT(*) FROM NAMES_T WHERE N = 'ALICE'")
        assert result.rows == [(1,)]

    def test_period_column_split_for_target(self, session):
        session.execute("CREATE TABLE SPANS (ID INTEGER, VALIDITY PERIOD(DATE))")
        result = session.execute("HELP TABLE SPANS")
        names = [row[0] for row in result.rows]
        assert names == ["ID", "VALIDITY_BEGIN", "VALIDITY_END"]

    def test_collect_statistics_is_absorbed(self, sales_session):
        result = sales_session.execute("COLLECT STATISTICS ON SALES COLUMN (STORE)")
        assert result.kind == "ok"
        assert result.target_sql == []
