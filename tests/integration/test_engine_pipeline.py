"""Integration tests for the Hyper-Q engine pipeline as a whole: data path
fidelity, timing instrumentation, multi-target translation, transactions."""

import datetime

import pytest

from repro import virtualize
from repro.core.engine import HyperQ
from repro.protocol.encoding import CODE_DATE
from repro.transform.capabilities import HYPERION_PLUS, cloud_profiles
from repro.workloads.features import FEATURES_BY_NAME


class TestDataPath:
    def test_results_flow_through_binary_conversion(self, sales_session):
        result = sales_session.execute("SEL PRODUCT_NAME, SALES_DATE "
                                       "FROM SALES WHERE STORE = 1 ORDER BY 1")
        # Metas exist (the converted wire representation) and dates use the
        # Teradata internal encoding on the wire.
        date_meta = next(m for m in result.metas if m.name == "SALES_DATE")
        assert date_meta.code == CODE_DATE
        assert result.rows[0] == ("alpha", datetime.date(2015, 2, 3))
        result.close()

    def test_rowcount_matches_converted_payload(self, sales_session):
        result = sales_session.execute("SEL * FROM SALES")
        assert result.rowcount == 5
        assert len(result.rows) == 5

    def test_timing_split_populated(self, sales_session):
        result = sales_session.execute("SEL COUNT(*) FROM SALES")
        timing = result.timing
        assert timing.translation > 0
        assert timing.execution > 0
        assert timing.result_conversion > 0

    def test_target_sql_recorded(self, sales_session):
        result = sales_session.execute("SEL STORE FROM SALES")
        assert len(result.target_sql) == 1
        assert result.target_sql[0].startswith("SELECT")


class TestTranslateOnly:
    def test_translate_does_not_execute(self, sales_session):
        before = sales_session.execute("SEL COUNT(*) FROM SALES").rows
        sales_session.translate("DEL FROM SALES")
        after = sales_session.execute("SEL COUNT(*) FROM SALES").rows
        assert before == after

    def test_translate_reports_emulated_feature(self, sales_session):
        sales_session.execute("CREATE MACRO TM AS (SEL 1 FROM SALES;)")
        translation = sales_session.translate("EXEC TM")
        assert translation.kind == "emulated"
        assert translation.emulated_feature == "macro"

    def test_translate_noop_statements(self, sales_session):
        assert sales_session.translate(
            "COLLECT STATISTICS ON SALES").kind == "ok"


class TestMultiTargetTranslation:
    DDL = ("CREATE MULTISET TABLE T_MT (A INTEGER, B VARCHAR(10), D DATE)")

    @pytest.mark.parametrize("profile", [p.name for p in cloud_profiles()])
    def test_same_query_translates_for_every_cloud_profile(self, profile):
        engine = HyperQ(target=profile)
        session = engine.create_session()
        from repro.xtra import types as t
        from repro.xtra.schema import ColumnSchema, TableSchema

        engine.shadow.add_table(TableSchema("T_MT", [
            ColumnSchema("A", t.INTEGER),
            ColumnSchema("B", t.varchar(10)),
            ColumnSchema("D", t.DATE),
        ]))
        translation = session.translate(
            "SEL A, ZEROIFNULL(A) FROM T_MT WHERE D > 1140101 ORDER BY 1")
        assert translation.kind == "sql"
        (sql,) = translation.statements
        assert "SELECT" in sql
        assert "1140101" in sql  # comparison value survives

    def test_merge_native_on_capable_target(self):
        engine = HyperQ(target=HYPERION_PLUS)
        session = engine.create_session()
        session.execute("CREATE TABLE TGT (ID INTEGER, V INTEGER)")
        session.execute("CREATE TABLE SRC (ID INTEGER, V INTEGER)")
        session.execute("INSERT INTO TGT VALUES (1, 10)")
        session.execute("INSERT INTO SRC VALUES (1, 99), (2, 42)")
        result = session.execute(
            "MERGE INTO TGT USING SRC ON TGT.ID = SRC.ID "
            "WHEN MATCHED THEN UPDATE SET V = SRC.V "
            "WHEN NOT MATCHED THEN INSERT (ID, V) VALUES (SRC.ID, SRC.V)")
        # One target statement: native MERGE, not UPDATE+INSERT emulation.
        assert len(result.target_sql) == 1
        assert result.target_sql[0].startswith("MERGE INTO")
        assert session.execute("SEL V FROM TGT WHERE ID = 1").rows == [(99,)]

    def test_recursive_native_on_capable_target(self, tracker):
        engine = HyperQ(target=HYPERION_PLUS, tracker=tracker)
        session = engine.create_session()
        session.execute("CREATE TABLE EDGE (SRC INTEGER, DST INTEGER)")
        session.execute("INSERT INTO EDGE VALUES (1, 2), (2, 3)")
        result = session.execute(
            "WITH RECURSIVE R (N) AS (SELECT SRC FROM EDGE WHERE SRC = 1 "
            "UNION ALL SELECT DST FROM EDGE, R WHERE EDGE.SRC = R.N) "
            "SELECT N FROM R ORDER BY N")
        assert [row[0] for row in result.rows] == [1, 2, 3]
        assert len(result.target_sql) == 1  # served natively in one request
        assert "recursive_query" not in tracker.features_seen()


class TestTransactions:
    def test_bt_et_flow(self, sales_session):
        assert sales_session.execute("BT").kind == "ok"
        sales_session.execute("DEL FROM SALES WHERE STORE = 3")
        assert sales_session.execute("ET").kind == "ok"
        assert sales_session.execute("SEL COUNT(*) FROM SALES").rows == [(4,)]


class TestTrackedStageConsistency:
    """Table 2: each feature's observed pipeline stage matches the component
    the registry declares."""

    _STAGE_OF_COMPONENT = {
        "Parser": "parser",
        "Binder": "binder",
        "Transformer": "transformer",
        "Serializer": "serializer",
        "Emulator": "emulator",
    }

    PROBES = {
        "sel_shortcut": "SEL 1 FROM SALES",
        "ne_operator": "SEL 1 FROM SALES WHERE STORE ^= 1",
        "mod_operator": "SEL STORE MOD 2 FROM SALES",
        "zeroifnull": "SEL ZEROIFNULL(AMOUNT) FROM SALES",
        "chars_function": "SEL CHARS(PRODUCT_NAME) FROM SALES",
        "index_function": "SEL INDEX(PRODUCT_NAME, 'a') FROM SALES",
        "qualify": "SEL STORE FROM SALES QUALIFY RANK(AMOUNT DESC) <= 1",
        "named_expression": "SEL AMOUNT AS X, X + 1 FROM SALES",
        "ordinal_group_by": "SEL STORE, COUNT(*) FROM SALES GROUP BY 1",
        "date_arithmetic": "SEL SALES_DATE + 1 FROM SALES",
        "date_int_comparison": "SEL 1 FROM SALES WHERE SALES_DATE > 1140101",
        "vector_subquery": ("SEL 1 FROM SALES WHERE (AMOUNT, AMOUNT) > "
                            "ANY (SEL GROSS, NET FROM SALES_HISTORY)"),
        "null_ordering": "SEL STORE FROM SALES ORDER BY STORE",
        "grouping_extensions": ("SEL STORE, COUNT(*) FROM SALES "
                                "GROUP BY ROLLUP (STORE)"),
        "help_command": "HELP SESSION",
    }

    @pytest.mark.parametrize("feature", sorted(PROBES))
    def test_observed_stage_matches_registry(self, sales_session, tracker,
                                             feature):
        sales_session.execute(self.PROBES[feature])
        assert feature in tracker.observed_stages, feature
        declared = FEATURES_BY_NAME[feature].component.value
        assert tracker.observed_stages[feature] == \
            self._STAGE_OF_COMPONENT[declared]


class TestSpillThroughFullPipeline:
    """Section 4.6: when the buffered result exceeds the memory budget, the
    Result Converter spills to disk and replays for the wire."""

    def test_large_result_spills_and_replays(self, tmp_path):
        engine = HyperQ(converter_max_memory=2048, spill_dir=str(tmp_path))
        session = engine.create_session()
        session.execute("CREATE TABLE BIGR (N INTEGER, PAD VARCHAR(80))")
        values = ", ".join(f"({i}, '{'y' * 70}')" for i in range(1500))
        session.execute(f"INSERT INTO BIGR VALUES {values}")
        result = session.execute("SEL N FROM BIGR ORDER BY N")
        assert result.converted is not None
        assert result.converted.store is not None
        assert result.converted.store.spilled
        rows = result.rows
        assert len(rows) == 1500
        assert rows[0] == (0,) and rows[-1] == (1499,)
        result.close()
        assert not any(tmp_path.iterdir())  # spill file cleaned up

    def test_small_results_stay_in_memory(self, tmp_path):
        engine = HyperQ(converter_max_memory=1024 * 1024,
                        spill_dir=str(tmp_path))
        session = engine.create_session()
        session.execute("CREATE TABLE SMALLR (N INTEGER)")
        session.execute("INSERT INTO SMALLR VALUES (1), (2)")
        result = session.execute("SEL N FROM SMALLR")
        assert result.converted.store is not None
        assert not result.converted.store.spilled
        result.close()


class TestViewsOnViews:
    def test_nested_view_expansion(self, sales_session):
        sales_session.execute(
            "CREATE VIEW V_BASE AS SEL PRODUCT_NAME, STORE, AMOUNT "
            "FROM SALES WHERE AMOUNT > 30")
        sales_session.execute(
            "CREATE VIEW V_TOP AS SEL PRODUCT_NAME FROM V_BASE "
            "WHERE STORE = 1")
        result = sales_session.execute("SEL * FROM V_TOP ORDER BY 1")
        assert [row[0] for row in result.rows] == ["alpha", "beta"]
