"""Integration tests for the extension features: DML batching (Section 4.3's
performance transformation) and scale-out load balancing (Appendix B.3
future work)."""

import pytest

from repro.errors import HyperQError
from repro.core.engine import HyperQ
from repro.core.scaleout import ScaledHyperQ, round_robin
from repro.transform.rules.dml_batching import batch_statements
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t


class TestDMLBatchingRule:
    def insert(self, table, value, columns=None):
        values = r.Values([[s.const_int(value)]], ["A"], [t.INTEGER])
        return r.Insert(table, columns, values)

    def test_contiguous_inserts_merge(self):
        statements = [self.insert("T", 1), self.insert("T", 2),
                      self.insert("T", 3)]
        merged = batch_statements(statements)
        assert len(merged) == 1
        assert len(merged[0].source.rows) == 3

    def test_different_tables_do_not_merge(self):
        statements = [self.insert("T", 1), self.insert("U", 2)]
        assert len(batch_statements(statements)) == 2

    def test_different_column_lists_do_not_merge(self):
        statements = [self.insert("T", 1, ["A"]), self.insert("T", 2, ["B"])]
        assert len(batch_statements(statements)) == 2

    def test_intervening_statement_is_a_barrier(self):
        barrier = r.Query(r.Values([[]], [], []))
        statements = [self.insert("T", 1), barrier, self.insert("T", 2)]
        merged = batch_statements(statements)
        assert len(merged) == 3

    def test_batch_size_cap(self):
        statements = [self.insert("T", i) for i in range(5)]
        merged = batch_statements(statements, max_rows_per_batch=2)
        assert [len(m.source.rows) for m in merged] == [2, 2, 1]


class TestDMLBatchingEndToEnd:
    def test_script_batching_reduces_target_statements(self):
        engine = HyperQ(dml_batching=True)
        session = engine.create_session()
        session.execute("CREATE TABLE BJT (A INTEGER, B VARCHAR(5))")
        results = session.execute_script(
            "INSERT INTO BJT VALUES (1, 'a');"
            "INSERT INTO BJT VALUES (2, 'b');"
            "INSERT INTO BJT VALUES (3, 'c');"
            "SEL COUNT(*) FROM BJT;"
            "INSERT INTO BJT VALUES (4, 'd');")
        kinds = [(result.kind, result.rowcount) for result in results]
        assert kinds == [("count", 3), ("rows", 1), ("count", 1)]
        # The mid-script SELECT observes the already-flushed batch.
        assert results[1].rows == [(3,)]
        assert session.execute("SEL COUNT(*) FROM BJT").rows == [(4,)]

    def test_batching_disabled_by_default(self):
        engine = HyperQ()
        session = engine.create_session()
        session.execute("CREATE TABLE BT2 (A INTEGER)")
        results = session.execute_script(
            "INSERT INTO BT2 VALUES (1); INSERT INTO BT2 VALUES (2);")
        assert len(results) == 2

    def test_set_table_inserts_never_batch(self):
        # SET-table inserts need the dedup emulation per statement.
        engine = HyperQ(dml_batching=True)
        session = engine.create_session()
        session.execute("CREATE SET TABLE BT3 (A INTEGER)")
        results = session.execute_script(
            "INSERT INTO BT3 VALUES (1); INSERT INTO BT3 VALUES (1);")
        assert [result.rowcount for result in results] == [1, 0]


class TestScaleOut:
    @pytest.fixture
    def fleet(self):
        fleet = ScaledHyperQ(replicas=3)
        session = fleet.create_session()
        session.execute("CREATE TABLE EV (ID INTEGER, V INTEGER)")
        session.execute("INSERT INTO EV VALUES (1, 10), (2, 20), (3, 30)")
        return fleet, session

    def test_reads_balance_round_robin(self, fleet):
        fleet_obj, session = fleet
        baseline = list(fleet_obj.reads_per_replica)
        for __ in range(6):
            session.execute("SEL COUNT(*) FROM EV")
        growth = [after - before for after, before
                  in zip(fleet_obj.reads_per_replica, baseline)]
        assert growth == [2, 2, 2]

    def test_writes_reach_every_replica(self, fleet):
        fleet_obj, session = fleet
        session.execute("UPD EV SET V = V + 1 WHERE ID = 1")
        for engine in fleet_obj.engines:
            check = engine.create_session().execute(
                "SEL V FROM EV WHERE ID = 1")
            assert check.rows == [(11,)]

    def test_read_results_identical_across_replicas(self, fleet):
        fleet_obj, session = fleet
        answers = {tuple(session.execute(
            "SEL SUM(V) FROM EV").rows[0]) for __ in range(3)}
        assert len(answers) == 1

    def test_session_scoped_objects_pin_to_one_replica(self, fleet):
        __, session = fleet
        session.execute("CREATE VOLATILE TABLE SCRATCH (X INTEGER)")
        session.execute("INSERT INTO SCRATCH VALUES (7)")
        # Reads after pinning keep hitting the replica holding SCRATCH.
        for __ in range(4):
            assert session.execute("SEL X FROM SCRATCH").rows == [(7,)]

    def test_failover_to_healthy_replica(self, fleet):
        fleet_obj, session = fleet
        # Break replica 0 by dropping the table behind Hyper-Q's back.
        fleet_obj.engines[0].backend.catalog.drop_table("EV")
        fleet_obj.engines[0].shadow.drop_table("EV")
        for __ in range(3):
            result = session.execute("SEL COUNT(*) FROM EV")
            assert result.rows == [(3,)]

    def test_divergence_detected(self, fleet):
        fleet_obj, session = fleet
        # Sneak an extra row into one replica only.
        rogue = fleet_obj.engines[1].create_session()
        rogue.execute("INSERT INTO EV VALUES (99, 0)")
        with pytest.raises(HyperQError):
            session.execute("UPD EV SET V = 0 WHERE ID >= 0")

    def test_policy_is_pluggable(self):
        always_first = lambda index, count: 0
        fleet = ScaledHyperQ(replicas=2, policy=always_first)
        session = fleet.create_session()
        session.execute("CREATE TABLE P (X INTEGER)")
        for __ in range(3):
            session.execute("SEL COUNT(*) FROM P")
        assert fleet.reads_per_replica[0] == 3
        assert fleet.reads_per_replica[1] == 0

    def test_zero_replicas_rejected(self):
        with pytest.raises(HyperQError):
            ScaledHyperQ(replicas=0)

    def test_round_robin_policy(self):
        assert [round_robin(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]
