"""Integration tests for the multi-process sharded gateway.

Real forked workers, real socket handoff: every test starts a
:class:`~repro.core.gateway.Gateway` and drives it through the ordinary
wire client. Worker placement is pinned by pre-binding the client's
source port and previewing the consistent-hash ring with
``Gateway.worker_for`` — the ring is deterministic on the client
address, so tests can put two sessions on two different workers on
purpose.
"""

import socket
import time

import pytest

from repro.core.gateway import (Gateway, GatewayConfig, _HashRing,
                                _TierStore)
from repro.core.cache import CacheEntry
from repro.protocol.client import TdClient

SETUP_SQL = """
CREATE TABLE gw_t (a INTEGER, b VARCHAR(20));
INSERT INTO gw_t VALUES (1, 'x');
INSERT INTO gw_t VALUES (2, 'y');
INSERT INTO gw_t VALUES (3, 'z');
"""


@pytest.fixture(scope="module")
def gateway():
    gw = Gateway(GatewayConfig(workers=2, setup_sql=SETUP_SQL,
                               supervision_interval=0.1))
    address = gw.start()
    yield gw, address
    gw.stop()


def client_on_worker(gateway, address, worker: int,
                     attempts: int = 256) -> TdClient:
    """A TdClient whose session the ring routes to *worker*: bind source
    ports until the ring preview picks the wanted index, then connect."""
    host, port = address
    for __ in range(attempts):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, 0))
        if gateway.worker_for(sock.getsockname()) == worker:
            sock.connect((host, port))
            return TdClient(host, port, sock=sock)
        sock.close()
    raise AssertionError(f"no source port routed to worker {worker}")


class TestRouting:
    def test_queries_work_through_the_gateway(self, gateway):
        gw, address = gateway
        with TdClient(*address) as client:
            result = client.execute("SELECT a, b FROM gw_t ORDER BY a")
            assert result.rows == [(1, "x"), (2, "y"), (3, "z")]
            assert client.execute(
                "SELECT COUNT(*) FROM gw_t").rows == [(3,)]

    def test_sessions_land_on_the_ring_selected_worker(self, gateway):
        gw, address = gateway
        for worker in range(gw.config.workers):
            before = dict(gw.worker_metrics_states()).get(worker, {})
            requests_before = before.get("counters", {}).get(
                "hyperq_requests_total", 0)
            with client_on_worker(gw, address, worker) as client:
                client.execute("SELECT 1")
            # the counter lands at finish_trace, just after the reply
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                after = dict(gw.worker_metrics_states())[worker]
                if after["counters"]["hyperq_requests_total"] \
                        > requests_before:
                    break
                time.sleep(0.01)
            assert after["counters"]["hyperq_requests_total"] \
                > requests_before

    def test_ring_spreads_keys_and_is_stable(self):
        ring = _HashRing(list(range(4)))
        alive = {0, 1, 2, 3}
        keys = [f"10.0.0.{i}:{1000 + i}" for i in range(200)]
        placed = {key: ring.route(key, alive) for key in keys}
        # every worker serves some arc of the keyspace
        assert set(placed.values()) == alive
        # routing is deterministic
        assert all(ring.route(k, alive) == v for k, v in placed.items())
        # a dead member only moves its own keys
        moved = [k for k, v in placed.items()
                 if ring.route(k, alive - {2}) != v]
        assert moved and all(placed[k] == 2 for k in moved)


class TestFleetObservability:
    def test_show_metrics_reports_fleet_wide_sums(self, gateway):
        gw, address = gateway
        with client_on_worker(gw, address, 0) as zero, \
                client_on_worker(gw, address, 1) as one:
            for __ in range(3):
                zero.execute("SELECT a FROM gw_t WHERE a = 1")
                one.execute("SELECT a FROM gw_t WHERE a = 2")
            # Quiesce: counters land at finish_trace just after each
            # reply, so wait until the fleet-wide sum stops moving. The
            # fleet view must then equal the sum of the per-worker dumps.
            def fleet_sum():
                states = gw.worker_metrics_states()
                assert len(states) == 2
                return sum(state["counters"]["hyperq_requests_total"]
                           for __, state in states)

            expected = fleet_sum()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                time.sleep(0.02)
                current = fleet_sum()
                if current == expected:
                    break
                expected = current
            metrics = dict(
                line.split()[1:3] for line in zero.show_metrics()
                .splitlines() if line.startswith("counter "))
            assert int(metrics["hyperq_requests_total"]) == expected
            assert "gateway_connections_routed_total" in metrics

    def test_show_trace_finds_traces_from_any_worker(self, gateway):
        gw, address = gateway
        with client_on_worker(gw, address, 0) as zero, \
                client_on_worker(gw, address, 1) as one:
            zero.execute("SELECT 41")
            one.execute("SELECT 42")
            index = [line for line in one.show_traces().splitlines()
                     if "\tSELECT 4" in line]
            # both workers' traces are in the fleet index, worker-tagged
            workers = {line.split("\t", 1)[0] for line in index}
            assert {"w0", "w1"} <= workers
            # ids are interleaved (unique fleet-wide): offset i, stride N
            for line in index:
                tag, trace_id = line.split("\t")[:2]
                assert int(trace_id) % 2 == int(tag[1:])
            # any session can render any worker's trace by id
            line = next(l for l in index if l.startswith("w0\t"))
            rendered = zero.show_trace(int(line.split("\t")[1]))
            assert "(worker 0)" in rendered
            rendered = one.show_trace(int(line.split("\t")[1]))
            assert "(worker 0)" in rendered

    def test_admission_shares_split_across_the_fleet(self):
        from repro.core.workload import WorkloadConfig

        config = WorkloadConfig.from_dict(
            {"workers": 8, "classes": {"etl": {"max_concurrency": 4,
                                               "rate": 10.0}}})
        share = config.per_worker(4)
        assert share.workers == 2
        assert share.classes["etl"].max_concurrency == 1
        assert share.classes["etl"].rate == pytest.approx(2.5)


class TestSharedCacheTier:
    def test_translation_warmed_by_one_worker_hits_on_the_other(
            self, gateway):
        gw, address = gateway
        sql = "SELECT b FROM gw_t WHERE a = 1 AND b = 'x'"
        with client_on_worker(gw, address, 0) as zero:
            zero.execute(sql)
        before = gw.cache_service_stats()
        with client_on_worker(gw, address, 1) as one:
            one.execute(sql)
        after = gw.cache_service_stats()
        # worker 1's L1 missed, the shared tier hit — no retranslation
        assert after["hits"] > before["hits"]

    def test_disjoint_ddl_preserves_l1_and_l2_entries(self, gateway):
        """DDL on table A must leave entries that touch only table B alive
        in the worker's L1 *and* the shared L2 tier (the per-table
        invalidation acceptance bar)."""
        gw, address = gateway
        # a statement shape no other test warms (fingerprints strip
        # literals, so sharing a shape would pre-warm worker L1s)
        sql = "SELECT a FROM gw_t WHERE b = 'y' AND a BETWEEN 1 AND 3"
        with client_on_worker(gw, address, 0) as zero:
            assert zero.execute(sql).rows == [(2,)]     # warm L1 + L2
            before = gw.cache_service_stats()
            # DDL on a table the cached entry does not depend on
            zero.execute("CREATE TABLE gw_disjoint (n INTEGER)")
            after_ddl = gw.cache_service_stats()
            assert after_ddl["invalidated"] == before["invalidated"]
            # worker 0's L1 survived: the re-run never consults the tier
            assert zero.execute(sql).rows == [(2,)]
            after_rerun = gw.cache_service_stats()
            assert after_rerun["hits"] == after_ddl["hits"]
            assert after_rerun["misses"] == after_ddl["misses"]
        # the shared L2 survived too: worker 1 misses its L1, hits the tier
        with client_on_worker(gw, address, 1) as one:
            assert one.execute(sql).rows == [(2,)]
        assert gw.cache_service_stats()["hits"] > after_rerun["hits"]

    def test_tier_store_lru_and_invalidation(self):
        def entry(table: str) -> CacheEntry:
            return CacheEntry(template=None, sql="SELECT 1", notes=(),
                              deps=(table,), overlay_uid=None)

        store = _TierStore(max_bytes=3 * entry("T0").size)
        for key in range(4):
            store.put(("k", key), entry(f"T{key}"))
        assert store.evictions == 1 and store.get(("k", 0)) is None
        assert store.get(("k", 3)) is not None
        # per-table: only the entry depending on T2 drops
        assert store.invalidate_tables(("T2",)) == 1
        assert store.stats()["entries"] == 2
        # wildcard bump clears the rest
        assert store.invalidate_tables(("*",)) == 2
        assert store.stats()["entries"] == 0
