"""Integration tests reproducing the paper's worked examples verbatim."""

import datetime

import pytest

from repro.workloads.features import FeatureClass


class TestExample1:
    """Section 2.1: SEL shortcut, named expressions, QUALIFY, and ORDER BY
    placed before WHERE."""

    QUERY = """
        SEL
            PRODUCT_NAME,
            AMOUNT AS SALES_BASE,
            SALES_BASE + 100 AS SALES_OFFSET
        FROM SALES
        QUALIFY 10 < SUM(AMOUNT) OVER (PARTITION BY STORE)
        ORDER BY STORE, PRODUCT_NAME
        WHERE CHARS(PRODUCT_NAME) > 4
    """

    def test_executes_end_to_end(self, sales_session):
        result = sales_session.execute(self.QUERY)
        assert result.columns == ["PRODUCT_NAME", "SALES_BASE", "SALES_OFFSET"]
        # 'omega'/'gamma'/'delta'/'alpha' have >4 chars... 'beta' excluded by
        # CHARS; store 3 (omega alone, 20) fails the windowed sum (20 > 10 is
        # true actually) — verify against manual computation instead:
        names = [row[0] for row in result.rows]
        assert "beta" not in names

    def test_named_expression_arithmetic(self, sales_session):
        result = sales_session.execute(self.QUERY)
        for __, base, offset in result.rows:
            assert offset == base + 100

    def test_features_tracked(self, sales_session, tracker):
        sales_session.execute(self.QUERY)
        seen = tracker.features_seen()
        assert {"sel_shortcut", "named_expression", "qualify",
                "chars_function"} <= seen


class TestExample2:
    """Section 5: date/int comparison, vector subquery, legacy RANK +
    QUALIFY — the full rewrite of Figures 4-6 and Example 3."""

    QUERY = """
        SEL *
        FROM SALES
        WHERE
            SALES_DATE > 1140101
            AND (AMOUNT, AMOUNT * 0.85) >
            ANY (SEL GROSS, NET FROM SALES_HISTORY)
        QUALIFY RANK(AMOUNT DESC) <= 10
    """

    def test_translation_shape_matches_example_3(self, sales_session):
        translation = sales_session.translate(self.QUERY)
        (sql,) = translation.statements
        # Date side expanded into EXTRACT arithmetic (Figure 5).
        assert "EXTRACT(YEAR FROM" in sql
        assert "* 10000" in sql
        # Vector subquery became an existential correlated subquery (Fig. 6).
        assert "EXISTS (SELECT" in sql
        assert "ANY" not in sql
        # QUALIFY became a derived table plus outer WHERE on the rank.
        assert "RANK() OVER (ORDER BY" in sql
        assert sql.count("SELECT") >= 3

    def test_execution_semantics(self, sales_session):
        result = sales_session.execute(self.QUERY)
        rows = {row[0] for row in result.rows}
        # alpha (100 > 90), gamma/delta (80 > 60): dates after 2014-01-01 and
        # vector comparison satisfied; beta is pre-2014.
        assert rows == {"alpha", "gamma", "delta"}

    def test_tracked_classes(self, sales_session, tracker):
        sales_session.execute(self.QUERY)
        seen = tracker.features_seen()
        assert "date_int_comparison" in seen
        assert "vector_subquery" in seen
        assert "qualify" in seen

    def test_tie_preservation(self, sales_session):
        # gamma and delta tie on AMOUNT=80; RANK preserves both.
        result = sales_session.execute(self.QUERY)
        amounts = sorted(row[2] for row in result.rows)
        assert amounts == [80.0, 80.0, 100.0]


class TestExample4:
    """Section 6: recursive query emulated via WorkTable/TempTable."""

    QUERY = """
        WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
            SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
            UNION ALL
            SELECT EMP.EMPNO, EMP.MGRNO
            FROM EMP, REPORTS
            WHERE REPORTS.EMPNO = EMP.MGRNO
        )
        SELECT EMPNO FROM REPORTS ORDER BY EMPNO
    """

    def test_figure_7_result(self, emp_session):
        result = emp_session.execute(self.QUERY)
        assert [row[0] for row in result.rows] == [1, 7, 8, 9]

    def test_multiple_target_requests_issued(self, emp_session):
        result = emp_session.execute(self.QUERY)
        assert len(result.target_sql) > 5
        assert any("CREATE TEMPORARY TABLE" in sql for sql in result.target_sql)

    def test_recursion_terminates_and_cleans_up(self, emp_session):
        emp_session.execute(self.QUERY)
        # The scratch tables are dropped afterwards: re-running works and the
        # backend session has no lingering _HQ_ tables visible.
        result = emp_session.execute(self.QUERY)
        assert [row[0] for row in result.rows] == [1, 7, 8, 9]

    def test_emulation_feature_tracked(self, emp_session, tracker):
        emp_session.execute(self.QUERY)
        assert "recursive_query" in tracker.features_seen()
        fractions = tracker.affected_query_fraction_by_class()
        assert fractions[FeatureClass.EMULATION] > 0
