"""Integration tests for parameterized queries (Section 4.5)."""

import datetime

import pytest

from repro.errors import BindError


class TestPositionalParameters:
    def test_where_clause_marker(self, sales_session):
        result = sales_session.execute(
            "SEL PRODUCT_NAME FROM SALES WHERE STORE = ? ORDER BY 1", [2])
        assert [row[0] for row in result.rows] == ["delta", "gamma"]

    def test_multiple_markers_bind_left_to_right(self, sales_session):
        result = sales_session.execute(
            "SEL COUNT(*) FROM SALES WHERE STORE = ? AND AMOUNT > ?", [1, 60])
        assert result.rows == [(1,)]

    def test_markers_in_insert_values(self, sales_session):
        sales_session.execute(
            "INSERT INTO SALES VALUES (?, ?, ?, ?)",
            ["zeta", 9, 1.50, datetime.date(2015, 6, 1)])
        row = sales_session.execute(
            "SEL STORE, SALES_DATE FROM SALES WHERE PRODUCT_NAME = 'zeta'"
        ).rows[0]
        assert row == (9, datetime.date(2015, 6, 1))

    def test_markers_in_update(self, sales_session):
        count = sales_session.execute(
            "UPD SALES SET AMOUNT = ? WHERE PRODUCT_NAME = ?",
            [77.0, "alpha"]).rowcount
        assert count == 1

    def test_too_few_values_rejected(self, sales_session):
        with pytest.raises(BindError):
            sales_session.execute(
                "SEL 1 FROM SALES WHERE STORE = ? AND AMOUNT = ?", [1])

    def test_unused_values_rejected(self, sales_session):
        with pytest.raises(BindError):
            sales_session.execute(
                "SEL 1 FROM SALES WHERE STORE = ?", [1, 2])


class TestNamedParameters:
    def test_named_marker(self, sales_session):
        result = sales_session.execute(
            "SEL PRODUCT_NAME FROM SALES WHERE STORE = :s AND AMOUNT > :amt "
            "ORDER BY 1", s=2, amt=10)
        assert [row[0] for row in result.rows] == ["delta", "gamma"]

    def test_named_marker_reuse(self, sales_session):
        result = sales_session.execute(
            "SEL COUNT(*) FROM SALES WHERE AMOUNT > :lo AND AMOUNT < :lo + 50",
            lo=40)
        # amounts strictly between 40 and 90: beta(50), gamma(80), delta(80)
        assert result.rows == [(3,)]

    def test_missing_named_value_rejected(self, sales_session):
        with pytest.raises(BindError):
            sales_session.execute(
                "SEL 1 FROM SALES WHERE STORE = :nope", s=1)

    def test_null_parameter(self, sales_session):
        result = sales_session.execute(
            "SEL COUNT(*) FROM SALES WHERE STORE = :v", v=None)
        assert result.rows == [(0,)]  # NULL never equals anything


class TestParametersInSubqueries:
    def test_marker_inside_subquery(self, sales_session):
        result = sales_session.execute(
            "SEL PRODUCT_NAME FROM SALES WHERE AMOUNT > "
            "(SEL AVG(GROSS) FROM SALES_HISTORY WHERE GROSS > ?) "
            "ORDER BY 1", [0])
        assert [row[0] for row in result.rows] == ["alpha", "delta", "gamma"]

    def test_marker_in_qualify(self, sales_session):
        result = sales_session.execute(
            "SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= :k "
            "ORDER BY 1", k=1)
        assert result.rows == [("alpha",)]
