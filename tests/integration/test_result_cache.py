"""End-to-end result-cache behavior through the full pipeline: zero
backend calls on a hit, per-table invalidation by DML/DDL, shareability
gating (volatile overlays, non-deterministic functions), and the
SHOW HYPERQ METRICS counters."""

import pytest

from repro.core.engine import HyperQ

CACHE_BYTES = 1 << 20


@pytest.fixture()
def engine():
    return HyperQ(result_cache_bytes=CACHE_BYTES)


@pytest.fixture()
def session(engine):
    s = engine.create_session()
    s.execute("CREATE MULTISET TABLE T (ID INTEGER, VAL DECIMAL(12,2))")
    s.execute("CREATE MULTISET TABLE OTHER (ID INTEGER)")
    s.execute("INSERT INTO T VALUES (1, 10.5)")
    s.execute("INSERT INTO T VALUES (2, 20.5)")
    s.execute("INSERT INTO OTHER VALUES (99)")
    return s


def run(session, sql, *args, **kwargs):
    result = session.execute(sql, *args, **kwargs)
    return result.rows


class TestZeroBackendCalls:
    def test_repeat_select_replays_without_executor(self, engine, session):
        first = run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        executed = session.odbc.statements_executed
        second = run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        # the acceptance bar: a hit performs ZERO backend executor calls
        assert session.odbc.statements_executed == executed
        assert second == first == [(1, 10.5), (2, 20.5)]
        stats = engine.result_cache_stats()
        assert stats.hits == 1 and stats.inserts == 1

    def test_hit_is_shared_across_sessions(self, engine, session):
        run(session, "SELECT ID FROM T WHERE ID = 1")
        other = engine.create_session()
        assert run(other, "SELECT ID FROM T WHERE ID = 1") == [(1,)]
        # the second session never touched its backend connection
        assert other.odbc.statements_executed == 0

    def test_rowcount_matches_live_run(self, engine, session):
        live = session.execute("SELECT ID FROM T")
        live_count = live.rowcount
        replay = session.execute("SELECT ID FROM T")
        assert replay.rowcount == live_count == 2


class TestInvalidation:
    def test_dml_on_other_table_preserves_entry(self, engine, session):
        run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        run(session, "SELECT ID, VAL FROM T ORDER BY ID")  # warm + proven hit
        before = engine.result_cache_stats()
        session.execute("INSERT INTO OTHER VALUES (100)")
        rows = run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        after = engine.result_cache_stats()
        assert after.hits == before.hits + 1
        assert after.invalidations == before.invalidations
        assert rows == [(1, 10.5), (2, 20.5)]

    def test_dml_on_dependency_serves_fresh_rows(self, engine, session):
        run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        session.execute("INSERT INTO T VALUES (3, 30.5)")
        rows = run(session, "SELECT ID, VAL FROM T ORDER BY ID")
        assert rows == [(1, 10.5), (2, 20.5), (3, 30.5)]
        assert engine.result_cache_stats().invalidations >= 1

    def test_update_invalidates(self, engine, session):
        run(session, "SELECT VAL FROM T WHERE ID = 1")
        session.execute("UPDATE T SET VAL = 99.5 WHERE ID = 1")
        assert run(session, "SELECT VAL FROM T WHERE ID = 1") == [(99.5,)]

    def test_delete_invalidates(self, engine, session):
        run(session, "SELECT ID FROM T ORDER BY ID")
        session.execute("DELETE FROM T WHERE ID = 2")
        assert run(session, "SELECT ID FROM T ORDER BY ID") == [(1,)]

    def test_ddl_drop_invalidates(self, engine, session):
        run(session, "SELECT ID FROM OTHER")
        session.execute("DROP TABLE OTHER")
        session.execute("CREATE MULTISET TABLE OTHER (ID INTEGER)")
        assert run(session, "SELECT ID FROM OTHER") == []

    def test_view_entry_invalidated_by_base_table_dml(self, engine, session):
        session.execute("CREATE VIEW V AS SELECT ID FROM T")
        run(session, "SELECT ID FROM V ORDER BY ID")
        session.execute("INSERT INTO T VALUES (7, 70.5)")
        assert (7,) in run(session, "SELECT ID FROM V ORDER BY ID")


class TestShareabilityGates:
    def test_volatile_overlay_session_bypasses(self, engine, session):
        overlay = engine.create_session()
        overlay.execute("CREATE VOLATILE TABLE SCRATCH (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        before = engine.result_cache_stats()
        run(overlay, "SELECT ID FROM T WHERE ID = 1")
        run(overlay, "SELECT ID FROM T WHERE ID = 1")
        after = engine.result_cache_stats()
        # the overlay session never consults nor populates the shared cache
        assert after.inserts == before.inserts
        assert after.hits == before.hits
        # a clean session still shares normally
        run(session, "SELECT ID FROM T WHERE ID = 1")
        run(session, "SELECT ID FROM T WHERE ID = 1")
        assert engine.result_cache_stats().hits == after.hits + 1

    def test_niladic_date_never_cached(self, engine, session):
        before = engine.result_cache_stats().inserts
        run(session, "SELECT ID FROM T WHERE DATE >= DATE")
        run(session, "SELECT ID FROM T WHERE DATE >= DATE")
        assert engine.result_cache_stats().inserts == before

    def test_distinct_literals_are_distinct_entries(self, engine, session):
        assert run(session, "SELECT VAL FROM T WHERE ID = 1") == [(10.5,)]
        assert run(session, "SELECT VAL FROM T WHERE ID = 2") == [(20.5,)]
        # repeat both — each should hit its own entry, never cross over
        assert run(session, "SELECT VAL FROM T WHERE ID = 1") == [(10.5,)]
        assert run(session, "SELECT VAL FROM T WHERE ID = 2") == [(20.5,)]
        assert engine.result_cache_stats().hits == 2

    def test_parameter_values_key_entries(self, engine, session):
        assert run(session, "SELECT VAL FROM T WHERE ID = ?", [1]) == [(10.5,)]
        assert run(session, "SELECT VAL FROM T WHERE ID = ?", [2]) == [(20.5,)]
        assert run(session, "SELECT VAL FROM T WHERE ID = ?", [1]) == [(10.5,)]

    def test_disabled_engine_has_no_result_cache(self):
        engine = HyperQ()
        assert engine.result_cache is None
        assert engine.result_cache_stats() is None


class TestObservability:
    def test_metrics_counters_exposed(self, engine, session):
        run(session, "SELECT ID FROM T")
        run(session, "SELECT ID FROM T")
        session.execute("INSERT INTO T VALUES (5, 50.5)")
        result = session.execute("SHOW HYPERQ METRICS")
        text = "\n".join(row[0] for row in result.rows)
        assert "hyperq_result_cache_hits_total 1" in text
        assert "hyperq_result_cache_inserts_total 1" in text
        assert "hyperq_result_cache_invalidations_total 1" in text

    def test_trace_contains_result_cache_span(self, engine, session):
        run(session, "SELECT ID FROM T")
        run(session, "SELECT ID FROM T")
        hub = engine.tracing
        spans = []
        for trace_id in hub.trace_ids():
            trace = hub.get_trace(trace_id)
            if trace is not None:
                spans.extend(span.name for _, span in trace.walk())
        assert "result_cache" in spans
        assert "dependency_extract" in spans
