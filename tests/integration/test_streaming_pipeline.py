"""Integration tests for the streaming result pipeline (ISSUE 3 tentpole).

The acceptance bar: a >=100k-row query through the wire protocol never holds
more than the configured budget of row data in any one layer, and a paced
client observes its first row while the backend is still producing batches.
"""

import threading
import time

import pytest

from repro.backend.engine import Database
from repro.core.budget import BatchBudget
from repro.core.engine import HyperQ
from repro.protocol.client import TdClient
from repro.protocol.server import ServerThread

ROW_COUNT = 100_000
BATCH_ROWS = 1024
PAD = "x" * 64


class ProbeDatabase(Database):
    """Backend that timestamps every batch it hands to the data path."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batch_log: list[tuple[float, int]] = []  # (monotonic, nrows)
        self._log_lock = threading.Lock()

    def create_session(self):
        session = super().create_session()
        original = session.execute

        def probed(sql):
            result = original(sql)
            result.wrap_batch_source(self._stamped)
            return result

        session.execute = probed
        return session

    def _stamped(self, source):
        for batch in source:
            with self._log_lock:
                self.batch_log.append((time.monotonic(), len(batch)))
            yield batch


def seed_big_table(engine, rows=ROW_COUNT):
    """Create and fill the scan target (seeded directly into backend storage;
    a 100k-row VALUES list would dominate the test in parse time)."""
    engine.create_session().execute(
        "CREATE TABLE BIGSTREAM (N INTEGER, PAD VARCHAR(80))")
    table = engine.backend.catalog.table("BIGSTREAM")
    table.insert_rows([(i, PAD) for i in range(rows)])


class TestFirstRowBeforeLastBatch:
    def test_paced_client_overlaps_backend_production(self):
        budget = BatchBudget(batch_rows=BATCH_ROWS)
        backend = ProbeDatabase(batch_rows=BATCH_ROWS)
        engine = HyperQ(backend=backend, batch_budget=budget)
        seed_big_table(engine)
        with ServerThread(engine) as (host, port):
            with TdClient(host, port, timeout=120.0) as client:
                stream = client.execute_stream("SEL N, PAD FROM BIGSTREAM")
                frame_times: list[float] = []
                frame_sizes: list[int] = []

                def paced(frame):
                    frame_times.append(time.monotonic())
                    frame_sizes.append(len(frame))
                    time.sleep(0.002)  # a deliberately slow consumer

                stream.on_rows = paced
                total = 0
                first_value = None
                for row in stream:
                    if first_value is None:
                        first_value = row[0]
                    total += 1
                assert total == ROW_COUNT
                assert first_value == 0
                assert stream.final.kind == "rows"
                assert stream.final.rowcount == ROW_COUNT

        # The client saw its first frame while the backend still had
        # batches to produce: streaming, not store-and-forward.
        assert len(backend.batch_log) >= ROW_COUNT // BATCH_ROWS
        last_batch_produced = backend.batch_log[-1][0]
        assert frame_times[0] < last_batch_produced

        # Flow control bounds every hop: the backend yielded fixed-size
        # batches and every wire frame carried at most one batch of rows.
        assert max(size for __, size in backend.batch_log) <= BATCH_ROWS
        assert max(frame_sizes) <= BATCH_ROWS
        assert len(frame_sizes) >= ROW_COUNT // BATCH_ROWS


class TestPerLayerMemoryBounds:
    def test_pure_streaming_path_never_buffers(self):
        """Consumed chunk-by-chunk in process, the converted result holds at
        most one chunk and never instantiates a Result Store."""
        budget = BatchBudget(batch_rows=BATCH_ROWS,
                             max_memory_bytes=256 * 1024)
        engine = HyperQ(batch_budget=budget)
        seed_big_table(engine, rows=20_000)
        session = engine.create_session()
        result = session.execute("SEL N, PAD FROM BIGSTREAM")
        converted = result.converted
        assert converted.streaming
        chunks = 0
        for chunk in result.iter_chunks():
            chunks += 1
            # One converted chunk carries one batch: ~BATCH_ROWS rows of
            # ~70-byte records, comfortably under the memory ceiling.
            assert len(chunk) <= budget.max_memory_bytes
        assert chunks >= 20_000 // BATCH_ROWS
        assert converted._store is None  # no buffering on the fast path
        assert converted.peak_chunk_bytes <= budget.max_memory_bytes
        assert result.rowcount == 20_000
        session.close()

    def test_materializing_shim_spills_past_budget(self, tmp_path):
        """HQResult.rows still works under a tiny ceiling — the drain runs
        through the bounded store, which spills mid-stream."""
        budget = BatchBudget(batch_rows=256, max_memory_bytes=4096)
        engine = HyperQ(batch_budget=budget, spill_dir=str(tmp_path))
        seed_big_table(engine, rows=5_000)
        session = engine.create_session()
        result = session.execute("SEL N FROM BIGSTREAM ORDER BY N")
        assert result.rowcount == 5_000  # drains through the store
        store = result.converted.store
        assert store.spilled
        assert store.high_water <= budget.max_memory_bytes
        rows = result.rows
        assert len(rows) == 5_000
        assert rows[0] == (0,) and rows[-1] == (4_999,)
        result.close()
        assert not any(tmp_path.iterdir())  # spill file cleaned up
        session.close()

    def test_span_tree_covers_streaming_wire_request(self):
        """Every wire request yields exactly one complete span tree: one
        root, children nested inside parent intervals, and the streaming
        stages (decode, execute, convert, encode) all present."""
        from repro.core.trace import assert_span_tree

        budget = BatchBudget(batch_rows=BATCH_ROWS)
        engine = HyperQ(batch_budget=budget)
        seed_big_table(engine, rows=2_000)
        with ServerThread(engine) as (host, port):
            with TdClient(host, port, timeout=120.0) as client:
                for __ in range(3):
                    result = client.execute("SEL N, PAD FROM BIGSTREAM")
                    assert result.rowcount == 2_000

        hub = engine.tracing
        deadline = time.monotonic() + 5

        def wire_traces():
            traces = [hub.get_trace(tid) for tid in hub.trace_ids()]
            return [t for t in traces
                    if t is not None and "wire_encode" in t.stage_names()]

        while time.monotonic() < deadline and len(wire_traces()) < 3:
            time.sleep(0.01)
        traced = wire_traces()
        assert len(traced) == 3
        for trace in traced:
            assert_span_tree(trace)  # one root, nesting, all spans finished
            names = trace.stage_names()
            for stage in ("protocol_decode", "odbc_execute",
                          "result_convert", "wire_encode"):
                assert stage in names, f"missing {stage} in {names}"
            # The lazy conversion nests under the wire-encode interval.
            convert = next(s for s in trace.spans
                           if s.name == "result_convert")
            encode = next(s for s in trace.spans if s.name == "wire_encode")
            assert convert.parent_id == encode.span_id
            assert convert.attrs["rows"] == 2_000

    def test_first_row_timing_recorded(self):
        engine = HyperQ()
        seed_big_table(engine, rows=5_000)
        session = engine.create_session()
        result = session.execute("SEL N FROM BIGSTREAM")
        assert result.timing.first_row == 0.0  # nothing consumed yet
        iterator = result.iter_chunks()
        next(iterator)
        first_row = result.timing.first_row
        assert first_row > 0.0
        for __ in iterator:
            pass
        assert result.timing.first_row == first_row  # marked exactly once
        assert engine.timing_log.mean_first_row == pytest.approx(first_row)
        session.close()
