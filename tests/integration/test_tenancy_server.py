"""Integration tests: the multi-tenant control plane behind real servers.

Covers tenant identity at LOGON (explicit, unknown-rejected, legacy
default), the noisy-neighbor isolation guarantee (an interactive tenant's
p99 under a storming neighbor stays within 2x its solo p99 while the
neighbor is shed, not the victim), fleet-wide ``SHOW HYPERQ TENANTS``
through the gateway, and graceful drain (no in-flight query is ever
dropped, single-server and gateway both).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import HyperQ, ServerThread, TdClient
from repro.core.faults import SLOW_RESULT, FaultSchedule, FaultSpec
from repro.core.tenancy import TenancyConfig, TenantRegistry
from repro.core.workload import WorkloadConfig, WorkloadManager
from repro.errors import BackendError

TENANCY = {
    "tenants": {
        # The noisy neighbor: one running slot, a two-deep queue, and a
        # QPS bucket — everything beyond that is shed at admission.
        "storm": {"weight": 1.0, "max_concurrency": 1, "queue_depth": 2,
                  "rate": 100.0, "burst": 8},
        # The victim dashboard tenant: a big fair-share weight, no caps.
        "dash": {"weight": 4.0},
    },
}


def _p99(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _tenanted_engine(faults=None):
    registry = TenantRegistry(TenancyConfig.from_dict(TENANCY),
                              faults=faults)
    manager = WorkloadManager(WorkloadConfig(workers=2), tenancy=registry)
    engine = HyperQ(workload=manager, faults=faults)
    return engine, manager


def _dash_setup(client: TdClient) -> None:
    client.execute("CREATE TABLE DASH_T (A INTEGER)")
    client.execute("INS INTO DASH_T VALUES (1)")
    client.execute("CREATE TABLE STORM_T (A INTEGER)")
    for value in range(20):
        client.execute(f"INS INTO STORM_T VALUES ({value})")


def _measure_dash(host, port, queries: int) -> list[float]:
    """Per-query wall latencies for the dashboard tenant."""
    samples = []
    with TdClient(host, port, tenant="dash") as client:
        for __ in range(queries):
            begin = time.monotonic()
            result = client.execute("SEL A FROM DASH_T WHERE A = 1")
            samples.append(time.monotonic() - begin)
            assert result.rows == [(1,)]
    return samples


class TestIdentity:
    def test_logon_resolves_explicit_and_legacy_tenants(self):
        engine, manager = _tenanted_engine()
        try:
            thread = ServerThread(engine)
            host, port = thread.start()
            try:
                with TdClient(host, port, tenant="DASH") as client:
                    _dash_setup(client)
                # A legacy client that presents no tenant id lands on the
                # default tenant — old deployments keep working untouched.
                with TdClient(host, port) as legacy:
                    assert legacy.execute(
                        "SEL A FROM DASH_T").rows == [(1,)]
                    report = legacy.show_tenants()
                assert "dash" in report and "default" in report
            finally:
                thread.stop()
        finally:
            manager.close()

    def test_unknown_tenant_logon_is_rejected_cleanly(self):
        engine, manager = _tenanted_engine()
        try:
            thread = ServerThread(engine)
            host, port = thread.start()
            try:
                with pytest.raises(BackendError, match="unknown tenant"):
                    TdClient(host, port, tenant="ghost")
                # The rejection names the configured tenants and leaves
                # the server fully able to serve real ones.
                try:
                    TdClient(host, port, tenant="ghost")
                except BackendError as error:
                    assert "storm" in str(error) and "dash" in str(error)
                with TdClient(host, port, tenant="dash") as client:
                    assert client.execute("SEL DATE").kind == "rows"
            finally:
                thread.stop()
        finally:
            manager.close()


class TestNoisyNeighborIsolation:
    def test_storm_tenant_is_shed_not_the_dashboard(self):
        """Satellite 3 + the tentpole's acceptance bar: under a full
        admission storm from 'storm', 'dash' keeps its interactive p99
        within 2x of its solo baseline (plus a small absolute floor for
        timer noise on sub-millisecond queries), every shed lands on
        'storm', and 'dash' is never shed."""
        engine, manager = _tenanted_engine()
        try:
            thread = ServerThread(engine)
            host, port = thread.start()
            try:
                with TdClient(host, port, tenant="dash") as setup:
                    _dash_setup(setup)
                    # Warm translation paths for both statement shapes.
                    setup.execute("SEL A FROM DASH_T WHERE A = 1")
                    setup.execute(
                        "SEL COUNT(*) FROM STORM_T CROSS JOIN STORM_T")

                solo = _measure_dash(host, port, queries=40)

                stop = threading.Event()
                sheds = []
                served = []

                def storm():
                    with TdClient(host, port, tenant="storm") as client:
                        while not stop.is_set():
                            try:
                                client.execute("SEL COUNT(*) FROM STORM_T "
                                               "CROSS JOIN STORM_T")
                                served.append(1)
                            except BackendError as error:
                                assert "QUOTA_EXCEEDED" in str(error)
                                sheds.append(1)

                threads = [threading.Thread(target=storm) for __ in range(3)]
                for worker in threads:
                    worker.start()
                time.sleep(0.2)  # let the storm ramp before measuring
                bound = max(2.0 * _p99(solo), _p99(solo) + 0.05)
                try:
                    # A shared CI box can hiccup any single round (the
                    # bound covers the storm, not the host's scheduler) —
                    # one round within the bound proves isolation held.
                    p99s = []
                    for __ in range(3):
                        stormed = _measure_dash(host, port, queries=40)
                        p99s.append(_p99(stormed))
                        if p99s[-1] <= bound:
                            break
                finally:
                    stop.set()
                    for worker in threads:
                        worker.join(timeout=10)

                assert min(p99s) <= bound, (
                    f"dash p99 {min(p99s) * 1e3:.1f}ms exceeded "
                    f"{bound * 1e3:.1f}ms in all {len(p99s)} rounds "
                    f"(solo {_p99(solo) * 1e3:.1f}ms)")
                # The storm tenant was actually storming — and shedding.
                assert served and sheds

                with TdClient(host, port, tenant="dash") as check:
                    report = check.show_tenants()
                storm_line = next(line for line in report.splitlines()
                                  if line.startswith("storm\t"))
                dash_line = next(line for line in report.splitlines()
                                 if line.startswith("dash\t"))
                header = next(line for line in report.splitlines()
                              if line.startswith("tenant\t")).split("\t")
                shed_col = header.index("shed")
                assert int(storm_line.split("\t")[shed_col]) == len(sheds)
                assert int(dash_line.split("\t")[shed_col]) == 0
            finally:
                thread.stop()
        finally:
            manager.close()


class TestFleetTenants:
    def test_show_tenants_aggregates_across_gateway_workers(self):
        from repro.core.gateway import Gateway, GatewayConfig

        gateway = Gateway(GatewayConfig(
            workers=2, workload=WorkloadConfig(),
            tenancy=TenancyConfig.from_dict(TENANCY),
            setup_sql="CREATE TABLE FLEET_T (A INTEGER);"
                      "INSERT INTO FLEET_T VALUES (7);",
            supervision_interval=0.1))
        host, port = gateway.start()
        try:
            with TdClient(host, port, tenant="dash") as client:
                for __ in range(3):
                    assert client.execute(
                        "SEL A FROM FLEET_T").rows == [(7,)]
                report = client.show_tenants()
            lines = report.splitlines()
            assert "2 workers" in lines[0]
            header = lines[1].split("\t")
            dash_line = next(line for line in lines
                             if line.startswith("dash\t"))
            fields = dash_line.split("\t")
            assert int(fields[header.index("requests")]) >= 3
            # Every column the issue names is present in the report.
            for column in ("qps", "shed", "queue_wait_p99_ms",
                           "cache_bytes"):
                assert column in header
        finally:
            gateway.stop()

    def test_unknown_tenant_rejected_at_the_gateway_too(self):
        from repro.core.gateway import Gateway, GatewayConfig

        gateway = Gateway(GatewayConfig(
            workers=2, workload=WorkloadConfig(),
            tenancy=TenancyConfig.from_dict(TENANCY),
            supervision_interval=0.1))
        host, port = gateway.start()
        try:
            with pytest.raises(BackendError, match="unknown tenant"):
                TdClient(host, port, tenant="ghost")
            with TdClient(host, port, tenant="storm") as client:
                assert client.execute("SEL DATE").kind == "rows"
        finally:
            gateway.stop()


class TestGracefulDrain:
    def test_single_server_drain_never_drops_inflight_query(self):
        """Satellite 1's regression: a SIGTERM-style drain that begins
        while a request is mid-flight lets that request finish and ship
        its full reply before the connection closes."""
        faults = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "wire", match="SLOWTAG", after=2,
                      times=1, delay=0.4),
        ])
        engine, manager = _tenanted_engine(faults=faults)
        try:
            thread = ServerThread(engine)
            host, port = thread.start()
            stopped = False
            try:
                with TdClient(host, port, tenant="dash") as setup:
                    setup.execute("CREATE TABLE SLOWTAG (A INTEGER)")
                    setup.execute("INS INTO SLOWTAG VALUES (9)")

                started = threading.Event()
                outcome = {}

                def slow_query():
                    with TdClient(host, port, tenant="dash") as client:
                        started.set()
                        outcome["result"] = client.execute(
                            "SEL A FROM SLOWTAG")

                worker = threading.Thread(target=slow_query)
                worker.start()
                started.wait(5)
                time.sleep(0.1)  # the 0.4s-stalled request is now in flight
                thread.server.begin_drain()
                worker.join(timeout=10)
                # The in-flight reply arrived complete despite the drain.
                assert outcome["result"].rows == [(9,)]
                deadline = time.monotonic() + 5.0
                while not thread.server.drained() \
                        and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert thread.server.drained()
                # New connections are refused once draining.
                with pytest.raises(Exception):
                    TdClient(host, port, tenant="dash",
                             timeout=2.0).execute("SEL DATE")
                thread.stop()
                stopped = True
            finally:
                if not stopped:
                    thread.stop()
        finally:
            manager.close()

    def test_gateway_drain_reports_drained_not_killed(self):
        """The supervisor's SIGTERM -> deadline -> SIGKILL ladder ends in
        'drained' for every worker when in-flight work finishes in time —
        and that in-flight query's reply arrives complete."""
        from repro.core.gateway import Gateway, GatewayConfig

        gateway = Gateway(GatewayConfig(
            workers=2, workload=WorkloadConfig(),
            tenancy=TenancyConfig.from_dict(TENANCY),
            setup_sql="CREATE TABLE BIG_T (A INTEGER);"
                      "INSERT INTO BIG_T VALUES (1);",
            supervision_interval=0.1))
        host, port = gateway.start()
        try:
            started = threading.Event()
            outcome = {}

            def inflight():
                with TdClient(host, port, tenant="dash") as client:
                    started.set()
                    outcome["result"] = client.execute(
                        "SEL COUNT(*) FROM BIG_T CROSS JOIN BIG_T")

            worker = threading.Thread(target=inflight)
            worker.start()
            started.wait(5)
            outcomes = gateway.drain(deadline=15.0)
            worker.join(timeout=10)
            assert outcome["result"].rows == [(1,)]
            assert set(outcomes.values()) == {"drained"}, outcomes
        finally:
            gateway.stop()
