"""Integration tests: the full TPC-H workload through the virtualization
pipeline, with spot-check correctness against independent Python
recomputation over the generated data."""

import datetime

import pytest

from repro.bench.harness import prepare_tpch_engine
from repro.workloads.tpch import datagen, queries
from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES

SCALE = 0.0005
SEED = 99


@pytest.fixture(scope="module")
def tpch():
    engine = prepare_tpch_engine(scale=SCALE, seed=SEED)
    data = datagen.generate(SCALE, SEED)
    return engine.create_session(), data


class TestDataGenerator:
    def test_deterministic(self):
        first = datagen.generate(SCALE, SEED)
        second = datagen.generate(SCALE, SEED)
        assert first == second

    def test_row_count_ratios(self):
        data = datagen.generate(0.001, SEED)
        assert len(data["REGION"]) == 5
        assert len(data["NATION"]) == 25
        assert len(data["PARTSUPP"]) == 4 * len(data["PART"])
        assert len(data["ORDERS"]) == 1500

    def test_referential_integrity(self, tpch):
        __, data = tpch
        part_keys = {row[0] for row in data["PART"]}
        supp_keys = {row[0] for row in data["SUPPLIER"]}
        order_keys = {row[0] for row in data["ORDERS"]}
        for line in data["LINEITEM"]:
            assert line[0] in order_keys
            assert line[1] in part_keys
            assert line[2] in supp_keys

    def test_load_through_pipeline_matches_direct(self):
        from repro.core.engine import HyperQ

        engine = HyperQ()
        session = engine.create_session()
        counts = datagen.load_into(session.execute, scale=0.0002, seed=SEED)
        for table, count in counts.items():
            result = session.execute(f"SEL COUNT(*) FROM {table}")
            assert result.rows == [(count,)]


class TestAllQueriesRun:
    @pytest.mark.parametrize("number", list(range(1, 23)))
    def test_query_executes(self, tpch, number):
        session, __ = tpch
        result = session.execute(queries.query(number))
        assert result.kind == "rows"
        result.close()


class TestSpotCheckCorrectness:
    """Recompute reference answers in plain Python over the generated rows."""

    def test_q1_aggregates(self, tpch):
        session, data = tpch
        cutoff = datetime.date(1998, 12, 1) - datetime.timedelta(days=90)
        reference: dict = {}
        for line in data["LINEITEM"]:
            if line[10] > cutoff:  # l_shipdate
                continue
            key = (line[8], line[9])
            bucket = reference.setdefault(key, [0.0, 0.0, 0])
            bucket[0] += line[4]           # quantity
            bucket[1] += line[5] * (1 - line[6])  # disc price
            bucket[2] += 1
        result = session.execute(queries.query(1))
        assert len(result.rows) == len(reference)
        for row in result.rows:
            key = (row[0], row[1])
            assert key in reference
            assert row[2] == pytest.approx(reference[key][0])   # sum_qty
            assert row[4] == pytest.approx(reference[key][1])   # sum_disc_price
            assert row[9] == reference[key][2]                  # count_order

    def test_q6_revenue(self, tpch):
        session, data = tpch
        low = datetime.date(1994, 1, 1)
        high = datetime.date(1995, 1, 1)
        expected = sum(
            line[5] * line[6]
            for line in data["LINEITEM"]
            if low <= line[10] < high and 0.05 <= line[6] <= 0.07
            and line[4] < 24)
        result = session.execute(queries.query(6))
        value = result.rows[0][0]
        if expected == 0:
            assert value is None or value == pytest.approx(0.0)
        else:
            assert value == pytest.approx(expected)

    def test_q4_order_priority(self, tpch):
        session, data = tpch
        low = datetime.date(1993, 7, 1)
        high = datetime.date(1993, 10, 1)
        late = {line[0] for line in data["LINEITEM"] if line[11] < line[12]}
        reference: dict = {}
        for order in data["ORDERS"]:
            if low <= order[4] < high and order[0] in late:
                reference[order[5]] = reference.get(order[5], 0) + 1
        result = session.execute(queries.query(4))
        measured = {row[0].rstrip(): row[1] for row in result.rows}
        assert measured == {k.rstrip(): v for k, v in reference.items()}

    def test_q13_customer_distribution(self, tpch):
        session, data = tpch
        import re

        pattern = re.compile(r"special.*requests")
        per_customer = {customer[0]: 0 for customer in data["CUSTOMER"]}
        for order in data["ORDERS"]:
            if pattern.search(order[8]):
                continue
            per_customer[order[1]] += 1
        reference: dict = {}
        for count in per_customer.values():
            reference[count] = reference.get(count, 0) + 1
        result = session.execute(queries.query(13))
        measured = {row[0]: row[1] for row in result.rows}
        assert measured == reference

    def test_q22_uses_substring_and_anti_join(self, tpch):
        session, data = tpch
        codes = {"13", "31", "23", "29", "30", "18", "17"}
        eligible = [c for c in data["CUSTOMER"] if c[4][:2] in codes]
        positive = [c for c in eligible if c[5] > 0]
        if not positive:
            pytest.skip("no eligible customers at this scale")
        avg_bal = sum(c[5] for c in positive) / len(positive)
        with_orders = {o[1] for o in data["ORDERS"]}
        reference: dict = {}
        for customer in eligible:
            if customer[5] > avg_bal and customer[0] not in with_orders:
                code = customer[4][:2]
                bucket = reference.setdefault(code, [0, 0.0])
                bucket[0] += 1
                bucket[1] += customer[5]
        result = session.execute(queries.query(22))
        measured = {row[0]: (row[1], row[2]) for row in result.rows}
        assert set(measured) == set(reference)
        for code, (count, total) in reference.items():
            assert measured[code][0] == count
            assert measured[code][1] == pytest.approx(total)


class TestOverheadShape:
    def test_translation_overhead_is_minor(self, tpch):
        session, __ = tpch
        engine = session.engine
        log = engine.timing_log
        # After the full module ran the queries, translation+conversion must
        # be a small share of end-to-end time (Figure 9a's claim; generous
        # bound for tiny data).
        assert log.total > 0
        assert log.overhead_fraction < 0.30


class TestMoreSpotChecks:
    """Additional reference checks keeping joins/aggregates honest."""

    def test_q3_shipping_priority(self, tpch):
        session, data = tpch
        cutoff = datetime.date(1995, 3, 15)
        building = {c[0] for c in data["CUSTOMER"] if c[6].rstrip() == "BUILDING"}
        orders = {o[0]: o for o in data["ORDERS"]
                  if o[1] in building and o[4] < cutoff}
        revenue: dict = {}
        for line in data["LINEITEM"]:
            if line[0] in orders and line[10] > cutoff:
                key = line[0]
                revenue[key] = revenue.get(key, 0.0) + line[5] * (1 - line[6])
        expected = sorted(
            ((key, value, orders[key][4]) for key, value in revenue.items()),
            key=lambda item: (-item[1], item[2]))[:10]
        result = session.execute(queries.query(3))
        assert len(result.rows) == min(10, len(expected))
        for row, (key, value, odate) in zip(result.rows, expected):
            assert row[0] == key
            assert row[1] == pytest.approx(value)
            assert row[2] == odate

    def test_q12_shipmode_counts(self, tpch):
        session, data = tpch
        low = datetime.date(1994, 1, 1)
        high = datetime.date(1995, 1, 1)
        orders = {o[0]: o[5] for o in data["ORDERS"]}
        reference: dict = {}
        for line in data["LINEITEM"]:
            mode = line[14].rstrip()
            if mode not in ("MAIL", "SHIP"):
                continue
            if not (line[11] < line[12] and line[10] < line[11]
                    and low <= line[12] < high):
                continue
            priority = orders[line[0]]
            bucket = reference.setdefault(mode, [0, 0])
            if priority in ("1-URGENT", "2-HIGH"):
                bucket[0] += 1
            else:
                bucket[1] += 1
        result = session.execute(queries.query(12))
        measured = {row[0].rstrip(): (row[1], row[2]) for row in result.rows}
        assert measured == {mode: tuple(counts)
                            for mode, counts in reference.items()}

    def test_q18_large_orders(self, tpch):
        session, data = tpch
        quantity_per_order: dict = {}
        for line in data["LINEITEM"]:
            quantity_per_order[line[0]] = \
                quantity_per_order.get(line[0], 0.0) + line[4]
        big = {key for key, qty in quantity_per_order.items() if qty > 212}
        result = session.execute(queries.query(18))
        measured_orders = {row[2] for row in result.rows}
        assert measured_orders == big
        for row in result.rows:
            assert row[5] == pytest.approx(quantity_per_order[row[2]])

    def test_q16_supplier_counts(self, tpch):
        session, data = tpch
        complainers = {
            sup[0] for sup in data["SUPPLIER"]
            if "Customer" in sup[6] and "Complaints" in sup[6]
        }
        sizes = {49, 14, 23, 45, 19, 3, 36, 9}
        parts = {
            p[0]: (p[3].rstrip(), p[4], p[5]) for p in data["PART"]
            if p[3].rstrip() != "Brand#45"
            and not p[4].startswith("MEDIUM POLISHED")
            and p[5] in sizes
        }
        reference: dict = {}
        for ps in data["PARTSUPP"]:
            if ps[0] in parts and ps[1] not in complainers:
                reference.setdefault(parts[ps[0]], set()).add(ps[1])
        result = session.execute(queries.query(16))
        measured = {(row[0].rstrip(), row[1], row[2]): row[3]
                    for row in result.rows}
        assert measured == {key: len(sups) for key, sups in reference.items()}

    def test_q2_minimum_cost_suppliers(self):
        """Q2 returns empty at the module scale; verify it at a scale where
        the EUROPE/BRASS/size-15 filter selects rows, against a reference."""
        from repro.bench.harness import prepare_tpch_engine

        scale, seed = 0.004, 7
        engine = prepare_tpch_engine(scale=scale, seed=seed)
        data = datagen.generate(scale, seed)
        session = engine.create_session()
        result = session.execute(queries.query(2))

        nations = {n[0]: n[2] for n in data["NATION"]}
        regions = {rg[0]: rg[1].rstrip() for rg in data["REGION"]}
        europe = {k for k, rk in nations.items() if regions[rk] == "EUROPE"}
        supps = {s[0]: s for s in data["SUPPLIER"]}
        parts = {p[0] for p in data["PART"]
                 if p[5] == 15 and p[4].endswith("BRASS")}
        best: dict = {}
        for ps in data["PARTSUPP"]:
            if ps[0] in parts and supps[ps[1]][3] in europe:
                best[ps[0]] = min(best.get(ps[0], float("inf")), ps[3])
        expected = {
            (ps[0], supps[ps[1]][1].rstrip())
            for ps in data["PARTSUPP"]
            if ps[0] in parts and supps[ps[1]][3] in europe
            and ps[3] == best[ps[0]]
        }
        measured = {(row[3], row[1].rstrip()) for row in result.rows}
        if len(expected) <= 100:
            assert measured == expected
        else:
            assert result.rowcount == 100
