"""Integration tests for the wire protocol: server, client, concurrency."""

import datetime
import struct
import threading

import pytest

from repro.errors import BackendError, ProtocolError
from repro.core.engine import HyperQ
from repro.protocol.client import TdClient
from repro.protocol.messages import MessageKind, encode_message
from repro.protocol.server import ServerThread


@pytest.fixture
def served():
    engine = HyperQ()
    thread = ServerThread(engine)
    address = thread.start()
    yield engine, address
    thread.stop()


class TestBasicFlow:
    def test_logon_assigns_session_id(self, served):
        __, (host, port) = served
        with TdClient(host, port) as client:
            assert client.session_id is not None

    def test_ddl_dml_query_roundtrip(self, served):
        __, (host, port) = served
        with TdClient(host, port) as client:
            assert client.execute("CREATE TABLE W (A INTEGER, B VARCHAR(8), "
                                  "D DATE)").kind == "ok"
            count = client.execute(
                "INSERT INTO W VALUES (1, 'x', DATE '2014-01-01'), "
                "(2, NULL, NULL)")
            assert count.kind == "count"
            assert count.rowcount == 2
            result = client.execute("SEL A, B, D FROM W ORDER BY A")
            assert result.columns == ["A", "B", "D"]
            assert result.rows == [
                (1, "x", datetime.date(2014, 1, 1)),
                (2, None, None),
            ]

    def test_user_name_flows_into_session(self, served):
        __, (host, port) = served
        with TdClient(host, port, user="erika") as client:
            params = dict(client.execute("HELP SESSION").rows)
            assert params["USER"] == "ERIKA"

    def test_error_reported_and_session_survives(self, served):
        __, (host, port) = served
        with TdClient(host, port) as client:
            with pytest.raises(BackendError):
                client.execute("SEL * FROM MISSING_TABLE")
            client.execute("CREATE TABLE OK1 (A INTEGER)")
            assert client.execute("SEL COUNT(*) FROM OK1").rows == [(0,)]

    def test_large_result_streams_in_chunks(self, served):
        __, (host, port) = served
        with TdClient(host, port) as client:
            client.execute("CREATE TABLE BIGT (N INTEGER, PAD VARCHAR(64))")
            values = ", ".join(f"({i}, '{'x' * 60}')" for i in range(3000))
            client.execute(f"INSERT INTO BIGT VALUES {values}")
            result = client.execute("SEL N FROM BIGT ORDER BY N")
            assert result.rowcount == 3000
            assert result.rows[0] == (0,)
            assert result.rows[-1] == (2999,)


class TestConcurrency:
    def test_parallel_clients_have_isolated_volatile_tables(self, served):
        __, (host, port) = served
        outcomes: list[object] = []

        def worker(index: int) -> None:
            try:
                with TdClient(host, port, user=f"w{index}") as client:
                    client.execute("CREATE VOLATILE TABLE MINE (X INTEGER) "
                                   "ON COMMIT PRESERVE ROWS")
                    client.execute(f"INSERT INTO MINE VALUES ({index})")
                    rows = client.execute("SEL X FROM MINE").rows
                    outcomes.append(rows == [(index,)])
            except Exception as error:  # pragma: no cover - failure detail
                outcomes.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == [True] * 6

    def test_shared_tables_visible_across_clients(self, served):
        __, (host, port) = served
        with TdClient(host, port) as one:
            one.execute("CREATE TABLE SHARED_T (X INTEGER)")
            one.execute("INSERT INTO SHARED_T VALUES (42)")
        with TdClient(host, port) as two:
            assert two.execute("SEL X FROM SHARED_T").rows == [(42,)]


class TestProtocolStrictness:
    def test_query_before_logon_closes_connection(self, served):
        import socket

        __, (host, port) = served
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(encode_message(MessageKind.RUN_QUERY, b"SEL 1"))
            # Server drops the connection instead of answering.
            assert sock.recv(1) == b""

    def test_bad_magic_detected_client_side(self):
        with pytest.raises(ProtocolError):
            from repro.protocol.messages import HEADER

            class FakeSock:
                def __init__(self):
                    self.data = b"XX" + bytes(HEADER.size - 2)

                def recv(self, n):
                    chunk, self.data = self.data[:n], self.data[n:]
                    return chunk

            from repro.protocol.messages import read_message

            read_message(FakeSock())  # type: ignore[arg-type]

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(MessageKind.RUN_QUERY, b"x" * (64 * 1024 * 1024 + 1))

    def test_timing_recorded_for_wire_requests(self, served):
        engine, (host, port) = served
        with TdClient(host, port) as client:
            client.execute("CREATE TABLE TM (A INTEGER)")
            client.execute("INSERT INTO TM VALUES (1)")
            client.execute("SEL * FROM TM")
        log = engine.timing_log
        assert len(log.requests) == 3
        assert log.total > 0
