"""Integration tests: the workload manager behind the wire server.

Covers the bounded accept-side concurrency regression (hundreds of
concurrent connections never exceed the configured worker count), managed
end-to-end request flow, queue-deadline expiry surfacing as a clean FAILURE
with the session surviving, and straggler isolation under the managed path.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import HyperQ, ServerThread, TdClient
from repro.core.faults import SLOW_RESULT, FaultSchedule, FaultSpec
from repro.core.tracker import FeatureTracker
from repro.core.workload import (
    ADMIN, ETL, INTERACTIVE,
    WorkloadClassConfig, WorkloadConfig, WorkloadManager,
)
from repro.errors import BackendError


def _conn_threads() -> int:
    return sum(1 for thread in threading.enumerate()
               if thread.name.startswith("hyperq-conn"))


class TestBoundedAcceptConcurrency:
    """Satellite 1: the unbounded thread-per-connection bug stays fixed."""

    def test_200_connections_never_exceed_worker_cap(self):
        engine = HyperQ()
        baseline = _conn_threads()
        with ServerThread(engine, max_connections=4) as (host, port):
            sockets = []
            try:
                for __ in range(200):
                    sockets.append(
                        socket.create_connection((host, port), timeout=10))
                # Give the accept loop time to pull every connection off the
                # backlog and hand it to the pool.
                deadline = time.time() + 2.0
                while time.time() < deadline:
                    time.sleep(0.05)
                    assert _conn_threads() - baseline <= 4
            finally:
                for sock in sockets:
                    sock.close()
            # With the idlers gone, a real client queued behind them still
            # gets served on the same bounded pool.
            with _client(host, port) as client:
                client.execute("CREATE TABLE CAPPED (A INTEGER)")
                client.execute("INS INTO CAPPED VALUES (1)")
                result = client.execute("SEL A FROM CAPPED")
                assert result.rows == [(1,)]
            assert _conn_threads() - baseline <= 4

    def test_pool_worker_survives_handler_error(self):
        engine = HyperQ()
        with ServerThread(engine, max_connections=2) as (host, port):
            # Garbage instead of a LOGON frame kills the handler, not the
            # pool worker.
            for __ in range(3):
                sock = socket.create_connection((host, port), timeout=5)
                sock.sendall(b"\xff" * 16)
                sock.close()
            with _client(host, port) as client:
                assert client.execute("SEL DATE").kind == "rows"


def _client(host, port) -> TdClient:
    return TdClient(host, port, timeout=30.0)


def _managed_engine(config: WorkloadConfig | None = None,
                    faults: FaultSchedule | None = None):
    tracker = FeatureTracker()
    manager = WorkloadManager(config or WorkloadConfig())
    engine = HyperQ(tracker=tracker, faults=faults, workload=manager)
    return engine, manager, tracker


class TestManagedServer:
    def test_classified_requests_flow_end_to_end(self):
        engine, manager, tracker = _managed_engine()
        try:
            with ServerThread(engine) as (host, port):
                with _client(host, port) as client:
                    client.execute("CREATE TABLE T (A INTEGER)")  # admin
                    client.execute("INS INTO T VALUES (41)")      # etl
                    client.execute("UPDATE T SET A = A + 1")      # etl
                    result = client.execute("SEL A FROM T")       # interactive
                    assert result.rows == [(42,)]
            assert manager.stats.get(ADMIN, "admitted") >= 1
            assert manager.stats.get(ETL, "admitted") == 2
            assert manager.stats.get(INTERACTIVE, "admitted") >= 1
            assert manager.stats.total("shed") == 0
            assert tracker.workload_total("admitted") >= 4
            # Queue wait was measured and folded into the timing log.
            assert engine.timing_log.queue_wait > 0.0
            for timing in engine.timing_log.requests:
                assert timing.queue_wait >= 0.0
        finally:
            manager.close()

    def test_managed_requests_produce_valid_span_trees(self):
        """Every managed wire request ends with exactly one complete span
        tree: the classify and queue_wait stages appear on the connection
        side, the pipeline stages follow on the pool worker (cross-thread
        hand-off), and all children nest within the root interval."""
        from repro.core.trace import assert_span_tree

        engine, manager, __ = _managed_engine()
        try:
            with ServerThread(engine) as (host, port):
                with _client(host, port) as client:
                    client.execute("CREATE TABLE T (A INTEGER)")
                    client.execute("INS INTO T VALUES (41)")
                    assert client.execute("SEL A FROM T").rows == [(41,)]

            hub = engine.tracing
            deadline = time.monotonic() + 5

            def finished_wire_traces():
                traces = [hub.get_trace(tid) for tid in hub.trace_ids()]
                return [t for t in traces if t is not None and t.done
                        and "protocol_decode" in t.stage_names()]

            while time.monotonic() < deadline \
                    and len(finished_wire_traces()) < 3:
                time.sleep(0.01)
            traced = finished_wire_traces()
            assert len(traced) == 3
            for trace in traced:
                assert_span_tree(trace)
                names = trace.stage_names()
                assert names[0] == "request"
                assert "classify" in names
                assert "queue_wait" in names
                assert "odbc_execute" in names
                roots = [s for s in trace.spans if s.parent_id is None]
                assert len(roots) == 1
            select = next(t for t in traced if t.sql.startswith("SEL"))
            classify = next(s for s in select.spans if s.name == "classify")
            assert classify.attrs["wl_class"] == INTERACTIVE
        finally:
            manager.close()

    def test_queue_expired_request_gets_clean_failure(self):
        """Satellite 2: an expired request is rejected with a FAILURE reply
        and the session keeps serving subsequent requests."""
        faults = FaultSchedule(0, [
            # The second admission decision arrives with 30s of synthetic
            # queue age — an instant miss of interactive's 5s deadline.
            FaultSpec(SLOW_RESULT, "admission", at=(2,), delay=30.0),
        ])
        engine, manager, __ = _managed_engine(faults=faults)
        try:
            with ServerThread(engine) as (host, port):
                with _client(host, port) as client:
                    client.execute("CREATE TABLE T (A INTEGER)")
                    with pytest.raises(BackendError, match="deadline"):
                        client.execute("SEL A FROM T")
                    # Same connection, same session: alive and well.
                    assert client.execute("SEL A FROM T").rows == []
            assert manager.stats.get(INTERACTIVE, "deadline_missed") == 1
        finally:
            manager.close()

    def test_real_queue_expiry_behind_a_slow_request(self):
        """A genuinely queued request whose class deadline lapses is
        rejected before execution, quickly, while the slow request that
        caused the backlog completes normally."""
        classes = dict(WorkloadConfig().classes)
        classes[INTERACTIVE] = WorkloadClassConfig(
            INTERACTIVE, weight=4.0, deadline=0.15)
        config = WorkloadConfig(classes=classes, workers=1)
        faults = FaultSchedule(0, [
            # after=2 skips the setup CREATE; times=1 stalls exactly the
            # one statement naming SLOWTAG that follows it.
            FaultSpec(SLOW_RESULT, "wire", match="SLOWTAG", after=2,
                      times=1, delay=0.5),
        ])
        engine, manager, __ = _managed_engine(config, faults)
        try:
            with ServerThread(engine) as (host, port):
                with _client(host, port) as setup:
                    setup.execute("CREATE TABLE SLOWTAG (A INTEGER)")

                started = threading.Event()
                slow_result = {}

                def slow_query():
                    with _client(host, port) as slow:
                        started.set()
                        slow_result["value"] = slow.execute(
                            "SEL A FROM SLOWTAG")

                thread = threading.Thread(target=slow_query)
                thread.start()
                started.wait(5)
                time.sleep(0.1)  # let the slow query occupy the sole worker
                with _client(host, port) as fast:
                    begin = time.monotonic()
                    with pytest.raises(BackendError, match="deadline"):
                        fast.execute("SEL DATE")
                    elapsed = time.monotonic() - begin
                    # Rejected at its own 0.15s deadline, not after the
                    # 0.5s straggler ahead of it.
                    assert elapsed < 0.45
                    thread.join(timeout=5)
                    # The backlog drained; the same rejected session works.
                    assert fast.execute("SEL DATE").kind == "rows"
                assert slow_result["value"].kind == "rows"
            assert manager.stats.get(INTERACTIVE, "deadline_missed") >= 1
        finally:
            manager.close()

    def test_request_timeout_straggler_does_not_break_session(self):
        faults = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "wire", match="SLOWTAG", after=2,
                      times=1, delay=0.4),
        ])
        engine, manager, __ = _managed_engine(faults=faults)
        try:
            with ServerThread(engine, request_timeout=0.1) as (host, port):
                with _client(host, port) as client:
                    client.execute("CREATE TABLE SLOWTAG (A INTEGER)")
                    with pytest.raises(BackendError, match="timed out"):
                        client.execute("SEL A FROM SLOWTAG")
                    # The straggler is awaited before the next request runs,
                    # so the session is never driven concurrently.
                    client.execute("INS INTO SLOWTAG VALUES (7)")
                    assert client.execute(
                        "SEL A FROM SLOWTAG WHERE A = 7").rows == [(7,)]
            assert engine.resilience.timeouts >= 1
        finally:
            manager.close()

    def test_timeout_while_queued_cancels_cleanly(self):
        """A request that hits ``request_timeout`` while still *queued* is
        cancelled by the manager: the client gets a clean FAILURE, nothing
        straggles, and the connection-pool worker survives. (A
        CancelledError escaping the discard callback used to kill the
        worker, permanently shrinking the pool.)"""
        config = WorkloadConfig(workers=1)
        faults = FaultSchedule(0, [
            # after=2 skips the setup CREATE; the one SLOWTAG query that
            # follows stalls long enough to back up the sole worker.
            FaultSpec(SLOW_RESULT, "wire", match="SLOWTAG", after=2,
                      times=1, delay=0.6),
        ])
        engine, manager, __ = _managed_engine(config, faults)
        try:
            with ServerThread(engine, request_timeout=0.15,
                              max_connections=2) as (host, port):
                with _client(host, port) as setup:
                    setup.execute("CREATE TABLE SLOWTAG (A INTEGER)")

                started = threading.Event()

                def slow_query():
                    with _client(host, port) as slow:
                        started.set()
                        # Runs past the request timeout itself; its own
                        # FAILURE and straggler handling are exercised by
                        # the straggler test above.
                        with pytest.raises(BackendError, match="timed out"):
                            slow.execute("SEL A FROM SLOWTAG")

                thread = threading.Thread(target=slow_query)
                thread.start()
                started.wait(5)
                time.sleep(0.1)  # let the slow query occupy the sole worker
                with _client(host, port) as fast:
                    begin = time.monotonic()
                    with pytest.raises(BackendError, match="timed out"):
                        fast.execute("SEL DATE")
                    # Cancelled at the 0.15s request timeout while queued,
                    # not after the 0.6s blocker ahead of it.
                    assert time.monotonic() - begin < 0.5
                    thread.join(timeout=5)
                    # The slow client got its FAILURE early; its straggler
                    # may still occupy the sole worker — let it drain.
                    time.sleep(0.8)
                    # Same connection keeps working: the pool worker did
                    # not die and no straggler holds the session.
                    assert fast.execute("SEL DATE").kind == "rows"
                # A fresh connection is served too — pool capacity intact.
                with _client(host, port) as again:
                    assert again.execute("SEL DATE").kind == "rows"
            # The cancelled request was queued but never admitted/run.
            assert manager.stats.get(INTERACTIVE, "queued") \
                > manager.stats.get(INTERACTIVE, "admitted")
        finally:
            manager.close()

    def test_session_override_param_reaches_classifier(self):
        engine, manager, __ = _managed_engine()
        try:
            with ServerThread(engine) as (host, port):
                with _client(host, port) as client:
                    client.execute("CREATE TABLE T (A INTEGER)")
                    client.execute("SET SESSION WORKLOAD = 'etl'")
                    client.execute("SEL A FROM T")
            assert manager.stats.get(ETL, "admitted") >= 1
        finally:
            manager.close()
