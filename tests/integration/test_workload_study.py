"""Integration test: the customer workload study (Table 1, Figures 8a/8b).

The measured numbers must land on the paper's values because the tracker
actually detects every feature in the generated workloads — a regression in
any rewrite path shows up here as a drifted percentage.
"""

import pytest

from repro.bench.harness import run_workload_study
from repro.workloads import customer
from repro.workloads.features import FeatureClass


@pytest.fixture(scope="module")
def study():
    return {
        1: run_workload_study(customer.HEALTH),
        2: run_workload_study(customer.TELCO),
    }


class TestTable1:
    def test_health_counts(self, study):
        result = study[1]
        assert result.total_queries == 39_731
        assert result.distinct_queries == 3_778

    def test_telco_counts(self, study):
        result = study[2]
        assert result.total_queries == 192_753
        assert result.distinct_queries == 10_446

    def test_every_query_translates_cleanly(self, study):
        assert study[1].translation_errors == 0
        assert study[2].translation_errors == 0

    def test_frequencies_are_deterministic_and_skewed(self):
        first = customer.frequencies(customer.HEALTH)
        second = customer.frequencies(customer.HEALTH)
        assert first == second
        assert max(first) > 10 * min(first)  # heavy repetition skew


class TestFigure8a:
    """Fraction of the 9 tracked features per class present per workload."""

    PAPER = {
        1: {FeatureClass.TRANSLATION: 5 / 9, FeatureClass.TRANSFORMATION: 7 / 9,
            FeatureClass.EMULATION: 3 / 9},
        2: {FeatureClass.TRANSLATION: 2 / 9, FeatureClass.TRANSFORMATION: 6 / 9,
            FeatureClass.EMULATION: 3 / 9},
    }

    @pytest.mark.parametrize("workload", [1, 2])
    def test_presence_matches_paper(self, study, workload):
        measured = study[workload].presence
        for cls, expected in self.PAPER[workload].items():
            assert measured[cls] == pytest.approx(expected), cls


class TestFigure8b:
    """Fraction of distinct queries affected per class."""

    PAPER = {
        1: {FeatureClass.TRANSLATION: 0.014, FeatureClass.TRANSFORMATION: 0.336,
            FeatureClass.EMULATION: 0.002},
        2: {FeatureClass.TRANSLATION: 0.002, FeatureClass.TRANSFORMATION: 0.040,
            FeatureClass.EMULATION: 0.791},
    }

    @pytest.mark.parametrize("workload", [1, 2])
    def test_affected_fractions_match_paper(self, study, workload):
        measured = study[workload].affected
        for cls, expected in self.PAPER[workload].items():
            assert measured[cls] == pytest.approx(expected, abs=0.005), cls

    def test_keyword_translation_is_the_small_minority(self, study):
        """The paper's key observation: 'very few differences are due to
        keyword translation. The majority of queries require more involved
        rewrites.'"""
        for result in study.values():
            translation = result.affected[FeatureClass.TRANSLATION]
            involved = (result.affected[FeatureClass.TRANSFORMATION]
                        + result.affected[FeatureClass.EMULATION])
            assert involved > 2 * translation
