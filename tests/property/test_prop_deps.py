"""Property check for the dependency extractor: over the whole seeded
conformance corpus, the tables the backend executor actually touches
during execution must be a subset of the tables the extractor predicted
from the bound statement. An under-approximation here would mean a
result-cache entry that misses an invalidation — the one bug class the
semantic cache cannot tolerate."""

import pytest

from repro.backend.catalog import Catalog
from repro.core.deps import extract
from repro.core.engine import HyperQ

from tests.conformance.generator import (GENERATOR_SETUP, generate_statements,
                                         tpch_ddl)


@pytest.fixture(scope="module")
def session():
    engine = HyperQ()
    s = engine.create_session()
    for ddl in tpch_ddl() + GENERATOR_SETUP:
        s.execute(ddl)
    return s


def test_extracted_tables_cover_executor_scans(session, monkeypatch):
    recorded: set[str] = set()
    original = Catalog.table

    def spy(self, name):
        recorded.add(str(name).upper())
        return original(self, name)

    monkeypatch.setattr(Catalog, "table", spy)

    checked = 0
    for name, sql in generate_statements():
        bound = session.binder.bind(session.parser.parse_statement(sql))
        deps = extract(bound, session.catalog)
        recorded.clear()
        session.execute(sql)
        if deps.wildcard:
            continue  # "depends on everything" covers any scan by fiat
        touched = {table for table in recorded
                   if not table.startswith("_HQ_")}  # emulator temps
        missing = touched - set(deps.all_tables)
        assert not missing, (
            f"{name}: executor touched {sorted(missing)} but the extractor "
            f"only predicted {deps.all_tables} for: {sql}")
        checked += 1

    # the corpus really exercised the property (≥200 statements, and the
    # wildcard escape hatch did not swallow the bulk of them)
    assert checked >= 200
