"""Property tests for the compiled row codecs (``RowCodec``).

The compiled encode/decode functions are an optimization; the behavioral
contract is the reference implementation
(``encode_rows_reference``/``decode_rows_reference``), which this battery
holds them to three ways:

* **round-trip** — every encodable row comes back exactly, across NULLs,
  empty strings, non-ASCII text, maximum-length varchars, boundary
  integers, and decimals;
* **byte identity** — the compiled encoder produces byte-for-byte the
  reference encoder's output (old clients must keep decoding new servers),
  and the compiled decoder reads reference-encoded blobs;
* **chunk-boundary invariance** — splitting a row batch into arbitrary
  chunks and concatenating the decoded chunks equals decoding the whole:
  records never straddle or depend on chunk boundaries.
"""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import encoding as enc
from repro.protocol.encoding import ColumnMeta, RowCodec

# -- value strategies per wire type code ----------------------------------------------

# DATE is carried as the Teradata integer (YYYY-1900)MMDD, which cannot
# represent years before 1900.
_dates = st.dates(min_value=datetime.date(1900, 1, 1),
                  max_value=datetime.date(9999, 12, 31))
# Naive datetimes only: the wire carries ``isoformat(sep=" ")`` and the
# decoder parses it back without timezone handling.
_datetimes = st.datetimes(min_value=datetime.datetime(1900, 1, 1),
                          max_value=datetime.datetime(9999, 12, 28))
_text = st.text(max_size=120)  # includes empty strings and non-ASCII

_VALUES_BY_CODE = {
    enc.CODE_SMALLINT: st.integers(min_value=-(2 ** 15),
                                   max_value=2 ** 15 - 1),
    enc.CODE_INTEGER: st.integers(min_value=-(2 ** 31),
                                  max_value=2 ** 31 - 1),
    enc.CODE_BIGINT: st.integers(min_value=-(2 ** 63),
                                 max_value=2 ** 63 - 1),
    enc.CODE_FLOAT: st.floats(allow_nan=False, allow_infinity=False,
                              width=64),
    enc.CODE_DECIMAL: st.floats(allow_nan=False, allow_infinity=False,
                                width=64),
    enc.CODE_CHAR: _text,
    enc.CODE_VARCHAR: _text,
    enc.CODE_DATE: _dates,
    enc.CODE_TIMESTAMP: _datetimes,
    enc.CODE_BOOLEAN: st.booleans(),
    enc.CODE_TIME: st.times(),
}

# Up to 10 columns so the NULL bitmap regularly crosses its one-byte
# boundary (9+ columns need two bitmap bytes).
_schemas = st.lists(st.sampled_from(sorted(_VALUES_BY_CODE)),
                    min_size=1, max_size=10)


def _metas_for(codes: list[int]) -> list[ColumnMeta]:
    return [ColumnMeta(name=f"C{i}", code=code)
            for i, code in enumerate(codes)]


@st.composite
def schema_and_rows(draw, max_rows: int = 30):
    codes = draw(_schemas)
    row = st.tuples(*[st.one_of(st.none(), _VALUES_BY_CODE[code])
                      for code in codes])
    rows = draw(st.lists(row, max_size=max_rows))
    return codes, rows


class TestRoundTrip:
    @given(data=schema_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_roundtrip(self, data):
        codes, rows = data
        codec = RowCodec.for_metas(_metas_for(codes))
        assert codec.decode(codec.encode(rows)) == rows

    def test_max_length_varchar(self):
        # The u16 length prefix caps strings at 65535 UTF-8 bytes; the
        # maximum must survive, one byte more must be rejected.
        import struct

        import pytest

        codec = RowCodec.for_codes((enc.CODE_VARCHAR,))
        rows = [("x" * 65535,), ("",), (None,)]
        assert codec.decode(codec.encode(rows)) == rows
        with pytest.raises((struct.error, Exception)):
            codec.encode([("x" * 65536,)])

    def test_boundary_integers(self):
        for code, lo, hi in [
            (enc.CODE_SMALLINT, -(2 ** 15), 2 ** 15 - 1),
            (enc.CODE_INTEGER, -(2 ** 31), 2 ** 31 - 1),
            (enc.CODE_BIGINT, -(2 ** 63), 2 ** 63 - 1),
        ]:
            codec = RowCodec.for_codes((code,))
            rows = [(lo,), (hi,), (0,), (-1,), (None,)]
            assert codec.decode(codec.encode(rows)) == rows

    def test_empty_batch(self):
        codec = RowCodec.for_codes((enc.CODE_INTEGER, enc.CODE_VARCHAR))
        assert codec.encode([]) == b""
        assert codec.decode(b"") == []

    def test_all_null_row(self):
        codes = tuple(sorted(_VALUES_BY_CODE))
        codec = RowCodec.for_codes(codes)
        rows = [tuple(None for __ in codes)]
        assert codec.decode(codec.encode(rows)) == rows


class TestReferenceByteIdentity:
    @given(data=schema_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_compiled_encoder_matches_reference(self, data):
        codes, rows = data
        metas = _metas_for(codes)
        compiled = RowCodec.for_metas(metas).encode(rows)
        reference = enc.encode_rows_reference(metas, rows)
        assert compiled == reference

    @given(data=schema_and_rows())
    @settings(max_examples=100, deadline=None)
    def test_compiled_decoder_reads_reference_blobs(self, data):
        codes, rows = data
        metas = _metas_for(codes)
        blob = enc.encode_rows_reference(metas, rows)
        assert RowCodec.for_metas(metas).decode(blob) == rows

    @given(data=schema_and_rows())
    @settings(max_examples=100, deadline=None)
    def test_reference_decoder_reads_compiled_blobs(self, data):
        codes, rows = data
        metas = _metas_for(codes)
        blob = RowCodec.for_metas(metas).encode(rows)
        assert enc.decode_rows_reference(metas, blob) == rows

    @given(data=schema_and_rows())
    @settings(max_examples=100, deadline=None)
    def test_module_level_api_delegates(self, data):
        codes, rows = data
        metas = _metas_for(codes)
        blob = enc.encode_rows(metas, rows)
        assert blob == enc.encode_rows_reference(metas, rows)
        assert enc.decode_rows(metas, blob) == rows


class TestChunkInvariance:
    @given(data=schema_and_rows(max_rows=40),
           splits=st.lists(st.integers(min_value=1, max_value=7),
                           max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_chunked_encode_concatenates(self, data, splits):
        """Encoding arbitrary row chunks and concatenating the blobs is
        byte-identical to encoding the whole batch, and decodes to the
        same rows — the streaming pipeline's per-chunk encode must not
        depend on where chunk boundaries fall."""
        codes, rows = data
        codec = RowCodec.for_metas(_metas_for(codes))
        whole = codec.encode(rows)
        chunks = []
        remaining = list(rows)
        split_iter = iter(splits)
        while remaining:
            size = next(split_iter, 3)
            chunks.append(codec.encode(remaining[:size]))
            remaining = remaining[size:]
        assert b"".join(chunks) == whole
        decoded = []
        for chunk in chunks:
            decoded.extend(codec.decode(chunk))
        assert decoded == rows

    @given(data=schema_and_rows(max_rows=20))
    @settings(max_examples=100, deadline=None)
    def test_decode_accepts_memoryview(self, data):
        codes, rows = data
        codec = RowCodec.for_metas(_metas_for(codes))
        blob = codec.encode(rows)
        assert codec.decode(memoryview(blob)) == rows
