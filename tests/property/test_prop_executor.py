"""Property-based tests on backend executor invariants.

Every property compares engine output against an independent Python
recomputation over randomly generated tables, so optimizer rewrites
(pushdown, decorrelation, OR factorization) cannot silently change results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import Database

values = st.one_of(st.none(), st.integers(min_value=-20, max_value=20))
row_lists = st.lists(st.tuples(values, values), min_size=0, max_size=30)


def load(rows, name="T"):
    database = Database()
    session = database.create_session()
    session.execute(f"CREATE TABLE {name} (A INTEGER, B INTEGER)")
    if rows:
        literals = ", ".join(
            f"({'NULL' if a is None else a}, {'NULL' if b is None else b})"
            for a, b in rows)
        session.execute(f"INSERT INTO {name} VALUES {literals}")
    return session


class TestFilterProperties:
    @given(rows=row_lists, threshold=st.integers(min_value=-20, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_python_semantics(self, rows, threshold):
        session = load(rows)
        result = session.execute(f"SELECT A, B FROM T WHERE A > {threshold}")
        expected = [(a, b) for a, b in rows if a is not None and a > threshold]
        assert sorted(result.rows, key=_key) == sorted(expected, key=_key)

    @given(rows=row_lists, low=st.integers(-10, 0), high=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_conjunction_equals_intersection(self, rows, low, high):
        session = load(rows)
        both = session.execute(
            f"SELECT A, B FROM T WHERE A >= {low} AND A <= {high}").rows
        expected = [(a, b) for a, b in rows
                    if a is not None and low <= a <= high]
        assert sorted(both, key=_key) == sorted(expected, key=_key)


class TestAggregateProperties:
    @given(rows=row_lists)
    @settings(max_examples=40, deadline=None)
    def test_global_aggregates(self, rows):
        session = load(rows)
        result = session.execute("SELECT COUNT(*), COUNT(A), SUM(A) FROM T")
        non_null = [a for a, __ in rows if a is not None]
        expected_sum = sum(non_null) if non_null else None
        assert result.rows == [(len(rows), len(non_null), expected_sum)]

    @given(rows=row_lists)
    @settings(max_examples=40, deadline=None)
    def test_group_by_partitions_rows(self, rows):
        session = load(rows)
        result = session.execute("SELECT B, COUNT(*) FROM T GROUP BY B")
        expected: dict = {}
        for __, b in rows:
            expected[b] = expected.get(b, 0) + 1
        assert dict(result.rows) == expected
        # Group counts sum back to the row count (no row lost or duplicated).
        assert sum(count for __, count in result.rows) == len(rows)


class TestSortProperties:
    @given(rows=row_lists)
    @settings(max_examples=40, deadline=None)
    def test_order_by_sorts_with_nulls_last(self, rows):
        session = load(rows)
        result = session.execute("SELECT A FROM T ORDER BY A")
        got = [row[0] for row in result.rows]
        non_null = sorted(a for a, __ in rows if a is not None)
        nulls = [None] * sum(1 for a, __ in rows if a is None)
        assert got == non_null + nulls

    @given(rows=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_sort_is_stable_permutation(self, rows):
        session = load(rows)
        result = session.execute("SELECT A, B FROM T ORDER BY A DESC")
        assert sorted(result.rows, key=_key) == sorted(rows, key=_key)

    @given(rows=row_lists, limit=st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_limit_is_prefix_of_full_sort(self, rows, limit):
        session = load(rows)
        full = session.execute("SELECT A FROM T ORDER BY A NULLS LAST").rows
        limited = session.execute(
            f"SELECT A FROM T ORDER BY A NULLS LAST LIMIT {limit}").rows
        assert limited == full[:limit]


class TestSetOpProperties:
    @given(left=row_lists, right=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_union_all_cardinality(self, left, right):
        session = load(left, "L")
        session.execute("CREATE TABLE R (A INTEGER, B INTEGER)")
        if right:
            literals = ", ".join(
                f"({'NULL' if a is None else a}, {'NULL' if b is None else b})"
                for a, b in right)
            session.execute(f"INSERT INTO R VALUES {literals}")
        result = session.execute(
            "(SELECT A, B FROM L) UNION ALL (SELECT A, B FROM R)")
        assert result.rowcount == len(left) + len(right)

    @given(rows=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_union_distinct_is_set_semantics(self, rows):
        session = load(rows)
        result = session.execute("(SELECT A FROM T) UNION (SELECT A FROM T)")
        assert result.rowcount == len({a for a, __ in rows})


class TestDecorrelationEquivalence:
    """EXISTS evaluated via hash semi-join must equal Python set logic."""

    @given(outer=row_lists, inner=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_exists_matches_reference(self, outer, inner):
        session = load(outer, "O")
        session.execute("CREATE TABLE I (A INTEGER, B INTEGER)")
        if inner:
            literals = ", ".join(
                f"({'NULL' if a is None else a}, {'NULL' if b is None else b})"
                for a, b in inner)
            session.execute(f"INSERT INTO I VALUES {literals}")
        result = session.execute(
            "SELECT COUNT(*) FROM O WHERE EXISTS "
            "(SELECT 1 FROM I WHERE I.A = O.A)")
        keys = {a for a, __ in inner if a is not None}
        expected = sum(1 for a, __ in outer if a is not None and a in keys)
        assert result.rows == [(expected,)]

    @given(outer=row_lists, inner=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_not_exists_is_complement(self, outer, inner):
        session = load(outer, "O")
        session.execute("CREATE TABLE I (A INTEGER, B INTEGER)")
        if inner:
            literals = ", ".join(
                f"({'NULL' if a is None else a}, {'NULL' if b is None else b})"
                for a, b in inner)
            session.execute(f"INSERT INTO I VALUES {literals}")
        hit = session.execute(
            "SELECT COUNT(*) FROM O WHERE EXISTS "
            "(SELECT 1 FROM I WHERE I.A = O.A)").rows[0][0]
        miss = session.execute(
            "SELECT COUNT(*) FROM O WHERE NOT EXISTS "
            "(SELECT 1 FROM I WHERE I.A = O.A)").rows[0][0]
        assert hit + miss == len(outer)


def _key(row):
    return tuple((value is None, value if value is not None else 0)
                 for value in row)
