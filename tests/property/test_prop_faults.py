"""Property-based tests on the fault-injection plane.

Two invariants carry the whole subsystem:

* **determinism** — a :class:`FaultSchedule` is a pure function of its seed
  and the call sequence, so the same seed over the same workload yields a
  byte-identical event log, run after run;
* **transparency** — a schedule that injects nothing behaves exactly like
  no schedule at all: same rows, same cache counters, zero resilience
  activity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import HyperQ
from repro.core.faults import (
    BACKEND_TIMEOUT, BACKEND_TRANSIENT, SLOW_RESULT,
    FaultSchedule, FaultSpec, RetryPolicy, apply_fault,
)

# Generated specs are capped at 3 specs x 4 firings = 12 consecutive
# faults, so a 16-attempt budget guarantees every statement eventually
# lands and the workload always completes.
_FAST = RetryPolicy(max_attempts=16, base_delay=0.0001, max_delay=0.0005)

#: Specs whose faults the retry loop absorbs.
transient_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from([BACKEND_TRANSIENT, BACKEND_TIMEOUT]),
    site=st.just("odbc"),
    every=st.integers(min_value=3, max_value=9),
    after=st.integers(min_value=0, max_value=5),
    times=st.integers(min_value=1, max_value=4),
)

probability_specs = st.builds(
    FaultSpec,
    kind=st.just(BACKEND_TRANSIENT),
    site=st.just("odbc"),
    probability=st.floats(min_value=0.05, max_value=0.3),
    times=st.integers(min_value=1, max_value=3),
)

schedules = st.builds(
    FaultSchedule,
    st.integers(min_value=0, max_value=2 ** 32 - 1),
    st.lists(st.one_of(transient_specs, probability_specs),
             min_size=0, max_size=3),
)


def run_workload(schedule):
    """A fixed mini-workload; returns (rows, cache stats, resilience)."""
    engine = HyperQ(faults=schedule, retry=_FAST)
    session = engine.create_session()
    session.execute("CREATE TABLE P (A INTEGER, B INTEGER)")
    session.execute("INSERT INTO P VALUES (1, 10), (2, 20), (3, 30)")
    session.execute("UPD P SET B = B + 1 WHERE A = 2")
    rows = []
    for __ in range(4):
        rows.append(session.execute("SEL A, B FROM P ORDER BY A").rows)
    rows.append(session.execute("SEL COUNT(*) FROM P").rows)
    session.close()
    return rows, engine.cache_stats().as_dict(), engine.resilience_stats()


class TestScheduleDeterminism:
    @given(schedule=schedules)
    @settings(max_examples=30, deadline=None)
    def test_same_seed_gives_byte_identical_event_logs(self, schedule):
        first = FaultSchedule(schedule.seed, schedule.specs)
        second = FaultSchedule(schedule.seed, schedule.specs)
        rows_a = run_workload(first)[0]
        rows_b = run_workload(second)[0]
        assert first.event_log_bytes() == second.event_log_bytes()
        assert rows_a == rows_b

    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           probability=st.floats(min_value=0.1, max_value=0.9),
           calls=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_probability_draws_are_a_pure_function_of_the_seed(
            self, seed, probability, calls):
        spec = FaultSpec(BACKEND_TRANSIENT, "odbc", probability=probability)
        outcomes = []
        for __ in range(2):
            schedule = FaultSchedule(seed, [spec])
            outcomes.append(tuple(
                schedule.draw("odbc") is not None for _ in range(calls)))
        assert outcomes[0] == outcomes[1]

    @given(schedule=schedules)
    @settings(max_examples=30, deadline=None)
    def test_log_length_matches_injected_count(self, schedule):
        run_workload(schedule)
        injected_lines = [line for line in schedule.event_log()
                          if line.startswith("inject ")]
        assert len(injected_lines) == schedule.injected_count()


class TestFaultFreeTransparency:
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_empty_schedule_is_behaviorally_invisible(self, seed):
        baseline_rows, baseline_cache, baseline_res = run_workload(None)
        schedule = FaultSchedule(seed, [])
        rows, cache, resilience = run_workload(schedule)
        assert rows == baseline_rows
        assert cache == baseline_cache
        assert resilience == baseline_res
        assert all(count == 0 for count in resilience.values())
        assert schedule.injected_count() == 0

    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_never_matching_spec_is_behaviorally_invisible(self, seed):
        baseline_rows = run_workload(None)[0]
        # A window that opens far beyond the workload's call count.
        schedule = FaultSchedule(seed, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", after=10_000)])
        rows, __, resilience = run_workload(schedule)
        assert rows == baseline_rows
        assert all(count == 0 for count in resilience.values())
        assert schedule.injected_count() == 0


class TestApplyFaultTotality:
    @given(delay=st.floats(min_value=0.0, max_value=0.001))
    @settings(max_examples=10, deadline=None)
    def test_slow_result_never_raises(self, delay):
        schedule = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "odbc", every=1, delay=delay)])
        fault = schedule.draw("odbc")
        assert fault is not None
        apply_fault(fault)  # stalls, returns None, never raises
