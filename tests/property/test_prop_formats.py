"""Property-based tests for the binary formats and the Teradata DATE
encoding: every encodable value must round-trip exactly."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tdf
from repro.protocol import encoding as enc
from repro.xtra import types as t

# Values TDF must carry losslessly.
scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**62, max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=60),
    st.dates(min_value=datetime.date(1, 1, 1),
             max_value=datetime.date(9999, 12, 31)),
    st.binary(max_size=40),
)

rows_strategy = st.integers(min_value=1, max_value=6).flatmap(
    lambda width: st.lists(
        st.tuples(*([scalar_values] * width)), max_size=25))


class TestTDFRoundtrip:
    @given(rows=rows_strategy)
    @settings(max_examples=80, deadline=None)
    def test_batch_roundtrip(self, rows):
        width = len(rows[0]) if rows else 3
        columns = [f"C{i}" for i in range(width)]
        packet = tdf.encode_batch(columns, rows)
        decoded_columns, decoded_rows = tdf.decode_batch(packet)
        assert decoded_columns == columns
        assert decoded_rows == rows

    @given(items=st.lists(st.one_of(scalar_values,
                                    st.lists(scalar_values, max_size=4)),
                          max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_nested_list_roundtrip(self, items):
        packet = tdf.encode_batch(["L"], [(items,)])
        __, rows = tdf.decode_batch(packet)
        assert rows == [(items,)]


class TestWireEncodingRoundtrip:
    wire_row = st.tuples(
        st.one_of(st.none(), st.integers(min_value=-2**31, max_value=2**31 - 1)),
        st.one_of(st.none(), st.text(max_size=50)),
        st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
        st.one_of(st.none(), st.dates(min_value=datetime.date(1900, 1, 1),
                                      max_value=datetime.date(2999, 12, 31))),
        st.one_of(st.none(), st.booleans()),
    )

    @given(rows=st.lists(wire_row, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_rows_roundtrip(self, rows):
        metas = [
            enc.ColumnMeta("I", enc.CODE_INTEGER),
            enc.ColumnMeta("S", enc.CODE_VARCHAR),
            enc.ColumnMeta("F", enc.CODE_FLOAT),
            enc.ColumnMeta("D", enc.CODE_DATE),
            enc.ColumnMeta("B", enc.CODE_BOOLEAN),
        ]
        blob = enc.encode_rows(metas, rows)
        assert enc.decode_rows(metas, blob) == rows

    @given(names=st.lists(st.text(min_size=1, max_size=30), min_size=1,
                          max_size=10, unique=True),
           code=st.sampled_from([enc.CODE_INTEGER, enc.CODE_VARCHAR,
                                 enc.CODE_DATE]))
    @settings(max_examples=40, deadline=None)
    def test_meta_roundtrip(self, names, code):
        metas = [enc.ColumnMeta(name, code) for name in names]
        assert enc.decode_meta(enc.encode_meta(metas)) == metas


class TestTeradataDateEncoding:
    @given(date=st.dates(min_value=datetime.date(1900, 1, 1),
                         max_value=datetime.date(2999, 12, 31)))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, date):
        assert t.teradata_int_to_date(t.date_to_teradata_int(date)) == date

    @given(date=st.dates(min_value=datetime.date(1900, 1, 1),
                         max_value=datetime.date(2999, 12, 31)))
    @settings(max_examples=200, deadline=None)
    def test_encoding_preserves_order(self, date):
        later = date + datetime.timedelta(days=1)
        assert t.date_to_teradata_int(later) > t.date_to_teradata_int(date)
