"""Property-based tests on the metrics layer of :mod:`repro.core.trace`.

The load-bearing invariants:

* **merge algebra** — histogram merge is associative and commutative
  (bucket-count addition), so per-thread/per-replica histograms combine in
  any order without changing any quantile;
* **quantile error bound** — a log-linear histogram with ``SUBBUCKETS``
  linear buckets per octave answers any quantile within a relative error
  of ``1/SUBBUCKETS`` (the estimate is the bucket's upper bound, so it
  never *under*-reports a latency);
* **counter monotonicity** — counters never go negative, under concurrency
  and under adversarial decrement attempts.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import Counter, Histogram, MetricsRegistry

#: Positive magnitudes spanning the microsecond-to-hour latency range.
values = st.floats(min_value=1e-7, max_value=1e4,
                   allow_nan=False, allow_infinity=False)
#: Observation batches, including empty and zero/negative-clamped entries.
batches = st.lists(st.one_of(values, st.just(0.0)), max_size=60)


def _hist(observations) -> Histogram:
    h = Histogram("h")
    for value in observations:
        h.observe(value)
    return h


def _assert_states_equal(a, b):
    """Exact on counts/min/max; the running float sum only up to float
    addition reordering (sums themselves are not associative)."""
    assert a[:3] == b[:3]
    assert a[4:] == b[4:]
    assert math.isclose(a[3], b[3], rel_tol=1e-9, abs_tol=1e-12)


# -- merge algebra -------------------------------------------------------------------


@given(batches, batches)
@settings(max_examples=200, deadline=None)
def test_merge_commutative(xs, ys):
    ab = _hist(xs).merged(_hist(ys))
    ba = _hist(ys).merged(_hist(xs))
    _assert_states_equal(ab.state(), ba.state())


@given(batches, batches, batches)
@settings(max_examples=150, deadline=None)
def test_merge_associative(xs, ys, zs):
    left = _hist(xs).merged(_hist(ys)).merged(_hist(zs))
    right = _hist(xs).merged(_hist(ys).merged(_hist(zs)))
    _assert_states_equal(left.state(), right.state())


@given(batches, batches)
@settings(max_examples=150, deadline=None)
def test_merge_equals_union(xs, ys):
    """Merging two histograms is indistinguishable from one histogram that
    observed both streams."""
    merged = _hist(xs).merged(_hist(ys))
    union = _hist(list(xs) + list(ys))
    _assert_states_equal(merged.state(), union.state())
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert merged.quantile(q) == union.quantile(q)


# -- quantile error bound ------------------------------------------------------------


@given(st.lists(values, min_size=1, max_size=80),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=300, deadline=None)
def test_quantile_within_bucket_width(xs, q):
    """The estimate brackets the true order statistic from above, within
    one sub-bucket of relative error: ``t <= est <= t * (1 + 1/SUBBUCKETS)``
    (modulo float rounding at bucket edges)."""
    h = _hist(xs)
    ordered = sorted(xs)
    rank = max(1, math.ceil(q * len(ordered)))
    true_value = ordered[rank - 1]
    estimate = h.quantile(q)
    slack = 1e-9 * max(1.0, true_value)
    assert true_value - slack <= estimate
    assert estimate <= true_value * (1 + 1 / Histogram.SUBBUCKETS) + slack


@given(st.lists(values, min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_quantiles_monotone(xs):
    h = _hist(xs)
    qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        Histogram("h").quantile(1.5)


# -- counters ------------------------------------------------------------------------


def test_counter_rejects_negative_increments():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 0


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=200))
@settings(max_examples=20, deadline=None)
def test_counter_exact_under_concurrency(threads, per_thread):
    """N threads x M increments lose nothing and never dip negative."""
    counter = Counter("c")

    def work():
        for __ in range(per_thread):
            counter.inc()

    workers = [threading.Thread(target=work) for __ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert counter.value == threads * per_thread


def test_registry_concurrent_get_or_create_is_idempotent():
    """Racing threads asking for the same metric all get one instance, and
    their recordings all land on it."""
    registry = MetricsRegistry()
    barrier = threading.Barrier(8)
    seen = []

    def work():
        barrier.wait()
        counter = registry.counter("shared")
        seen.append(counter)
        for __ in range(100):
            counter.inc()
        registry.histogram("shared_h").observe(0.001)

    workers = [threading.Thread(target=work) for __ in range(8)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert len({id(c) for c in seen}) == 1
    assert registry.counter("shared").value == 800
    assert registry.histogram("shared_h").count == 8
