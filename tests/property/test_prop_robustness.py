"""Property-based robustness tests: hostile inputs must fail *predictably*.

A virtualization layer sits in front of arbitrary applications; malformed
SQL or corrupt network bytes must surface as the library's own error types,
never as random AttributeErrors/IndexErrors deep in the stack.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HyperQError
from repro.backend.parser import BackendParser
from repro.frontend.teradata.parser import TeradataParser
from repro.protocol import messages
from repro.transform.capabilities import HYPERION


class _ByteSock:
    def __init__(self, data: bytes):
        self.data = data

    def recv(self, count: int) -> bytes:
        chunk, self.data = self.data[:count], self.data[count:]
        return chunk


class TestProtocolRobustness:
    @given(blob=st.binary(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash_the_reader(self, blob):
        try:
            messages.read_message(_ByteSock(blob))
        except HyperQError:
            pass  # ProtocolError is the contract

    @given(kind=st.sampled_from(list(messages.MessageKind)),
           payload=st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_wellformed_messages_always_roundtrip(self, kind, payload):
        packet = messages.encode_message(kind, payload)
        got_kind, got_payload = messages.read_message(_ByteSock(packet))
        assert got_kind is kind
        assert got_payload == payload

    @given(length=st.integers(min_value=messages.MAX_PAYLOAD + 1,
                              max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_oversized_declared_length_rejected_before_allocation(self, length):
        header = messages.HEADER.pack(messages.MAGIC, 3, length)
        try:
            messages.read_message(_ByteSock(header))
            raise AssertionError("oversized payload accepted")
        except HyperQError:
            pass


_sql_fragments = st.text(
    alphabet=st.sampled_from(list(
        "SELECT FROM WHERE GROUP BY ORDER QUALIFY ()*',.;<>=+-0123456789"
        "ABCdef_\"' \n\t")),
    max_size=120)


class TestParserRobustness:
    @given(text=_sql_fragments)
    @settings(max_examples=200, deadline=None)
    def test_teradata_parser_fails_cleanly(self, text):
        parser = TeradataParser()
        try:
            parser.parse_script(text)
        except HyperQError:
            pass  # LexError / ParseError are the contract

    @given(text=_sql_fragments)
    @settings(max_examples=200, deadline=None)
    def test_backend_parser_fails_cleanly(self, text):
        parser = BackendParser(HYPERION)
        try:
            parser.parse_script(text)
        except HyperQError:
            pass

    @given(count=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_deeply_nested_expressions_parse(self, count):
        sql = "SEL " + "(" * count + "1" + ")" * count + " FROM T"
        statement = TeradataParser().parse_statement(sql)
        assert statement is not None
