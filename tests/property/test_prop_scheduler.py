"""Property tests for the deficit-round-robin scheduler.

Two promises the workload manager's fairness rests on, checked over
arbitrary weight vectors and enqueue patterns:

* **Starvation-freedom** — every enqueued item is eventually served,
  exactly once, in FIFO order within its class, no matter the weights or
  the interleaving of enqueues and serves (including classes that toggle
  in and out of eligibility).
* **Weighted shares** — under sustained backlog in every class, each
  class's share of service converges to ``weight / sum(weights)``.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.workload import DeficitRoundRobin

CLASS_NAMES = ("alpha", "beta", "gamma", "delta")

weight_vectors = st.lists(
    st.floats(min_value=0.5, max_value=4.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=4,
).map(lambda ws: dict(zip(CLASS_NAMES, ws)))


@st.composite
def enqueue_patterns(draw):
    """A weight vector plus an arbitrary sequence of (class, burst) ops."""
    weights = draw(weight_vectors)
    names = sorted(weights)
    ops = draw(st.lists(
        st.tuples(st.sampled_from(names), st.integers(1, 5)),
        min_size=1, max_size=40))
    return weights, ops


@settings(max_examples=50, deadline=None)
@given(enqueue_patterns())
def test_every_item_served_exactly_once_in_class_order(pattern):
    weights, ops = pattern
    drr = DeficitRoundRobin(weights)
    expected = {name: [] for name in weights}
    stamp = 0
    for name, burst in ops:
        for __ in range(burst):
            drr.enqueue(name, stamp)
            expected[name].append(stamp)
            stamp += 1
    served = {name: [] for name in weights}
    while True:
        item = drr.next()
        if item is None:
            break
        wl_class, value = item
        served[wl_class].append(value)
    # Exactly once, FIFO within class — and nothing left behind.
    assert served == expected
    assert len(drr) == 0


@settings(max_examples=50, deadline=None)
@given(enqueue_patterns(), st.data())
def test_interleaved_serves_never_lose_or_duplicate(pattern, data):
    weights, ops = pattern
    drr = DeficitRoundRobin(weights)
    pending = Counter()
    served = Counter()
    stamp = 0
    for name, burst in ops:
        for __ in range(burst):
            drr.enqueue(name, (name, stamp))
            pending[(name, stamp)] += 1
            stamp += 1
        for __ in range(data.draw(st.integers(0, 6), label="serves")):
            item = drr.next()
            if item is None:
                break
            served[item[1]] += 1
    while (item := drr.next()) is not None:
        served[item[1]] += 1
    assert served == pending
    assert max(served.values(), default=1) == 1


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_shares_converge_to_weights_under_backlog(weights):
    drr = DeficitRoundRobin(weights)
    names = sorted(weights)
    for name in names:
        for index in range(8):
            drr.enqueue(name, index)
    rounds = 2000
    served = Counter()
    for __ in range(rounds):
        wl_class, __item = drr.next()
        served[wl_class] += 1
        # Top the queue back up: sustained backlog everywhere.
        drr.enqueue(wl_class, 0)
    total_weight = sum(weights.values())
    for name in names:
        share = served[name] / rounds
        assert abs(share - weights[name] / total_weight) < 0.15


@settings(max_examples=25, deadline=None)
@given(weight_vectors, st.data())
def test_eligibility_toggling_never_starves_backlogged_classes(weights, data):
    """A class that is temporarily ineligible (concurrency slots or tokens
    exhausted) resumes service once eligible — no permanent starvation and
    no deficit windfall accrued while blocked."""
    drr = DeficitRoundRobin(weights)
    names = sorted(weights)
    for name in names:
        for index in range(30):
            drr.enqueue(name, index)
    served = Counter()
    eligible_steps = Counter()
    for __ in range(200):
        blocked = set(data.draw(
            st.lists(st.sampled_from(names), max_size=len(names) - 1)
            if len(names) > 1 else st.just([]), label="blocked"))
        for name in names:
            if name not in blocked:
                eligible_steps[name] += 1
        item = drr.next(lambda c: c not in blocked)
        if item is None:
            continue
        assert item[0] not in blocked
        served[item[0]] += 1
        drr.enqueue(item[0], 0)
    # Any backlogged class that was actually eligible a meaningful number
    # of times got served: the minimum quantum is 0.5/4, so at most 8
    # eligible visits build enough deficit for one serve.
    for name in names:
        if eligible_steps[name] >= 30:
            assert served[name] > 0, f"class {name!r} starved"
