"""Property-based tests on the translation pipeline.

Two invariants matter most for a virtualization layer:

1. **Closure**: whatever the serializer emits, the target must parse and
   execute (the paper's "equivalent requests that the new database can
   comprehend").
2. **Semantics**: the translated query, executed on the target, must return
   the same rows Teradata semantics dictate — checked against a Python
   reference over random data.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import HyperQ

columns = ["A", "B", "C"]
values = st.one_of(st.none(), st.integers(min_value=-9, max_value=9))
row_lists = st.lists(st.tuples(values, values, values), max_size=20)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">=", "^="])
agg_names = st.sampled_from(["SUM", "COUNT", "MIN", "MAX"])


@st.composite
def simple_td_query(draw):
    """A random single-table Teradata-flavoured SELECT."""
    select_col = draw(st.sampled_from(columns))
    where_col = draw(st.sampled_from(columns))
    op = draw(comparison_ops)
    constant = draw(st.integers(min_value=-9, max_value=9))
    order = draw(st.sampled_from(["", " ORDER BY 1", f" ORDER BY {select_col} DESC"]))
    keyword = draw(st.sampled_from(["SEL", "SELECT"]))
    return (f"{keyword} {select_col} FROM T WHERE {where_col} {op} {constant}"
            f"{order}")


@st.composite
def aggregate_td_query(draw):
    group_col = draw(st.sampled_from(columns))
    agg = draw(agg_names)
    agg_col = draw(st.sampled_from(columns))
    ordinal = draw(st.booleans())
    group_clause = "1" if ordinal else group_col
    return (f"SEL {group_col}, {agg}({agg_col}) FROM T "
            f"GROUP BY {group_clause}")


def build_session(rows):
    engine = HyperQ()
    session = engine.create_session()
    session.execute("CREATE TABLE T (A INTEGER, B INTEGER, C INTEGER)")
    if rows:
        literals = ", ".join(
            "(" + ", ".join("NULL" if v is None else str(v) for v in row) + ")"
            for row in rows)
        session.execute(f"INSERT INTO T VALUES {literals}")
    return session


class TestClosure:
    @given(rows=row_lists, query=simple_td_query())
    @settings(max_examples=40, deadline=None)
    def test_translated_query_always_executes(self, rows, query):
        session = build_session(rows)
        result = session.execute(query)
        assert result.kind == "rows"

    @given(rows=row_lists, query=aggregate_td_query())
    @settings(max_examples=40, deadline=None)
    def test_translated_aggregates_always_execute(self, rows, query):
        session = build_session(rows)
        result = session.execute(query)
        assert result.kind == "rows"

    @given(query=simple_td_query())
    @settings(max_examples=30, deadline=None)
    def test_translation_is_deterministic(self, query):
        session = build_session([])
        first = session.translate(query).statements
        second = session.translate(query).statements
        assert first == second


class TestSemantics:
    @given(rows=row_lists,
           where_col=st.sampled_from(columns),
           constant=st.integers(min_value=-9, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_filter_semantics_match_reference(self, rows, where_col, constant):
        session = build_session(rows)
        result = session.execute(
            f"SEL A FROM T WHERE {where_col} > {constant}")
        index = columns.index(where_col)
        expected = sorted(
            (row[0] for row in rows
             if row[index] is not None and row[index] > constant),
            key=lambda v: (v is None, v or 0))
        assert sorted((r[0] for r in result.rows),
                      key=lambda v: (v is None, v or 0)) == expected

    @given(rows=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_teradata_null_ordering_reproduced(self, rows):
        """ASC sorts place NULLs first (Teradata), even though the target's
        native default is NULLs last — the null_ordering rewrite at work."""
        session = build_session(rows)
        result = session.execute("SEL A FROM T ORDER BY A")
        got = [row[0] for row in result.rows]
        null_count = sum(1 for row in rows if row[0] is None)
        assert got[:null_count] == [None] * null_count
        assert got[null_count:] == sorted(row[0] for row in rows
                                          if row[0] is not None)

    @given(rows=row_lists)
    @settings(max_examples=30, deadline=None)
    def test_qualify_rank_matches_reference(self, rows):
        session = build_session(rows)
        result = session.execute(
            "SEL B FROM T QUALIFY RANK(B DESC) <= 2")
        non_null = sorted((row[1] for row in rows if row[1] is not None),
                          reverse=True)
        nulls_last = [row[1] for row in rows if row[1] is None]
        ordered = non_null + nulls_last  # Teradata: NULLs lowest -> last DESC
        expected = []
        rank = 0
        for position, value in enumerate(ordered):
            if position == 0 or not _same(value, ordered[position - 1]):
                rank = position + 1
            if rank <= 2:
                expected.append(value)
        assert sorted(result.rows, key=_row_key) == \
            sorted([(v,) for v in expected], key=_row_key)


def _same(a, b):
    return a == b or (a is None and b is None)


def _row_key(row):
    return tuple((v is None, v if v is not None else 0) for v in row)
