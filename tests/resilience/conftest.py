"""Shared helpers for the resilience battery.

The suite runs standalone (``pytest tests/resilience``) and under the CI
fault-matrix job, which sets ``HQ_FAULT_SCHEDULE`` to one of the named
schedules so each matrix leg exercises one failure family.
"""

from __future__ import annotations

import os

import pytest

from repro.core.faults import NAMED_SCHEDULES, RetryPolicy


def schedule_selected(name: str) -> bool:
    """True when *name* should run: always locally, one per CI matrix leg."""
    selected = os.environ.get("HQ_FAULT_SCHEDULE", "")
    return selected in ("", name)


def requires_schedule(name: str):
    """Skip marker for tests tied to one named schedule."""
    assert name in NAMED_SCHEDULES
    return pytest.mark.skipif(
        not schedule_selected(name),
        reason=f"HQ_FAULT_SCHEDULE selects a different schedule than {name!r}")


@pytest.fixture
def fast_retry() -> RetryPolicy:
    """Retry policy with microscopic backoff so tests stay fast."""
    return RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.0005)
