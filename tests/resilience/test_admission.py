"""The ``admission-storm`` leg of the CI fault matrix.

A scripted storm against the workload manager: every 3rd admission decision
is shed outright, every 5th arrives with 30 seconds of synthetic queue age
(an instant deadline miss for any deadline-bearing class), and replica 1 of
the scaled fleet drops out for a window of its target calls. The manager
must reject gracefully — the session survives every rejection — reads must
fail over, and the combined event log must reproduce byte-identically from
the same seed.
"""

from __future__ import annotations

import pytest

from repro.core.faults import RetryPolicy, named_schedule
from repro.core.scaleout import ScaledHyperQ
from repro.core.workload import ETL, WorkloadConfig, WorkloadManager
from repro.errors import WorkloadDeadlineError, WorkloadShedError

from tests.resilience.conftest import requires_schedule

SEED = 2018

_FAST = dict(base_delay=0.0001, max_delay=0.0005)

#: The storm, driven sequentially so the event log is deterministic.
#: Admission draws 3, 6, 9, 12, 15, 18 shed; draws 5, 10, 20 carry the
#: synthetic queue age (draw 15 sheds first — first matching spec wins).
_STATEMENTS = (
    "CREATE TABLE KV (K INTEGER, V INTEGER)",        # 1  admin
    "INSERT INTO KV VALUES (1, 10), (2, 20)",        # 2  etl
    "SEL V FROM KV WHERE K = 1",                     # 3  shed
    "SEL V FROM KV WHERE K = 2",                     # 4  interactive
    "SEL COUNT(*) FROM KV",                          # 5  deadline miss
    "UPD KV SET V = V + 1 WHERE K = 1",              # 6  shed
    "SEL V FROM KV WHERE K = 1",                     # 7  interactive
    "SEL V FROM KV WHERE K = 2",                     # 8  interactive
    "SEL COUNT(*) FROM KV",                          # 9  shed
    "SEL V FROM KV WHERE K = 1",                     # 10 deadline miss
    "SEL V FROM KV WHERE K = 2",                     # 11 interactive
    "UPD KV SET V = V + 1 WHERE K = 2",              # 12 shed
    "SEL COUNT(*) FROM KV",                          # 13 reporting
    "SEL V FROM KV WHERE K = 1",                     # 14 interactive
    "SEL V FROM KV WHERE K = 2",                     # 15 shed
    "SEL COUNT(*) FROM KV",                          # 16 reporting
    "SEL V FROM KV WHERE K = 1",                     # 17 interactive
    "UPD KV SET V = V + 1 WHERE K = 1",              # 18 shed
    "SEL V FROM KV WHERE K = 1",                     # 19 interactive
    "SEL COUNT(*) FROM KV",                          # 20 deadline miss
    "SEL V FROM KV WHERE K = 2",                     # 21 shed
)


def run_admission_storm(seed: int):
    schedule = named_schedule("admission-storm", seed)
    manager = WorkloadManager(WorkloadConfig(workers=2))
    fleet = ScaledHyperQ(replicas=3, faults=schedule,
                         retry=RetryPolicy(seed=seed, **_FAST),
                         failure_threshold=1, workload=manager)
    session = fleet.create_session()
    sheds = misses = answered = 0
    try:
        for sql in _STATEMENTS:
            try:
                session.execute(sql)
                answered += 1
            except WorkloadShedError as error:
                assert "retry after" in str(error)
                sheds += 1
            except WorkloadDeadlineError:
                misses += 1
        # The session survived every rejection and still answers (this is
        # admission draw 22 — neither a shed nor a miss slot).
        final = session.execute("SEL COUNT(*) FROM KV").rows
    finally:
        session.close()
        manager.close()
    return (schedule, fleet.resilience.snapshot(), manager.stats,
            sheds, misses, answered, final)


@requires_schedule("admission-storm")
class TestAdmissionStorm:
    def test_storm_sheds_misses_and_fails_over_gracefully(self):
        schedule, stats, wl_stats, sheds, misses, answered, final = \
            run_admission_storm(SEED)
        assert sheds == 7            # admission draws 3,6,9,12,15,18,21
        assert misses == 3           # admission draws 5,10,20
        assert answered == len(_STATEMENTS) - sheds - misses
        assert final == [(2,)]       # the session outlived the storm
        assert wl_stats.total("shed") == sheds
        assert wl_stats.total("deadline_missed") == misses
        # The replica outage inside the same storm was failed over.
        assert stats["failovers"] > 0
        assert schedule.injected_count() > 0

    def test_rejections_reach_the_event_log(self):
        schedule = run_admission_storm(SEED)[0]
        log = schedule.event_log()
        assert any(line.startswith("shed") for line in log)
        assert any(line.startswith("deadline_missed") for line in log)
        assert any("admission-reject" in line for line in log)

    def test_same_seed_reproduces_identical_event_log(self):
        first = run_admission_storm(SEED)[0]
        second = run_admission_storm(SEED)[0]
        assert first.event_log_bytes() == second.event_log_bytes()
        assert len(first.event_log()) > 0
