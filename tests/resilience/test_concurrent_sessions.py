"""Concurrent sessions under a disconnect-heavy schedule.

N client threads hammer one engine through the wire server while the fault
plane keeps cutting connections. The invariants that must hold:

* no session-overlay cross-talk — every thread always reads *its own*
  volatile table contents, never another session's;
* every client-confirmed write landed exactly once (disconnected requests
  are cut *before* execution, so they land exactly zero times);
* every session the server created is closed again, clean exit or not;
* the shared translation cache's counters stay internally consistent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ProtocolError
from repro.core.engine import HyperQ, HyperQSession
from repro.core.faults import WIRE_DISCONNECT, FaultSchedule, FaultSpec
from repro.protocol.client import TdClient
from repro.protocol.server import ServerThread

THREADS = 6
ROUNDS = 14

DISCONNECT_EVERY = 7  # roughly one request in seven dies on the wire


class _Worker(threading.Thread):
    def __init__(self, tid: int, address):
        super().__init__(daemon=True)
        self.tid = tid
        self.address = address
        self.confirmed_inserts = 0
        self.connections = 0
        self.disconnects = 0
        self.cross_talk: list = []
        self.unexpected: list = []

    def run(self) -> None:
        client = None
        for __ in range(ROUNDS):
            try:
                if client is None:
                    client = TdClient(*self.address)
                    self.connections += 1
                    client.execute("CREATE VOLATILE TABLE MINE (X INTEGER)")
                    client.execute(f"INS INTO MINE VALUES ({self.tid})")
                rows = client.execute("SEL X FROM MINE").rows
                if rows != [(self.tid,)]:
                    self.cross_talk.append(rows)
                client.execute(f"INS INTO SHARED VALUES ({self.tid})")
                self.confirmed_inserts += 1
            except (ProtocolError, ConnectionError, OSError):
                self.disconnects += 1
                client = None  # reconnect on the next round
            except Exception as error:  # noqa: BLE001 — record, don't die
                self.unexpected.append(error)
                client = None
        if client is not None:
            try:
                client.close()
            except OSError:
                pass


@pytest.fixture
def close_counter(monkeypatch):
    closed = []
    original = HyperQSession.close

    def counting_close(self):
        closed.append(self)
        return original(self)

    monkeypatch.setattr(HyperQSession, "close", counting_close)
    return closed


def test_disconnect_storm_with_concurrent_sessions(close_counter):
    schedule = FaultSchedule(42, [
        FaultSpec(WIRE_DISCONNECT, "wire", every=DISCONNECT_EVERY)])
    engine = HyperQ(faults=schedule)
    engine.execute("CREATE TABLE SHARED (TID INTEGER)")
    with ServerThread(engine) as address:
        workers = [_Worker(tid, address) for tid in range(THREADS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive()

        # 1. No cross-session volatile-overlay leakage, no stray errors.
        for worker in workers:
            assert worker.cross_talk == [], \
                f"thread {worker.tid} read foreign volatile rows"
            assert worker.unexpected == [], worker.unexpected

        # 2. The storm actually stormed, and clients rode it out.
        total_disconnects = sum(w.disconnects for w in workers)
        assert total_disconnects > 0
        assert sum(w.confirmed_inserts for w in workers) > 0
        assert engine.resilience_stats()["wire_disconnects"] >= \
            total_disconnects

        # 3. Exactly-once accounting: every confirmed insert landed, every
        # cut-off request landed nowhere.
        expected = sum(w.confirmed_inserts for w in workers)
        assert engine.execute("SEL COUNT(*) FROM SHARED").rows == [(expected,)]

        # 4. No session leaks: one close per connection the server accepted.
        opened = sum(w.connections for w in workers)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and len(close_counter) < opened:
            time.sleep(0.02)
        assert len(close_counter) == opened

    # 5. Translation-cache counters stayed coherent under concurrency.
    stats = engine.cache_stats()
    assert stats.hits >= 0 and stats.misses >= 0
    assert stats.lookups == stats.hits + stats.misses
    assert stats.inserts <= stats.misses + stats.bypasses
    assert stats.lookups > 0


def test_shared_tracker_counts_exactly_under_concurrency():
    """Regression: one engine-wide FeatureTracker is mutated by every
    session thread at once. The in-flight record must be thread-local (no
    cross-request feature bleed) and the workload counters lock-protected
    (no lost updates) — the unlocked version dropped counts here."""
    from repro.core.tracker import FeatureTracker

    tracker = FeatureTracker()
    engine = HyperQ(tracker=tracker)
    engine.execute("CREATE TABLE NUMS (N INTEGER, D DATE)")
    engine.execute("INSERT INTO NUMS VALUES (1, DATE '2020-06-01')")
    base_queries = tracker.query_count  # setup statements count too

    threads, per_thread = 8, 25
    errors: list = []

    def hammer(tid: int) -> None:
        session = engine.create_session()
        try:
            for i in range(per_thread):
                # Every statement fires exactly one tracked feature
                # (sel_shortcut), so totals are exactly predictable.
                session.execute(f"SEL N FROM NUMS WHERE N > {tid} - {i} - 2")
        except Exception as error:  # noqa: BLE001 — fail the assertion below
            errors.append(error)
        finally:
            session.close()

    workers = [threading.Thread(target=hammer, args=(tid,))
               for tid in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert not worker.is_alive()

    assert errors == []
    expected = threads * per_thread
    assert tracker.query_count == base_queries + expected
    assert tracker.feature_query_counts["sel_shortcut"] == expected
    # Resilience counters share the same lock discipline.
    for __ in range(100):
        tracker.note_resilience("retry")
    assert tracker.retries == 100
