"""Replica loss: quarantine, read failover, write queuing and replay.

Appendix B.3's promise under fire: losing a replica must cost the
application nothing (reads) and the fleet nothing (writes reconverge on
recovery).
"""

from __future__ import annotations

import pytest

from repro.errors import HyperQError, ReplicaUnavailableError
from repro.core.faults import (
    BACKEND_TRANSIENT, REPLICA_DOWN, FaultSchedule, FaultSpec,
)
from repro.core.scaleout import ScaledHyperQ


def make_fleet(replicas=3, **kwargs):
    fleet = ScaledHyperQ(replicas=replicas, **kwargs)
    session = fleet.create_session()
    session.execute("CREATE TABLE EV (ID INTEGER, V INTEGER)")
    session.execute("INSERT INTO EV VALUES (1, 10), (2, 20), (3, 30)")
    return fleet, session


class TestKilledReplica:
    def test_reads_keep_flowing_after_a_kill(self):
        fleet, session = make_fleet()
        fleet.kill_replica(1)
        for __ in range(9):
            assert session.execute("SEL COUNT(*) FROM EV").rows == [(3,)]
        assert fleet.reads_per_replica[1] == 0
        assert fleet.up_replicas() == [0, 2]

    def test_scheduled_replica_down_triggers_failover(self):
        # Replica 1 stops answering from its 3rd target call on — i.e.
        # right after the two setup statements land.
        sched = FaultSchedule(0, [
            FaultSpec(REPLICA_DOWN, "odbc", replica=1, after=3)])
        fleet, session = make_fleet(faults=sched)
        for __ in range(9):
            assert session.execute("SEL COUNT(*) FROM EV").rows == [(3,)]
        stats = fleet.resilience.snapshot()
        assert stats["failovers"] > 0
        assert stats["quarantines"] == 1
        assert fleet.up_replicas() == [0, 2]

    def test_failover_is_visible_in_the_span_tree(self):
        """Observability clause: a failed-over read shows one
        ``replica_attempt`` child span per replica tried — the dead one
        with an error outcome — plus a ``failover`` event on the trace."""
        from repro.core.trace import TraceHub, assert_span_tree

        sched = FaultSchedule(0, [
            FaultSpec(REPLICA_DOWN, "odbc", replica=1, after=3)])
        fleet, session = make_fleet(faults=sched)
        hub = TraceHub()
        traces = []
        for __ in range(9):
            with hub.request("request", "SEL COUNT(*) FROM EV") as trace:
                assert session.execute(
                    "SEL COUNT(*) FROM EV").rows == [(3,)]
            traces.append(trace)
        failed_over = [
            t for t in traces
            if any(name == "failover" for s in t.spans for name, __ in s.events)]
        assert failed_over, "no traced read hit the dead replica"
        trace = failed_over[0]
        assert_span_tree(trace)
        attempts = [s for s in trace.spans if s.name == "replica_attempt"]
        assert len(attempts) >= 2
        assert attempts[0].attrs["replica"] == 1
        assert attempts[0].outcome.startswith("error:")
        assert attempts[-1].outcome == "ok"

    def test_all_replicas_down_is_a_clean_error(self):
        fleet, session = make_fleet(replicas=2)
        fleet.kill_replica(0)
        fleet.kill_replica(1)
        with pytest.raises(ReplicaUnavailableError):
            session.execute("SEL COUNT(*) FROM EV")

    def test_kill_is_idempotent(self):
        fleet, __ = make_fleet()
        fleet.kill_replica(2)
        fleet.kill_replica(2)
        assert fleet.resilience.snapshot()["quarantines"] == 1


class TestQuarantineThreshold:
    def test_consecutive_failures_quarantine_a_replica(self):
        fleet, session = make_fleet(failure_threshold=2)
        # Break replica 0 behind Hyper-Q's back: reads against it fail,
        # reads against the others succeed, so the failures indict it.
        fleet.engines[0].backend.catalog.drop_table("EV")
        fleet.engines[0].shadow.drop_table("EV")
        for __ in range(8):
            assert session.execute("SEL COUNT(*) FROM EV").rows == [(3,)]
        assert fleet.up_replicas() == [1, 2]
        assert fleet.resilience.snapshot()["quarantines"] == 1

    def test_a_bad_query_never_indicts_replicas(self):
        fleet, session = make_fleet()
        for __ in range(6):
            with pytest.raises(HyperQError):
                session.execute("SEL NO_SUCH_COLUMN FROM EV")
        assert fleet.up_replicas() == [0, 1, 2]
        assert fleet.resilience.snapshot()["quarantines"] == 0


class TestWriteReplay:
    def test_writes_queue_while_down_and_replay_on_revive(self):
        fleet, session = make_fleet()
        fleet.kill_replica(1)
        session.execute("UPD EV SET V = V + 1 WHERE ID = 1")
        session.execute("INS INTO EV VALUES (4, 40)")
        assert len(fleet.pending_writes(1)) == 2
        assert fleet.revive_replica(1)
        assert fleet.pending_writes(1) == []
        for engine in fleet.engines:
            check = engine.create_session()
            assert check.execute("SEL V FROM EV WHERE ID = 1").rows == [(11,)]
            assert check.execute("SEL COUNT(*) FROM EV").rows == [(4,)]
            check.close()
        stats = fleet.resilience.snapshot()
        assert stats["queued_writes"] == 2
        assert stats["replayed_writes"] == 2
        assert stats["recoveries"] == 1

    def test_next_write_probes_recovery_automatically(self):
        sched = FaultSchedule(0, [
            FaultSpec(REPLICA_DOWN, "odbc", replica=1, after=3, until=5)])
        fleet, session = make_fleet(faults=sched, failure_threshold=1)
        # Drive replica 1 into its outage window via reads, then keep
        # writing: the write path itself must detect recovery and replay.
        for __ in range(4):
            session.execute("SEL COUNT(*) FROM EV")
        assert fleet.up_replicas() == [0, 2]
        for __ in range(4):
            session.execute("UPD EV SET V = V + 1 WHERE ID = 2")
        assert fleet.up_replicas() == [0, 1, 2]
        answers = {tuple(engine.create_session()
                         .execute("SEL V FROM EV WHERE ID = 2").rows[0])
                   for engine in fleet.engines}
        assert answers == {(24,)}

    def test_replay_preserves_write_order(self):
        fleet, session = make_fleet()
        fleet.kill_replica(2)
        session.execute("UPD EV SET V = 100 WHERE ID = 1")
        session.execute("UPD EV SET V = V + 5 WHERE ID = 1")
        fleet.revive_replica(2)
        check = fleet.engines[2].create_session()
        assert check.execute("SEL V FROM EV WHERE ID = 1").rows == [(105,)]
        check.close()

    def test_write_during_outage_still_succeeds_for_the_app(self):
        fleet, session = make_fleet()
        fleet.kill_replica(0)
        result = session.execute("UPD EV SET V = 0 WHERE ID = 3")
        assert result.rowcount == 1

    def test_transient_write_failure_quarantines_and_queues(self, fast_retry):
        # Replica 2's target refuses persistently: the fleet must keep the
        # write, quarantine the replica, and replay once it heals.
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", replica=2, after=3, until=9)])
        fleet, session = make_fleet(faults=sched, retry=fast_retry)
        session.execute("UPD EV SET V = V * 2 WHERE ID = 1")
        assert fleet.up_replicas() == [0, 1]
        assert len(fleet.pending_writes(2)) == 1
        for __ in range(4):
            session.execute("UPD EV SET V = V + 1 WHERE ID = 1")
        assert fleet.up_replicas() == [0, 1, 2]
        answers = {tuple(engine.create_session()
                         .execute("SEL V FROM EV WHERE ID = 1").rows[0])
                   for engine in fleet.engines}
        assert answers == {(24,)}

    def test_divergence_still_detected_among_healthy_replicas(self):
        fleet, session = make_fleet()
        rogue = fleet.engines[1].create_session()
        rogue.execute("INSERT INTO EV VALUES (99, 0)")
        rogue.close()
        with pytest.raises(HyperQError, match="divergence"):
            session.execute("UPD EV SET V = 0 WHERE ID >= 0")


class TestPinnedSessions:
    def test_pinned_read_fails_cleanly_when_owner_is_down(self):
        fleet, session = make_fleet()
        session.execute("CREATE VOLATILE TABLE SCRATCH (X INTEGER)")
        session.execute("INSERT INTO SCRATCH VALUES (7)")
        pinned = session._pinned
        assert pinned is not None
        fleet.kill_replica(pinned)
        with pytest.raises(ReplicaUnavailableError):
            session.execute("SEL X FROM SCRATCH")

    def test_unpinned_sessions_reroute_around_the_same_outage(self):
        fleet, pinned_session = make_fleet()
        pinned_session.execute("CREATE VOLATILE TABLE SCRATCH (X INTEGER)")
        fleet.kill_replica(pinned_session._pinned)
        other = fleet.create_session()
        assert other.execute("SEL COUNT(*) FROM EV").rows == [(3,)]
