"""The fault plane itself: scheduling mechanics, injection sites, retry.

The acceptance bar: transient backend errors are retried to success (retry
counter > 0, zero client-visible errors), and the same seed reproduces the
identical event log.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    BackendTimeoutError, RetryExhaustedError, TransientBackendError,
)
from repro.core.engine import HyperQ
from repro.core.faults import (
    BACKEND_TIMEOUT, BACKEND_TRANSIENT, SLOW_RESULT, WIRE_DISCONNECT,
    FaultSchedule, FaultSpec, ResilienceStats, RetryPolicy, apply_fault,
    named_schedule,
)


class TestFaultSchedule:
    def test_at_trigger_fires_on_exact_call_indices(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", at=(2, 5))])
        fired = [sched.draw("odbc") is not None for __ in range(6)]
        assert fired == [False, True, False, False, True, False]

    def test_every_trigger_is_periodic(self):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", every=3)])
        fired = [sched.draw("odbc") is not None for __ in range(9)]
        assert fired == [False, False, True] * 3

    def test_window_trigger_spans_after_until(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", after=3, until=5)])
        fired = [sched.draw("odbc") is not None for __ in range(7)]
        assert fired == [False, False, True, True, True, False, False]

    def test_until_zero_means_forever(self):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", after=2)])
        assert [sched.draw("odbc") is not None for __ in range(4)] == \
            [False, True, True, True]

    def test_times_bounds_total_firings(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", every=1, times=2)])
        fired = [sched.draw("odbc") is not None for __ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_match_filters_on_statement_text(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", every=1, match="SALES")])
        assert sched.draw("odbc", op="SELECT * FROM INVENTORY") is None
        assert sched.draw("odbc", op="select * from sales") is not None

    def test_sites_count_independently(self):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", at=(2,))])
        assert sched.draw("wire") is None
        assert sched.draw("odbc") is None
        assert sched.draw("wire") is None   # wire call 2: different site
        assert sched.draw("odbc") is not None

    def test_replicas_count_independently(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", replica=1, at=(2,))])
        assert sched.draw("odbc", replica=0) is None
        assert sched.draw("odbc", replica=0) is None  # replica 0 never fires
        assert sched.draw("odbc", replica=1) is None
        assert sched.draw("odbc", replica=1) is not None

    def test_one_fault_per_call_first_spec_wins(self):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", at=(1,)),
            FaultSpec(BACKEND_TIMEOUT, "odbc", at=(1,)),
        ])
        fault = sched.draw("odbc")
        assert fault.kind == BACKEND_TRANSIENT
        assert sched.injected_count() == 1

    def test_probability_trigger_is_seed_deterministic(self):
        def pattern(seed):
            sched = FaultSchedule(seed, [
                FaultSpec(BACKEND_TRANSIENT, "odbc", probability=0.5)])
            return [sched.draw("odbc") is not None for __ in range(32)]

        assert pattern(11) == pattern(11)
        assert any(pattern(11))
        assert not all(pattern(11))

    def test_event_log_replays_identically_for_same_seed(self):
        def log(seed):
            sched = FaultSchedule(seed, [
                FaultSpec(BACKEND_TRANSIENT, "odbc", probability=0.3),
                FaultSpec(BACKEND_TIMEOUT, "odbc", every=4),
            ])
            for index in range(24):
                sched.draw("odbc", op=f"STMT {index}")
            sched.record("retry", attempt=1, site="odbc")
            return sched.event_log_bytes()

        assert log(5) == log(5)
        assert log(5) != log(6)

    def test_unknown_kind_and_site_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("solar-flare", "odbc")
        with pytest.raises(ValueError):
            FaultSpec(BACKEND_TRANSIENT, "warehouse-roof")
        with pytest.raises(ValueError):
            named_schedule("no-such-schedule")

    def test_apply_fault_raises_the_matching_taxonomy(self):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TIMEOUT, "odbc", at=(1,))])
        with pytest.raises(BackendTimeoutError):
            apply_fault(sched.draw("odbc"))
        # BackendTimeoutError is transient: one retry loop covers both.
        assert issubclass(BackendTimeoutError, TransientBackendError)

    def test_slow_result_stalls_in_place(self):
        sched = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "odbc", at=(1,), delay=0.02)])
        start = time.monotonic()
        assert apply_fault(sched.draw("odbc")) is None
        assert time.monotonic() - start >= 0.02

    def test_wire_disconnect_is_returned_not_raised(self):
        sched = FaultSchedule(0, [FaultSpec(WIRE_DISCONNECT, "wire", at=(1,))])
        fault = apply_fault(sched.draw("wire"))
        assert fault is not None and fault.kind == WIRE_DISCONNECT


class TestRetryToSuccess:
    def test_transient_errors_invisible_to_the_application(self, fast_retry):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", every=2)])
        engine = HyperQ(faults=sched, retry=fast_retry)
        session = engine.create_session()
        session.execute("CREATE TABLE RZ (X INTEGER)")
        session.execute("INSERT INTO RZ VALUES (1), (2), (3)")
        for __ in range(8):
            assert session.execute("SEL COUNT(*) FROM RZ").rows == [(3,)]
        stats = engine.resilience_stats()
        assert stats["retries"] > 0
        assert stats["retry_exhausted"] == 0

    def test_injected_timeouts_are_retried_too(self, fast_retry):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TIMEOUT, "odbc", at=(1,))])
        engine = HyperQ(faults=sched, retry=fast_retry)
        assert engine.execute("SEL 1").rows == [(1,)]
        assert engine.resilience_stats()["retries"] == 1

    def test_executor_site_faults_are_retried_through_the_stack(self, fast_retry):
        sched = FaultSchedule(0, [
            FaultSpec(BACKEND_TRANSIENT, "executor", at=(2,))])
        engine = HyperQ(faults=sched, retry=fast_retry)
        session = engine.create_session()
        session.execute("CREATE TABLE EX (X INTEGER)")
        session.execute("INSERT INTO EX VALUES (42)")
        assert session.execute("SEL X FROM EX").rows == [(42,)]
        assert session.execute("SEL X FROM EX").rows == [(42,)]
        assert engine.resilience_stats()["retries"] == 1

    def test_persistent_fault_exhausts_the_budget(self, fast_retry):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", after=1)])
        engine = HyperQ(faults=sched, retry=fast_retry)
        with pytest.raises(RetryExhaustedError):
            engine.execute("SEL 1")
        stats = engine.resilience_stats()
        assert stats["retry_exhausted"] == 1
        assert stats["retries"] == fast_retry.max_attempts - 1

    def test_retries_show_up_in_the_tracker(self, fast_retry):
        from repro.core.tracker import FeatureTracker

        tracker = FeatureTracker()
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", at=(1,))])
        engine = HyperQ(faults=sched, retry=fast_retry, tracker=tracker)
        engine.execute("SEL 1")
        assert tracker.retries == 1
        assert tracker.failovers == 0

    def test_retries_land_in_the_schedule_event_log(self, fast_retry):
        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", at=(1,))])
        engine = HyperQ(faults=sched, retry=fast_retry)
        engine.execute("SEL 1")
        log = sched.event_log()
        assert any(line.startswith("inject") for line in log)
        assert any(line.startswith("retry") for line in log)

    def test_retries_appear_as_annotated_child_spans(self, fast_retry):
        """Observability clause: every try is an ``attempt`` child span of
        ``odbc_execute`` — the failed one carries the error outcome and the
        injected-fault event, the retry event lands on the parent."""
        from repro.core.trace import assert_span_tree

        sched = FaultSchedule(0, [FaultSpec(BACKEND_TRANSIENT, "odbc", at=(1,))])
        engine = HyperQ(faults=sched, retry=fast_retry)
        engine.execute("SEL 1")
        trace = engine.tracing.last_trace()
        assert_span_tree(trace)
        execute = next(s for s in trace.spans if s.name == "odbc_execute")
        attempts = [s for s in trace.spans
                    if s.name == "attempt" and s.parent_id == execute.span_id]
        assert [s.attrs["number"] for s in attempts] == [1, 2]
        assert attempts[0].outcome == "error:TransientBackendError"
        assert any(name == "fault_injected" for name, __ in attempts[0].events)
        assert attempts[1].outcome == "ok"
        assert any(name == "retry" for name, __ in execute.events)
        assert execute.attrs["attempts"] == 2

    def test_no_schedule_means_no_overhead_paths(self):
        engine = HyperQ()
        assert engine.execute("SEL 1").rows == [(1,)]
        assert engine.resilience_stats() == {
            name: 0 for name in ResilienceStats.FIELDS}


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.01, multiplier=2.0,
                             max_delay=0.04, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_jitter_stays_within_band_and_is_seeded(self):
        policy_a = RetryPolicy(base_delay=0.01, jitter=0.5, seed=9)
        policy_b = RetryPolicy(base_delay=0.01, jitter=0.5, seed=9)
        for attempt in (1, 2, 3):
            delay_a = policy_a.delay(attempt)
            assert delay_a == policy_b.delay(attempt)
            bare = min(policy_a.max_delay,
                       0.01 * policy_a.multiplier ** (attempt - 1))
            assert bare <= delay_a <= bare * 1.5

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
