"""Worker-crash resilience: a gateway worker dying abruptly must not
take the fleet with it.

Deterministic by construction — the scripted :data:`WORKER_CRASH` fault
fires at the ``"gateway"`` site only for statements carrying the
``hq_poison`` marker, so exactly one worker dies, exactly once, at a
moment the test chooses. Sessions are pinned to workers by pre-binding
client source ports against the consistent-hash ring preview.
"""

import socket
import time

import pytest

from repro.core.faults import FaultSpec, WORKER_CRASH
from repro.core.gateway import Gateway, GatewayConfig
from repro.errors import ProtocolError
from repro.protocol.client import TdClient

SETUP_SQL = """
CREATE TABLE crash_t (a INTEGER);
INSERT INTO crash_t VALUES (1);
INSERT INTO crash_t VALUES (2);
"""

POISON = FaultSpec(WORKER_CRASH, "gateway", every=1, times=1,
                   match="hq_poison")


def client_on_worker(gateway, address, worker: int,
                     attempts: int = 256) -> TdClient:
    host, port = address
    for __ in range(attempts):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, 0))
        if gateway.worker_for(sock.getsockname()) == worker:
            sock.connect((host, port))
            return TdClient(host, port, sock=sock)
        sock.close()
    raise AssertionError(f"no source port routed to worker {worker}")


@pytest.fixture
def gateway():
    gw = Gateway(GatewayConfig(workers=2, setup_sql=SETUP_SQL,
                               fault_specs=(POISON,),
                               supervision_interval=0.1))
    address = gw.start()
    yield gw, address
    gw.stop()


def wait_for_restart(gw, worker: int, timeout: float = 10.0) -> float:
    started = time.monotonic()
    while time.monotonic() - started < timeout:
        if gw.restarts[worker] >= 1:
            return time.monotonic() - started
        time.sleep(0.01)
    raise AssertionError(
        f"worker {worker} not restarted within {timeout}s "
        f"(restarts: {gw.restarts})")


class TestWorkerCrash:
    def test_crash_is_isolated_and_worker_restarts(self, gateway):
        gw, address = gateway
        survivor = client_on_worker(gw, address, 0)
        victim = client_on_worker(gw, address, 1)
        try:
            assert survivor.execute(
                "SELECT a FROM crash_t WHERE a = 1").rows == [(1,)]
            assert victim.execute(
                "SELECT a FROM crash_t WHERE a = 2").rows == [(2,)]

            # the poison statement kills worker 1 mid-request: the victim
            # session sees its connection die with no reply
            with pytest.raises((ProtocolError, OSError)):
                victim.execute("SELECT a FROM crash_t /* hq_poison */")

            # sessions on the other worker never notice
            assert survivor.execute(
                "SELECT a FROM crash_t WHERE a = 1").rows == [(1,)]

            # the supervisor restarts the dead worker within one
            # supervision tick of detection (interval 0.1s; the bound is
            # generous because the restart itself forks and boots an
            # engine, and CI machines are slow)
            elapsed = wait_for_restart(gw, worker=1)
            assert elapsed < 10.0
            assert gw.restarts == {0: 0, 1: 1}

            # the restarted worker serves new sessions on its old ring arc
            with client_on_worker(gw, address, 1) as fresh:
                assert fresh.execute(
                    "SELECT COUNT(*) FROM crash_t").rows == [(2,)]

            # and the survivor's session still works end to end
            assert survivor.execute(
                "SELECT COUNT(*) FROM crash_t").rows == [(2,)]

            # fleet metrics recovered too: both workers answer, and the
            # supervisor's restart counter is in the aggregated view
            metrics = survivor.show_metrics()
            assert "counter gateway_worker_restarts_total 1" in metrics
        finally:
            survivor.close()
            try:
                victim.close()
            except OSError:
                pass

    def test_crash_only_fires_on_the_marked_statement(self, gateway):
        gw, address = gateway
        with TdClient(*address) as client:
            for __ in range(10):
                assert client.execute(
                    "SELECT COUNT(*) FROM crash_t").rows == [(2,)]
        assert gw.restarts == {0: 0, 1: 0}
