"""The CI fault matrix: three named schedules, each run end to end.

Each scenario is a deterministic single-threaded battery; the CI job runs
one schedule per matrix leg (``HQ_FAULT_SCHEDULE``), and every scenario is
run **twice from the same seed** to prove the event log — faults injected
plus resilience actions taken — reproduces byte-identically.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ProtocolError
from repro.core.engine import HyperQ
from repro.core.faults import RetryPolicy, named_schedule
from repro.core.scaleout import ScaledHyperQ
from repro.protocol.client import TdClient
from repro.protocol.server import ServerThread

from tests.resilience.conftest import requires_schedule

SEED = 2018  # SIGMOD, naturally

_FAST = dict(base_delay=0.0001, max_delay=0.0005)


def run_transient_errors(seed: int):
    """Every 3rd target statement fails transiently, every 7th times out;
    the application must never see any of it."""
    schedule = named_schedule("transient-errors", seed)
    engine = HyperQ(faults=schedule, retry=RetryPolicy(seed=seed, **_FAST))
    session = engine.create_session()
    session.execute("CREATE TABLE LEDGER (ID INTEGER, AMT INTEGER)")
    session.execute("INSERT INTO LEDGER VALUES (1, 100), (2, 200)")
    client_errors = 0
    for index in range(20):
        try:
            if index % 4 == 3:
                session.execute(f"UPD LEDGER SET AMT = AMT + 1 WHERE ID = 1")
            else:
                assert session.execute(
                    "SEL COUNT(*) FROM LEDGER").rows == [(2,)]
        except Exception:
            client_errors += 1
    session.close()
    return schedule, engine.resilience_stats(), client_errors


def run_replica_loss(seed: int):
    """Replica 1 dies mid-workload and later recovers; reads must all be
    answered and queued writes must replay."""
    schedule = named_schedule("replica-loss", seed)
    fleet = ScaledHyperQ(replicas=3, faults=schedule,
                         retry=RetryPolicy(seed=seed, **_FAST),
                         failure_threshold=1)
    session = fleet.create_session()
    session.execute("CREATE TABLE KV (K INTEGER, V INTEGER)")
    session.execute("INSERT INTO KV VALUES (1, 0)")
    answered = 0
    for index in range(12):
        if index % 3 == 2:
            session.execute("UPD KV SET V = V + 1 WHERE K = 1")
        else:
            assert session.execute("SEL COUNT(*) FROM KV").rows == [(1,)]
            answered += 1
    # Push replica 1's call counter past its outage window (each probe
    # consumes one odbc call), then force full convergence via replay.
    for __ in range(12):
        try:
            fleet.engines[1].execute("SEL COUNT(*) FROM KV")
            break
        except Exception:
            continue
    assert fleet.revive_replica(1)
    values = {tuple(engine.create_session().execute(
        "SEL V FROM KV WHERE K = 1").rows[0]) for engine in fleet.engines}
    session.close()
    return schedule, fleet.resilience.snapshot(), answered, values


def run_disconnect_storm(seed: int):
    """Every 2nd wire request the connection is cut; the client reconnects
    and the server must reclaim every orphaned session."""
    schedule = named_schedule("disconnect-storm", seed)
    engine = HyperQ(faults=schedule)
    survived = 0
    disconnects = 0
    with ServerThread(engine) as address:
        engine.execute("CREATE TABLE STORM (X INTEGER)")
        client = TdClient(*address)
        for index in range(16):
            try:
                client.execute(f"INS INTO STORM VALUES ({index})")
                survived += 1
            except (ProtocolError, ConnectionError, OSError):
                disconnects += 1
                client = TdClient(*address)  # the app-side reconnect loop
        client.close()
        rows = engine.execute("SEL COUNT(*) FROM STORM").rows
    return schedule, engine.resilience_stats(), survived, disconnects, rows


@requires_schedule("transient-errors")
class TestTransientErrors:
    def test_retried_to_success_with_zero_client_errors(self):
        schedule, stats, client_errors = run_transient_errors(SEED)
        assert client_errors == 0
        assert stats["retries"] > 0
        assert stats["retry_exhausted"] == 0
        assert schedule.injected_count() > 0

    def test_same_seed_reproduces_identical_event_log(self):
        first, __, __ = run_transient_errors(SEED)
        second, __, __ = run_transient_errors(SEED)
        assert first.event_log_bytes() == second.event_log_bytes()
        assert len(first.event_log()) > 0


@requires_schedule("replica-loss")
class TestReplicaLoss:
    def test_failover_answers_every_read_and_replays_writes(self):
        schedule, stats, answered, values = run_replica_loss(SEED)
        assert answered == 8          # every read answered
        assert stats["failovers"] > 0
        assert stats["quarantines"] > 0
        assert len(values) == 1       # all replicas reconverged
        assert schedule.injected_count() > 0

    def test_same_seed_reproduces_identical_event_log(self):
        first, __, __, __ = run_replica_loss(SEED)
        second, __, __, __ = run_replica_loss(SEED)
        assert first.event_log_bytes() == second.event_log_bytes()
        assert len(first.event_log()) > 0


@requires_schedule("disconnect-storm")
class TestDisconnectStorm:
    def test_server_reclaims_sessions_and_keeps_serving(self):
        schedule, stats, survived, disconnects, rows = \
            run_disconnect_storm(SEED)
        assert disconnects > 0
        assert survived > 0
        assert stats["wire_disconnects"] == disconnects
        assert rows == [(survived,)]
        assert schedule.injected_count() > 0

    def test_same_seed_reproduces_identical_event_log(self):
        first = run_disconnect_storm(SEED)[0]
        time.sleep(0.05)  # let handler threads finish logging
        second = run_disconnect_storm(SEED)[0]
        time.sleep(0.05)
        assert first.event_log_bytes() == second.event_log_bytes()
        assert len(first.event_log()) > 0
