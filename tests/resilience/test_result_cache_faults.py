"""Result-cache resilience: seeded churn must never change answers, and
a gateway worker crash must never let the restarted worker serve stale
cached results.

The ``result-cache-churn`` schedule force-evicts every 4th cache
operation's entry and forces a stale-version drop on every 7th — the
cache is deliberately unhealthy, and every answer must still match an
uncached run statement for statement."""

import socket
import time

import pytest

from repro.core.engine import HyperQ
from repro.core.faults import WORKER_CRASH, FaultSpec, named_schedule
from repro.core.gateway import Gateway, GatewayConfig
from repro.errors import ProtocolError
from repro.protocol.client import TdClient

SETUP_SQL = """
CREATE TABLE crash_t (a INTEGER);
INSERT INTO crash_t VALUES (1);
INSERT INTO crash_t VALUES (2);
"""

POISON = FaultSpec(WORKER_CRASH, "gateway", every=1, times=1,
                   match="hq_poison")


def churn_workload(session):
    """A repeated-read workload with interleaved single-table DML;
    returns every row list produced, in order."""
    outputs = []
    for round_index in range(6):
        for __ in range(3):
            outputs.append(session.execute(
                "SELECT ID, VAL FROM RC_T ORDER BY ID").rows)
            outputs.append(session.execute(
                "SELECT ID FROM RC_OTHER ORDER BY ID").rows)
        session.execute(f"INSERT INTO RC_T VALUES ({100 + round_index}, 1.5)")
        outputs.append(session.execute(
            "SELECT ID, VAL FROM RC_T ORDER BY ID").rows)
    return outputs


def build_session(engine):
    s = engine.create_session()
    s.execute("CREATE MULTISET TABLE RC_T (ID INTEGER, VAL DECIMAL(8,2))")
    s.execute("CREATE MULTISET TABLE RC_OTHER (ID INTEGER)")
    s.execute("INSERT INTO RC_T VALUES (1, 10.5)")
    s.execute("INSERT INTO RC_OTHER VALUES (9)")
    return s


class TestChurnSchedule:
    def test_answers_match_an_uncached_run(self):
        churned = HyperQ(result_cache_bytes=1 << 20,
                         faults=named_schedule("result-cache-churn", seed=3))
        plain = HyperQ()
        churned_rows = churn_workload(build_session(churned))
        plain_rows = churn_workload(build_session(plain))
        assert churned_rows == plain_rows
        stats = churned.result_cache_stats()
        # the schedule actually bit: forced evictions and paranoid stale
        # drops both fired, and the cache still took real hits between them
        assert stats.injected_evictions > 0
        assert stats.stale_drops > 0
        assert stats.hits > 0

    def test_churn_event_log_is_reproducible(self):
        logs = []
        for __ in range(2):
            schedule = named_schedule("result-cache-churn", seed=11)
            engine = HyperQ(result_cache_bytes=1 << 20, faults=schedule)
            churn_workload(build_session(engine))
            logs.append(schedule.event_log_bytes())
        assert logs[0] == logs[1] and logs[0]


def client_on_worker(gateway, address, worker: int,
                     attempts: int = 256) -> TdClient:
    host, port = address
    for __ in range(attempts):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, 0))
        if gateway.worker_for(sock.getsockname()) == worker:
            sock.connect((host, port))
            return TdClient(host, port, sock=sock)
        sock.close()
    raise AssertionError(f"no source port routed to worker {worker}")


def wait_for_restart(gw, worker: int, timeout: float = 10.0) -> None:
    started = time.monotonic()
    while time.monotonic() - started < timeout:
        if gw.restarts[worker] >= 1:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"worker {worker} not restarted within {timeout}s "
        f"(restarts: {gw.restarts})")


class TestCrashRestart:
    def test_restarted_worker_never_serves_stale_results(self):
        gw = Gateway(GatewayConfig(workers=2, setup_sql=SETUP_SQL,
                                   fault_specs=(POISON,),
                                   result_cache_bytes=1 << 20,
                                   supervision_interval=0.1))
        address = gw.start()
        try:
            victim = client_on_worker(gw, address, 1)
            try:
                # warm the victim worker's result cache
                sql = "SELECT a FROM crash_t ORDER BY a"
                assert victim.execute(sql).rows == [(1,), (2,)]
                assert victim.execute(sql).rows == [(1,), (2,)]
                with pytest.raises((ProtocolError, OSError)):
                    victim.execute("SELECT a FROM crash_t /* hq_poison */")
            finally:
                try:
                    victim.close()
                except OSError:
                    pass
            wait_for_restart(gw, worker=1)
            # the restarted worker reboots from setup_sql; DML then a
            # repeat of the warmed statement must reflect the new data,
            # never the pre-crash cached result
            with client_on_worker(gw, address, 1) as fresh:
                assert fresh.execute(sql).rows == [(1,), (2,)]
                fresh.execute("INSERT INTO crash_t VALUES (3)")
                assert fresh.execute(sql).rows == [(1,), (2,), (3,)]
        finally:
            gw.stop()
