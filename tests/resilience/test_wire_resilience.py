"""The Protocol Handler under adverse conditions: disconnects, deadlines,
session reclamation, graceful failure replies.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.errors import BackendError, ProtocolError
from repro.core.engine import HyperQ, HyperQSession
from repro.core.faults import (
    SLOW_RESULT, WIRE_DISCONNECT, FaultSchedule, FaultSpec,
)
from repro.protocol.client import TdClient
from repro.protocol.messages import MessageKind, read_message, send_message
from repro.protocol.server import ServerThread


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def close_counter(monkeypatch):
    """Counts HyperQSession.close calls without disturbing them."""
    closed = []
    original = HyperQSession.close

    def counting_close(self):
        closed.append(self)
        return original(self)

    monkeypatch.setattr(HyperQSession, "close", counting_close)
    return closed


class TestSessionReclamation:
    def test_clean_logoff_closes_the_session(self, close_counter):
        with ServerThread(HyperQ()) as address:
            client = TdClient(*address)
            client.execute("SEL 1")
            client.close()
            assert wait_until(lambda: len(close_counter) == 1)

    def test_abrupt_disconnect_closes_the_session_too(self, close_counter):
        """The satellite fix: a vanished client must not orphan its session
        (and the volatile-table overlay riding on it)."""
        with ServerThread(HyperQ()) as address:
            client = TdClient(*address)
            client.execute("CREATE VOLATILE TABLE GONE (X INTEGER)")
            client._sock.close()  # yank the cable: no LOGOFF
            assert wait_until(lambda: len(close_counter) == 1)

    def test_injected_disconnect_closes_the_session(self, close_counter):
        sched = FaultSchedule(0, [FaultSpec(WIRE_DISCONNECT, "wire", at=(2,))])
        engine = HyperQ(faults=sched)
        with ServerThread(engine) as address:
            client = TdClient(*address)
            client.execute("SEL 1")
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                client.execute("SEL 1")
            assert wait_until(lambda: len(close_counter) == 1)
        assert engine.resilience_stats()["wire_disconnects"] == 1

    def test_malformed_handshake_never_leaks_a_session(self, close_counter):
        with ServerThread(HyperQ()) as address:
            sock = socket.create_connection(address, timeout=5)
            # RUN_QUERY before LOGON is a protocol violation.
            send_message(sock, MessageKind.RUN_QUERY, b"SEL 1")
            sock.close()
            time.sleep(0.1)
        assert close_counter == []  # no session was ever created


class TestRequestTimeouts:
    def test_slow_request_gets_a_timely_failure_reply(self):
        sched = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "wire", at=(1,), delay=1.5)])
        engine = HyperQ(faults=sched)
        with ServerThread(engine, request_timeout=0.1) as address:
            client = TdClient(*address)
            start = time.monotonic()
            with pytest.raises(BackendError, match="timed out"):
                client.execute("SEL 1")
            assert time.monotonic() - start < 1.0
            client.close()
        assert engine.resilience_stats()["timeouts"] == 1

    def test_connection_survives_a_timeout(self):
        sched = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "wire", at=(1,), delay=0.4)])
        engine = HyperQ(faults=sched)
        with ServerThread(engine, request_timeout=0.1) as address:
            client = TdClient(*address)
            with pytest.raises(BackendError, match="timed out"):
                client.execute("SEL 1")
            time.sleep(0.5)  # let the straggler drain off the worker
            assert client.execute("SEL 1").rows == [(1,)]
            client.close()

    def test_fast_requests_unaffected_by_the_deadline(self):
        with ServerThread(HyperQ(), request_timeout=5.0) as address:
            client = TdClient(*address)
            assert client.execute("SEL 1").rows == [(1,)]
            client.close()


class TestGracefulFailures:
    def test_sql_errors_reply_failure_and_continue(self):
        with ServerThread(HyperQ()) as address:
            client = TdClient(*address)
            with pytest.raises(BackendError):
                client.execute("SELECT FROM WHERE")
            assert client.execute("SEL 1").rows == [(1,)]
            client.close()

    def test_internal_errors_reply_failure_not_hangup(self, monkeypatch):
        engine = HyperQ()

        def explode(self, sql):
            raise RuntimeError("wires crossed")

        with ServerThread(engine) as address:
            client = TdClient(*address)
            monkeypatch.setattr(HyperQSession, "execute", explode)
            with pytest.raises(BackendError, match="internal error"):
                client.execute("SEL 1")
            monkeypatch.undo()
            assert client.execute("SEL 1").rows == [(1,)]
            client.close()

    def test_slow_result_without_deadline_just_arrives_late(self):
        sched = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "wire", at=(1,), delay=0.05)])
        engine = HyperQ(faults=sched)
        with ServerThread(engine) as address:
            client = TdClient(*address)
            start = time.monotonic()
            assert client.execute("SEL 1").rows == [(1,)]
            assert time.monotonic() - start >= 0.05
            client.close()
