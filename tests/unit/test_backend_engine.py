"""Unit tests for the backend SQL engine: parsing, planning, execution.

These drive the backend through its public SQL interface — the same way the
Hyper-Q serializer output reaches it.
"""

import datetime

import pytest

from repro.errors import BackendError, CatalogError, HyperQError, ParseError
from repro.backend import Database
from repro.transform.capabilities import HYPERION_PLUS


@pytest.fixture
def db(backend_session):
    s = backend_session
    s.execute("CREATE TABLE NUMS (N INTEGER, LABEL VARCHAR(10), F DOUBLE PRECISION)")
    s.execute("INSERT INTO NUMS VALUES (1, 'one', 1.5), (2, 'two', 2.5), "
              "(3, 'three', 3.5), (NULL, 'none', NULL)")
    return s


class TestSelectBasics:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM NUMS ORDER BY N")
        assert result.columns == ["N", "LABEL", "F"]
        assert result.rowcount == 4

    def test_projection_aliases(self, db):
        result = db.execute("SELECT N * 2 AS DOUBLED FROM NUMS WHERE N = 2")
        assert result.columns == ["DOUBLED"]
        assert result.rows == [(4,)]

    def test_where_null_comparison_filters_row(self, db):
        result = db.execute("SELECT LABEL FROM NUMS WHERE N > 0")
        assert len(result.rows) == 3  # NULL row never qualifies

    def test_is_null_predicate(self, db):
        result = db.execute("SELECT LABEL FROM NUMS WHERE N IS NULL")
        assert result.rows == [("none",)]

    def test_select_without_from(self, db):
        result = db.execute("SELECT 1 + 2 AS X")
        assert result.rows == [(3,)]

    def test_distinct(self, db):
        db.execute("INSERT INTO NUMS VALUES (1, 'one', 1.5)")
        result = db.execute("SELECT DISTINCT N, LABEL FROM NUMS WHERE N = 1")
        assert result.rowcount == 1

    def test_limit_and_offset(self, db):
        result = db.execute("SELECT N FROM NUMS WHERE N IS NOT NULL "
                            "ORDER BY N LIMIT 2 OFFSET 1")
        assert result.rows == [(2,), (3,)]

    def test_between_and_in(self, db):
        result = db.execute("SELECT N FROM NUMS WHERE N BETWEEN 2 AND 3 "
                            "AND LABEL IN ('two', 'three') ORDER BY N")
        assert result.rows == [(2,), (3,)]

    def test_case_expression(self, db):
        result = db.execute(
            "SELECT CASE WHEN N >= 2 THEN 'big' ELSE 'small' END AS SIZE "
            "FROM NUMS WHERE N IS NOT NULL ORDER BY N")
        assert [row[0] for row in result.rows] == ["small", "big", "big"]


class TestOrderBy:
    def test_order_by_ordinal(self, db):
        result = db.execute("SELECT LABEL, N FROM NUMS WHERE N IS NOT NULL "
                            "ORDER BY 2 DESC")
        assert [row[1] for row in result.rows] == [3, 2, 1]

    def test_nulls_last_default(self, db):
        result = db.execute("SELECT N FROM NUMS ORDER BY N")
        assert result.rows[-1] == (None,)

    def test_explicit_nulls_first(self, db):
        result = db.execute("SELECT N FROM NUMS ORDER BY N ASC NULLS FIRST")
        assert result.rows[0] == (None,)

    def test_order_by_expression_not_in_select(self, db):
        result = db.execute("SELECT LABEL FROM NUMS WHERE N IS NOT NULL "
                            "ORDER BY F DESC")
        assert [row[0] for row in result.rows] == ["three", "two", "one"]

    def test_order_by_alias(self, db):
        result = db.execute("SELECT N * -1 AS NEG FROM NUMS "
                            "WHERE N IS NOT NULL ORDER BY NEG")
        assert [row[0] for row in result.rows] == [-3, -2, -1]


class TestAggregation:
    def test_global_aggregate(self, db):
        result = db.execute("SELECT COUNT(*), COUNT(N), SUM(N), AVG(N), "
                            "MIN(N), MAX(N) FROM NUMS")
        assert result.rows == [(4, 3, 6, 2.0, 1, 3)]

    def test_global_aggregate_over_empty_input(self, db):
        result = db.execute("SELECT COUNT(*), SUM(N) FROM NUMS WHERE N > 99")
        assert result.rows == [(0, None)]

    def test_group_by_with_having(self, backend_session):
        s = backend_session
        s.execute("CREATE TABLE G (K INTEGER, V INTEGER)")
        s.execute("INSERT INTO G VALUES (1, 10), (1, 20), (2, 5), (3, 1), (3, 2)")
        result = s.execute("SELECT K, SUM(V) AS TOTAL FROM G GROUP BY K "
                           "HAVING SUM(V) > 4 ORDER BY K")
        assert result.rows == [(1, 30), (2, 5)]

    def test_aggregate_of_expression(self, db):
        result = db.execute("SELECT SUM(N * F) FROM NUMS")
        assert result.rows == [(1 * 1.5 + 2 * 2.5 + 3 * 3.5,)]

    def test_group_by_expression_reused_in_select(self, db):
        result = db.execute(
            "SELECT N % 2 AS PARITY, COUNT(*) FROM NUMS WHERE N IS NOT NULL "
            "GROUP BY N % 2 ORDER BY 1")
        assert result.rows == [(0, 1), (1, 2)]

    def test_count_distinct(self, db):
        db.execute("INSERT INTO NUMS VALUES (1, 'uno', 9.9)")
        result = db.execute("SELECT COUNT(DISTINCT N) FROM NUMS")
        assert result.rows == [(3,)]

    def test_having_without_group_by_rejected_without_aggregate(self, db):
        with pytest.raises(HyperQError):
            db.execute("SELECT N FROM NUMS HAVING N > 1")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(HyperQError):
            db.execute("SELECT N FROM NUMS WHERE SUM(N) > 1")


class TestJoins:
    @pytest.fixture
    def joined(self, backend_session):
        s = backend_session
        s.execute("CREATE TABLE L (ID INTEGER, V VARCHAR(5))")
        s.execute("CREATE TABLE R (ID INTEGER, W VARCHAR(5))")
        s.execute("INSERT INTO L VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        s.execute("INSERT INTO R VALUES (2, 'x'), (3, 'y'), (4, 'z')")
        return s

    def test_inner_join(self, joined):
        result = joined.execute(
            "SELECT L.V, R.W FROM L JOIN R ON L.ID = R.ID ORDER BY L.ID")
        assert result.rows == [("b", "x"), ("c", "y")]

    def test_left_join_null_extends(self, joined):
        result = joined.execute(
            "SELECT L.V, R.W FROM L LEFT JOIN R ON L.ID = R.ID ORDER BY L.ID")
        assert result.rows == [("a", None), ("b", "x"), ("c", "y")]

    def test_right_join(self, joined):
        result = joined.execute(
            "SELECT L.V, R.W FROM L RIGHT JOIN R ON L.ID = R.ID ORDER BY R.ID")
        assert result.rows == [("b", "x"), ("c", "y"), (None, "z")]

    def test_full_join(self, joined):
        result = joined.execute(
            "SELECT L.V, R.W FROM L FULL JOIN R ON L.ID = R.ID")
        assert len(result.rows) == 4

    def test_cross_join(self, joined):
        result = joined.execute("SELECT COUNT(*) FROM L CROSS JOIN R")
        assert result.rows == [(9,)]

    def test_comma_join_with_where(self, joined):
        result = joined.execute(
            "SELECT L.V FROM L, R WHERE L.ID = R.ID AND R.W = 'y'")
        assert result.rows == [("c",)]

    def test_join_with_residual_predicate(self, joined):
        result = joined.execute(
            "SELECT L.V FROM L JOIN R ON L.ID = R.ID AND R.W <> 'x' ")
        assert result.rows == [("c",)]

    def test_null_join_keys_never_match(self, joined):
        joined.execute("INSERT INTO L VALUES (NULL, 'n')")
        joined.execute("INSERT INTO R VALUES (NULL, 'm')")
        result = joined.execute(
            "SELECT COUNT(*) FROM L JOIN R ON L.ID = R.ID")
        assert result.rows == [(2,)]

    def test_ambiguous_column_rejected(self, joined):
        with pytest.raises(HyperQError):
            joined.execute("SELECT ID FROM L JOIN R ON L.ID = R.ID")


class TestWindowFunctions:
    @pytest.fixture
    def scores(self, backend_session):
        s = backend_session
        s.execute("CREATE TABLE SCORES (TEAM VARCHAR(2), PTS INTEGER)")
        s.execute("INSERT INTO SCORES VALUES ('a', 10), ('a', 20), ('a', 20), "
                  "('b', 5), ('b', 15)")
        return s

    def test_rank_with_ties(self, scores):
        result = scores.execute(
            "SELECT PTS, RANK() OVER (ORDER BY PTS DESC) AS R FROM SCORES "
            "WHERE TEAM = 'a' ORDER BY R, PTS")
        assert result.rows == [(20, 1), (20, 1), (10, 3)]

    def test_dense_rank(self, scores):
        result = scores.execute(
            "SELECT PTS, DENSE_RANK() OVER (ORDER BY PTS DESC) AS R "
            "FROM SCORES WHERE TEAM = 'a' ORDER BY R, PTS")
        assert result.rows == [(20, 1), (20, 1), (10, 2)]

    def test_row_number_partitioned(self, scores):
        result = scores.execute(
            "SELECT TEAM, PTS, ROW_NUMBER() OVER (PARTITION BY TEAM "
            "ORDER BY PTS) AS RN FROM SCORES ORDER BY TEAM, RN")
        assert [row[2] for row in result.rows] == [1, 2, 3, 1, 2]

    def test_sum_over_partition(self, scores):
        result = scores.execute(
            "SELECT TEAM, SUM(PTS) OVER (PARTITION BY TEAM) AS TOTAL "
            "FROM SCORES ORDER BY TEAM, TOTAL")
        assert {(row[0], row[1]) for row in result.rows} == {("a", 50), ("b", 20)}

    def test_running_sum_with_peers(self, scores):
        result = scores.execute(
            "SELECT PTS, SUM(PTS) OVER (ORDER BY PTS) AS RUNNING "
            "FROM SCORES WHERE TEAM = 'a' ORDER BY PTS")
        # Peer rows (20, 20) share the running value 50.
        assert result.rows == [(10, 10), (20, 50), (20, 50)]

    def test_window_without_over_rejected(self, scores):
        with pytest.raises(HyperQError):
            scores.execute("SELECT RANK() FROM SCORES")


class TestSetOperations:
    @pytest.fixture
    def sets(self, backend_session):
        s = backend_session
        s.execute("CREATE TABLE S1 (X INTEGER)")
        s.execute("CREATE TABLE S2 (X INTEGER)")
        s.execute("INSERT INTO S1 VALUES (1), (2), (2), (3)")
        s.execute("INSERT INTO S2 VALUES (2), (3), (4)")
        return s

    def test_union_distinct(self, sets):
        result = sets.execute("(SELECT X FROM S1) UNION (SELECT X FROM S2) "
                              "ORDER BY 1")
        assert result.rows == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, sets):
        result = sets.execute("(SELECT X FROM S1) UNION ALL (SELECT X FROM S2)")
        assert result.rowcount == 7

    def test_intersect(self, sets):
        result = sets.execute("(SELECT X FROM S1) INTERSECT (SELECT X FROM S2) "
                              "ORDER BY 1")
        assert result.rows == [(2,), (3,)]

    def test_except(self, sets):
        result = sets.execute("(SELECT X FROM S1) EXCEPT (SELECT X FROM S2) "
                              "ORDER BY 1")
        assert result.rows == [(1,)]

    def test_arity_mismatch_rejected(self, sets):
        with pytest.raises(HyperQError):
            sets.execute("(SELECT X FROM S1) UNION (SELECT X, X FROM S2)")


class TestCTEs:
    def test_nonrecursive_cte(self, db):
        result = db.execute(
            "WITH BIG (N) AS (SELECT N FROM NUMS WHERE N >= 2) "
            "SELECT COUNT(*) FROM BIG")
        assert result.rows == [(2,)]

    def test_cte_referenced_twice(self, db):
        result = db.execute(
            "WITH B AS (SELECT N FROM NUMS WHERE N IS NOT NULL) "
            "SELECT COUNT(*) FROM B JOIN B B2 ON B.N = B2.N")
        assert result.rows == [(3,)]

    def test_recursive_cte_rejected_on_default_profile(self, db):
        with pytest.raises(HyperQError):
            db.execute(
                "WITH RECURSIVE R (N) AS (SELECT 1 UNION ALL "
                "SELECT N + 1 FROM R WHERE N < 3) SELECT * FROM R")

    def test_recursive_cte_on_capable_profile(self):
        database = Database(HYPERION_PLUS)
        result = database.execute(
            "WITH RECURSIVE R (N) AS (SELECT 1 AS N UNION ALL "
            "SELECT N + 1 FROM R WHERE N < 4) SELECT N FROM R ORDER BY N")
        assert result.rows == [(1,), (2,), (3,), (4,)]


class TestDML:
    def test_update_with_predicate(self, db):
        count = db.execute("UPDATE NUMS SET F = F * 2 WHERE N = 1").rowcount
        assert count == 1
        assert db.execute("SELECT F FROM NUMS WHERE N = 1").rows == [(3.0,)]

    def test_delete(self, db):
        assert db.execute("DELETE FROM NUMS WHERE N IS NULL").rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM NUMS").rows == [(3,)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE COPY (N INTEGER, LABEL VARCHAR(10), F DOUBLE PRECISION)")
        count = db.execute("INSERT INTO COPY SELECT * FROM NUMS").rowcount
        assert count == 4

    def test_insert_with_column_list_fills_defaults(self, backend_session):
        s = backend_session
        s.execute("CREATE TABLE D (A INTEGER, B VARCHAR(5) DEFAULT 'dd')")
        s.execute("INSERT INTO D (A) VALUES (1)")
        assert s.execute("SELECT B FROM D").rows == [("dd",)]

    def test_ctas(self, db):
        db.execute("CREATE TABLE BIG AS SELECT N FROM NUMS WHERE N >= 2")
        assert db.execute("SELECT COUNT(*) FROM BIG").rows == [(2,)]

    def test_truncate(self, db):
        db.execute("TRUNCATE TABLE NUMS")
        assert db.execute("SELECT COUNT(*) FROM NUMS").rows == [(0,)]

    def test_views_expand(self, db):
        db.execute("CREATE VIEW POS AS SELECT N, LABEL FROM NUMS WHERE N > 1")
        result = db.execute("SELECT LABEL FROM POS ORDER BY N")
        assert result.rows == [("two",), ("three",)]
        db.execute("DROP VIEW POS")
        with pytest.raises(HyperQError):
            db.execute("SELECT * FROM POS")


class TestTemporaryTables:
    def test_temp_tables_are_session_scoped(self, backend):
        one = backend.create_session()
        two = backend.create_session()
        one.execute("CREATE TEMPORARY TABLE TT (X INTEGER)")
        one.execute("INSERT INTO TT VALUES (1)")
        assert one.execute("SELECT COUNT(*) FROM TT").rows == [(1,)]
        with pytest.raises(HyperQError):
            two.execute("SELECT * FROM TT")

    def test_temp_shadows_permanent(self, backend):
        session = backend.create_session()
        session.execute("CREATE TABLE TT (X INTEGER)")
        session.execute("INSERT INTO TT VALUES (1)")
        session.execute("CREATE TEMPORARY TABLE TT (X INTEGER)")
        assert session.execute("SELECT COUNT(*) FROM TT").rows == [(0,)]


class TestParserErrors:
    def test_syntax_error_reports_position(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT FROM WHERE")

    def test_teradata_shortcut_rejected(self, db):
        with pytest.raises(HyperQError):
            db.execute("SEL * FROM NUMS")

    def test_qualify_rejected(self, db):
        with pytest.raises(HyperQError):
            db.execute("SELECT N FROM NUMS QUALIFY RANK() OVER (ORDER BY N) = 1")

    def test_merge_gated_by_profile(self, db):
        with pytest.raises(BackendError):
            db.execute("MERGE INTO NUMS USING NUMS N2 ON 1 = 1 "
                       "WHEN MATCHED THEN UPDATE SET N = 1")

    def test_unknown_table_raises_catalog_error(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM MISSING")

    def test_multiple_statements_rejected_by_execute(self, db):
        with pytest.raises(HyperQError):
            db.execute("SELECT 1; SELECT 2")

    def test_execute_script_runs_multiple(self, db):
        results = db.execute_script("SELECT 1 AS A; SELECT 2 AS B;")
        assert [r.rows for r in results] == [[(1,)], [(2,)]]
