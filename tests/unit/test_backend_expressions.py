"""Unit tests for the backend's scalar evaluator: three-valued logic, type
strictness, LIKE, CASE, CAST, quantified/vector comparison semantics."""

import datetime

import pytest

from repro.errors import BackendError, TypeMismatchError
from repro.backend.expressions import (
    Env, EvalContext, Evaluator, cast_value, like_match,
)
from repro.transform.capabilities import HYPERION, HYPERION_PLUS, TERADATA
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn


def make_ctx(**columns):
    names = list(columns)
    env = Env([OutputColumn(name.upper(), t.UNKNOWN) for name in names])
    return EvalContext(tuple(columns[name] for name in names), env, None)


@pytest.fixture
def ev():
    return Evaluator(HYPERION, lambda plan, outer: ([], []))


def comp(op, left, right):
    return s.Comp(op, _lit(left), _lit(right))


def _lit(value):
    if isinstance(value, s.ScalarExpr):
        return value
    return s.Const(value, t.UNKNOWN)


class TestThreeValuedLogic:
    def test_comparison_with_null_is_unknown(self, ev):
        ctx = make_ctx()
        assert ev.eval(comp(s.CompOp.EQ, None, 1), ctx) is None
        assert ev.eval(comp(s.CompOp.LT, 1, None), ctx) is None

    def test_and_short_circuit_semantics(self, ev):
        ctx = make_ctx()
        false = s.Const(False, t.BOOLEAN)
        null = s.Const(None, t.BOOLEAN)
        true = s.Const(True, t.BOOLEAN)
        assert ev.eval(s.BoolOp(s.BoolOpKind.AND, [false, null]), ctx) is False
        assert ev.eval(s.BoolOp(s.BoolOpKind.AND, [true, null]), ctx) is None
        assert ev.eval(s.BoolOp(s.BoolOpKind.OR, [true, null]), ctx) is True
        assert ev.eval(s.BoolOp(s.BoolOpKind.OR, [false, null]), ctx) is None

    def test_not_of_unknown_is_unknown(self, ev):
        ctx = make_ctx()
        assert ev.eval(s.Not(s.Const(None, t.BOOLEAN)), ctx) is None

    def test_eval_bool_treats_unknown_as_false(self, ev):
        ctx = make_ctx()
        assert ev.eval_bool(s.Const(None, t.BOOLEAN), ctx) is False

    def test_in_list_null_semantics(self, ev):
        ctx = make_ctx()
        # 1 IN (2, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE.
        unknown = s.InList(_lit(1), [_lit(2), _lit(None)])
        assert ev.eval(unknown, ctx) is None
        hit = s.InList(_lit(1), [_lit(1), _lit(None)])
        assert ev.eval(hit, ctx) is True
        # NOT IN flips; UNKNOWN stays UNKNOWN.
        neg = s.InList(_lit(1), [_lit(2), _lit(None)], negated=True)
        assert ev.eval(neg, ctx) is None


class TestComparisons:
    def test_char_padding_ignored(self, ev):
        ctx = make_ctx()
        assert ev.eval(comp(s.CompOp.EQ, "abc  ", "abc"), ctx) is True

    def test_date_vs_int_rejected_on_strict_profile(self, ev):
        ctx = make_ctx()
        expr = comp(s.CompOp.GT, datetime.date(2014, 1, 2), 1140101)
        with pytest.raises(TypeMismatchError):
            ev.eval(expr, ctx)

    def test_date_vs_int_allowed_on_teradata_profile(self):
        ev = Evaluator(TERADATA, lambda plan, outer: ([], []))
        ctx = make_ctx()
        expr = comp(s.CompOp.GT, datetime.date(2014, 1, 2), 1140101)
        assert ev.eval(expr, ctx) is True

    def test_date_vs_timestamp_comparable(self, ev):
        ctx = make_ctx()
        expr = comp(s.CompOp.LT, datetime.date(2014, 1, 1),
                    datetime.datetime(2014, 1, 1, 12, 0))
        assert ev.eval(expr, ctx) is True

    def test_text_vs_number_rejected(self, ev):
        ctx = make_ctx()
        with pytest.raises(TypeMismatchError):
            ev.eval(comp(s.CompOp.EQ, "1", 1), ctx)


class TestArithmetic:
    def test_null_propagates(self, ev):
        ctx = make_ctx()
        expr = s.Arith(s.ArithOp.ADD, _lit(1), _lit(None))
        assert ev.eval(expr, ctx) is None

    def test_division_by_zero_raises(self, ev):
        ctx = make_ctx()
        with pytest.raises(BackendError):
            ev.eval(s.Arith(s.ArithOp.DIV, _lit(1), _lit(0)), ctx)

    def test_date_minus_date_gives_days(self, ev):
        ctx = make_ctx()
        expr = s.Arith(s.ArithOp.SUB, _lit(datetime.date(2014, 1, 10)),
                       _lit(datetime.date(2014, 1, 1)))
        assert ev.eval(expr, ctx) == 9

    def test_date_plus_int_rejected_on_strict_profile(self, ev):
        ctx = make_ctx()
        expr = s.Arith(s.ArithOp.ADD, _lit(datetime.date(2014, 1, 1)), _lit(5))
        with pytest.raises(TypeMismatchError):
            ev.eval(expr, ctx)

    def test_date_plus_int_on_permissive_profile(self):
        ev = Evaluator(TERADATA, lambda plan, outer: ([], []))
        ctx = make_ctx()
        expr = s.Arith(s.ArithOp.ADD, _lit(datetime.date(2014, 1, 1)), _lit(5))
        assert ev.eval(expr, ctx) == datetime.date(2014, 1, 6)

    def test_concat(self, ev):
        ctx = make_ctx()
        expr = s.Arith(s.ArithOp.CONCAT, _lit("foo"), _lit("bar"))
        assert ev.eval(expr, ctx) == "foobar"


class TestCaseAndCast:
    def test_searched_case_first_match_wins(self, ev):
        ctx = make_ctx()
        expr = s.Case(None,
                      [s.Const(False, t.BOOLEAN), s.Const(True, t.BOOLEAN)],
                      [_lit("a"), _lit("b")], _lit("c"))
        assert ev.eval(expr, ctx) == "b"

    def test_simple_case_compares_operand(self, ev):
        ctx = make_ctx()
        expr = s.Case(_lit(2), [_lit(1), _lit(2)], [_lit("one"), _lit("two")])
        assert ev.eval(expr, ctx) == "two"

    def test_case_without_match_and_default_is_null(self, ev):
        ctx = make_ctx()
        expr = s.Case(None, [s.Const(False, t.BOOLEAN)], [_lit("x")])
        assert ev.eval(expr, ctx) is None

    def test_cast_string_to_date(self):
        assert cast_value("2014-05-06", t.DATE) == datetime.date(2014, 5, 6)

    def test_cast_teradata_int_to_date(self):
        assert cast_value(1140101, t.DATE) == datetime.date(2014, 1, 1)

    def test_cast_decimal_rounds_to_scale(self):
        assert cast_value(1.23456, t.decimal(10, 2)) == 1.23

    def test_cast_char_pads(self):
        assert cast_value("ab", t.char(4)) == "ab  "

    def test_cast_bad_string_raises(self):
        with pytest.raises(BackendError):
            cast_value("nope", t.INTEGER)


class TestLike:
    @pytest.mark.parametrize("value,pattern,expected", [
        ("hello", "h%", True),
        ("hello", "%llo", True),
        ("hello", "h_llo", True),
        ("hello", "H%", False),
        ("100%", r"100!%", False),
        ("a.b", "a.b", True),
        ("axb", "a.b", False),  # '.' is literal, not regex
    ])
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern, None) is expected

    def test_escape_character(self):
        assert like_match("100%", "100!%", "!") is True
        assert like_match("100x", "100!%", "!") is False


class TestVectorComparison:
    """Section 5: (a, b) > (g, n) means a > g OR (a = g AND b > n)."""

    def make_eval(self, rows):
        return Evaluator(HYPERION_PLUS,
                         lambda plan, outer: ([], rows))

    def vector(self, op, left_values, quantifier=s.Quantifier.ANY):
        return s.SubqueryExpr(
            kind=s.SubqueryKind.QUANTIFIED, plan=object(),
            left=[_lit(v) for v in left_values], op=op, quantifier=quantifier)

    def test_gt_any_ties_broken_by_second(self):
        ev = self.make_eval([(90.0, 70.0), (60.0, 40.0)])
        ctx = make_ctx()
        # (90, 80) vs rows: equal on first with 80 > 70 -> True.
        assert ev.eval(self.vector(s.CompOp.GT, [90.0, 80.0]), ctx) is True
        # (60, 40): ties (60,40) exactly; not strictly greater.
        assert ev.eval(self.vector(s.CompOp.GT, [60.0, 40.0]), ctx) is False
        # GE accepts exact tie.
        assert ev.eval(self.vector(s.CompOp.GE, [60.0, 40.0]), ctx) is True

    def test_eq_all_requires_all_rows_equal(self):
        ev = self.make_eval([(1, 2), (1, 2)])
        ctx = make_ctx()
        assert ev.eval(self.vector(s.CompOp.EQ, [1, 2], s.Quantifier.ALL),
                       ctx) is True

    def test_null_in_vector_gives_unknown(self):
        ev = self.make_eval([(1, None)])
        ctx = make_ctx()
        assert ev.eval(self.vector(s.CompOp.GT, [1, 5]), ctx) is None

    def test_vector_rejected_on_weak_profile(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], [(1, 2)]))
        ctx = make_ctx()
        with pytest.raises(BackendError):
            ev.eval(self.vector(s.CompOp.GT, [1, 2]), ctx)


class TestSubqueries:
    def test_scalar_subquery_multiple_rows_raises(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], [(1,), (2,)]))
        expr = s.SubqueryExpr(kind=s.SubqueryKind.SCALAR, plan=object())
        with pytest.raises(BackendError):
            ev.eval(expr, make_ctx())

    def test_scalar_subquery_empty_is_null(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], []))
        expr = s.SubqueryExpr(kind=s.SubqueryKind.SCALAR, plan=object())
        assert ev.eval(expr, make_ctx()) is None

    def test_exists_and_negation(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], [(1,)]))
        expr = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=object())
        assert ev.eval(expr, make_ctx()) is True
        expr.negated = True
        assert ev.eval(expr, make_ctx()) is False

    def test_in_subquery_null_semantics(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], [(2,), (None,)]))
        expr = s.SubqueryExpr(kind=s.SubqueryKind.IN, plan=object(),
                              left=[_lit(1)])
        assert ev.eval(expr, make_ctx()) is None  # not found, NULL present

    def test_column_resolution_through_outer_context(self):
        ev = Evaluator(HYPERION, lambda plan, outer: ([], []))
        outer = make_ctx(x=41)
        inner = EvalContext((), Env([]), outer)
        assert ev.eval(s.ColumnRef("X"), inner) == 41
