"""Unit tests for the backend builtin function library and aggregates."""

import datetime
import math

import pytest

from repro.errors import BackendError
from repro.backend import functions as fl


class TestScalarFunctions:
    def test_length_ignores_trailing_blanks(self):
        assert fl.call_scalar("LENGTH", ["abc  "]) == 3

    def test_upper_lower(self):
        assert fl.call_scalar("UPPER", ["MiXeD"]) == "MIXED"
        assert fl.call_scalar("LOWER", ["MiXeD"]) == "mixed"

    def test_null_propagation(self):
        assert fl.call_scalar("UPPER", [None]) is None
        assert fl.call_scalar("ABS", [None]) is None

    def test_coalesce_skips_nulls(self):
        assert fl.call_scalar("COALESCE", [None, None, 7]) == 7
        assert fl.call_scalar("COALESCE", [None]) is None

    def test_nullif(self):
        assert fl.call_scalar("NULLIF", [5, 5]) is None
        assert fl.call_scalar("NULLIF", [5, 6]) == 5

    def test_substring_is_one_based(self):
        assert fl.call_scalar("SUBSTRING", ["hello", 2, 3]) == "ell"
        assert fl.call_scalar("SUBSTRING", ["hello", 1]) == "hello"

    def test_substring_with_nonpositive_start(self):
        assert fl.call_scalar("SUBSTRING", ["hello", 0, 3]) == "he"

    def test_position(self):
        assert fl.call_scalar("POSITION", ["ll", "hello"]) == 3
        assert fl.call_scalar("POSITION", ["xx", "hello"]) == 0

    def test_trim_family(self):
        assert fl.call_scalar("TRIM", ["  x  "]) == "x"
        assert fl.call_scalar("LTRIM", ["  x  "]) == "x  "
        assert fl.call_scalar("RTRIM", ["  x  "]) == "  x"

    def test_round_and_floor(self):
        assert fl.call_scalar("ROUND", [2.567, 2]) == 2.57
        assert fl.call_scalar("FLOOR", [2.9]) == 2
        assert fl.call_scalar("CEIL", [2.1]) == 3

    def test_mod_and_power(self):
        assert fl.call_scalar("MOD", [10, 3]) == 1
        assert fl.call_scalar("POWER", [2, 10]) == 1024

    def test_dateadd_units(self):
        base = datetime.date(2014, 1, 31)
        assert fl.call_scalar("DATEADD", ["DAY", 1, base]) == datetime.date(2014, 2, 1)
        assert fl.call_scalar("DATEADD", ["MONTH", 1, base]) == datetime.date(2014, 2, 28)
        assert fl.call_scalar("DATEADD", ["YEAR", -1, base]) == datetime.date(2013, 1, 31)

    def test_datediff(self):
        a = datetime.date(2014, 1, 1)
        b = datetime.date(2014, 3, 1)
        assert fl.call_scalar("DATEDIFF", ["DAY", a, b]) == 59
        assert fl.call_scalar("DATEDIFF", ["MONTH", a, b]) == 2

    def test_add_months_clamps_day(self):
        assert fl.call_scalar("ADD_MONTHS", [datetime.date(2014, 1, 31), 1]) \
            == datetime.date(2014, 2, 28)

    def test_last_day(self):
        assert fl.call_scalar("LAST_DAY", [datetime.date(2014, 2, 10)]) \
            == datetime.date(2014, 2, 28)

    def test_current_date_is_deterministic(self):
        first = fl.call_scalar("CURRENT_DATE", [])
        second = fl.call_scalar("CURRENT_DATE", [])
        assert first == second

    def test_unknown_function_raises(self):
        with pytest.raises(BackendError):
            fl.call_scalar("NO_SUCH_FN", [1])

    def test_wrong_arity_raises(self):
        with pytest.raises(BackendError):
            fl.call_scalar("NULLIF", [1])


class TestAggregates:
    def run_agg(self, name, values, distinct=False, star=False):
        acc = fl.make_accumulator(name, distinct, star)
        for value in values:
            acc.add(value)
        return acc.result()

    def test_sum_ignores_nulls(self):
        assert self.run_agg("SUM", [1, None, 2]) == 3

    def test_sum_of_all_nulls_is_null(self):
        assert self.run_agg("SUM", [None, None]) is None

    def test_count_ignores_nulls_but_count_star_does_not(self):
        assert self.run_agg("COUNT", [1, None, 2]) == 2
        assert self.run_agg("COUNT", [1, None, 2], star=True) == 3

    def test_avg(self):
        assert self.run_agg("AVG", [2, 4, None]) == 3.0
        assert self.run_agg("AVG", []) is None

    def test_min_max(self):
        assert self.run_agg("MIN", [3, 1, 2]) == 1
        assert self.run_agg("MAX", ["a", "c", "b"]) == "c"

    def test_distinct_wrapper(self):
        assert self.run_agg("SUM", [1, 1, 2], distinct=True) == 3
        assert self.run_agg("COUNT", [1, 1, 2, None], distinct=True) == 2

    def test_stddev_samp(self):
        result = self.run_agg("STDDEV_SAMP", [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert math.isclose(result, 2.138, rel_tol=1e-3)

    def test_stddev_of_single_value_is_null(self):
        assert self.run_agg("STDDEV_SAMP", [1.0]) is None

    def test_unknown_aggregate_raises(self):
        with pytest.raises(BackendError):
            fl.make_accumulator("MEDIAN")
