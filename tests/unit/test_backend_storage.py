"""Unit tests for backend storage: coercion, NOT NULL, defaults, catalog."""

import datetime

import pytest

from repro.errors import BackendError, CatalogError, TypeMismatchError
from repro.backend.catalog import Catalog
from repro.backend.storage import Table, coerce_value, default_value_for
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema


def schema():
    return TableSchema("T", [
        ColumnSchema("A", t.INTEGER, nullable=False),
        ColumnSchema("B", t.varchar(5)),
        ColumnSchema("C", t.decimal(10, 2)),
    ])


class TestCoercion:
    def test_null_always_passes(self):
        assert coerce_value(None, t.INTEGER) is None

    def test_integral_float_narrows_to_int(self):
        assert coerce_value(2.0, t.INTEGER) == 2

    def test_fractional_float_to_int_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(2.5, t.INTEGER)

    def test_bool_is_not_an_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, t.INTEGER)

    def test_int_widens_to_decimal(self):
        assert coerce_value(3, t.decimal(10, 2)) == 3.0

    def test_char_pads_and_varchar_checks_length(self):
        assert coerce_value("ab", t.char(4)) == "ab  "
        with pytest.raises(TypeMismatchError):
            coerce_value("toolong", t.varchar(3))

    def test_datetime_narrows_to_date(self):
        stamp = datetime.datetime(2014, 5, 1, 10, 30)
        assert coerce_value(stamp, t.DATE) == datetime.date(2014, 5, 1)

    def test_date_widens_to_timestamp(self):
        value = coerce_value(datetime.date(2014, 5, 1), t.TIMESTAMP)
        assert value == datetime.datetime(2014, 5, 1)


class TestTable:
    def test_insert_and_count(self):
        table = Table(schema())
        table.insert_row((1, "ab", 2.5))
        assert len(table) == 1

    def test_not_null_enforced(self):
        table = Table(schema())
        with pytest.raises(BackendError):
            table.insert_row((None, "x", 1.0))

    def test_arity_checked(self):
        table = Table(schema())
        with pytest.raises(BackendError):
            table.insert_row((1, "x"))

    def test_truncate_returns_removed_count(self):
        table = Table(schema())
        table.insert_rows([(1, "a", 1.0), (2, "b", 2.0)])
        assert table.truncate() == 2
        assert len(table) == 0

    def test_column_index(self):
        table = Table(schema())
        assert table.column_index("b") == 1
        with pytest.raises(BackendError):
            table.column_index("nope")


class TestDefaults:
    def test_literal_defaults(self):
        assert default_value_for(ColumnSchema("X", t.INTEGER, default_sql="7")) == 7
        assert default_value_for(ColumnSchema("X", t.FLOAT, default_sql="1.5")) == 1.5
        assert default_value_for(
            ColumnSchema("X", t.varchar(5), default_sql="'hi'")) == "hi"
        assert default_value_for(ColumnSchema("X", t.INTEGER, default_sql="NULL")) is None

    def test_nonconstant_default_rejected_by_backend(self):
        column = ColumnSchema("X", t.DATE, default_sql="CURRENT_DATE")
        with pytest.raises(BackendError):
            default_value_for(column)


class TestCatalog:
    def test_create_and_resolve(self):
        catalog = Catalog()
        catalog.create_table(schema())
        assert catalog.has_table("t")
        assert catalog.table("T").schema.name == "T"

    def test_duplicate_table_raises_unless_if_not_exists(self):
        catalog = Catalog()
        catalog.create_table(schema())
        with pytest.raises(CatalogError):
            catalog.create_table(schema())
        catalog.create_table(schema(), if_not_exists=True)

    def test_drop_missing_raises_unless_if_exists(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("T")
        assert catalog.drop_table("T", if_exists=True) is False

    def test_views_shadowing_rules(self):
        catalog = Catalog()
        catalog.create_table(schema())
        view = TableSchema("V", [ColumnSchema("A", t.INTEGER)], is_view=True,
                           view_sql="SELECT A FROM T")
        catalog.create_view(view)
        assert catalog.has_view("V")
        with pytest.raises(CatalogError):
            catalog.create_view(view)
        catalog.create_view(view, replace=True)
        # A view may not collide with a table name.
        bad = TableSchema("T", [], is_view=True, view_sql="SELECT 1")
        with pytest.raises(CatalogError):
            catalog.create_view(bad)
