"""Unit tests for the Teradata binder: name resolution, type derivation, and
the binding-stage rewrites of Table 2."""

import pytest

from repro.errors import BindError
from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import walk_all_scalars, walk_rel


@pytest.fixture
def catalog():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("SALES", [
        ColumnSchema("PRODUCT_NAME", t.varchar(40)),
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("AMOUNT", t.decimal(12, 2)),
        ColumnSchema("SALES_DATE", t.DATE),
    ]))
    shadow.add_table(TableSchema("STORES", [
        ColumnSchema("STORE_ID", t.INTEGER),
        ColumnSchema("CITY", t.varchar(30)),
    ]))
    shadow.add_table(TableSchema("CI", [
        ColumnSchema("NAME", t.SQLType(t.TypeKind.VARCHAR, length=20,
                                       case_specific=False)),
        ColumnSchema("V", t.INTEGER),
    ]))
    return SessionCatalog(shadow)


@pytest.fixture
def tracked():
    return FeatureTracker()


def bind(sql, catalog, tracker=None):
    if tracker is not None:
        tracker.begin_query()
    parser = TeradataParser(tracker)
    binder = Binder(catalog, tracker)
    return binder.bind(parser.parse_statement(sql))


def plan_of(statement):
    assert isinstance(statement, r.Query)
    return statement.plan


def node_types(plan):
    return [type(node).__name__ for node in walk_rel(plan)]


class TestResolution:
    def test_column_types_resolved_from_catalog(self, catalog):
        statement = bind("SEL AMOUNT FROM SALES", catalog)
        project = plan_of(statement)
        assert isinstance(project, r.Project)
        assert project.exprs[0].type.kind is t.TypeKind.DECIMAL

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SEL NOPE FROM SALES", catalog)

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(Exception):
            bind("SEL A FROM MISSING", catalog)

    def test_star_expansion(self, catalog):
        statement = bind("SEL * FROM SALES", catalog)
        assert [c.name for c in plan_of(statement).output_columns()] == [
            "PRODUCT_NAME", "STORE", "AMOUNT", "SALES_DATE"]

    def test_qualified_star(self, catalog):
        statement = bind(
            "SEL S.* FROM SALES S, STORES WHERE S.STORE = STORES.STORE_ID",
            catalog)
        assert len(plan_of(statement).output_columns()) == 4

    def test_ambiguous_unqualified_rejected(self, catalog):
        shadow = catalog.shared
        shadow.add_table(TableSchema("SALES2", [
            ColumnSchema("STORE", t.INTEGER)]))
        with pytest.raises(BindError):
            bind("SEL STORE FROM SALES, SALES2", catalog)


class TestNamedExpressions:
    """Table 2: chained projections are replaced by their definitions."""

    def test_alias_reuse_in_select_list(self, catalog, tracked):
        statement = bind(
            "SEL AMOUNT AS BASE, BASE + 100 AS OFFSET_AMT FROM SALES",
            catalog, tracked)
        project = plan_of(statement)
        offset_expr = project.exprs[1]
        assert isinstance(offset_expr, s.Arith)
        assert isinstance(offset_expr.left, s.ColumnRef)
        assert offset_expr.left.name == "AMOUNT"
        assert "named_expression" in tracked._current.features  # type: ignore

    def test_alias_reuse_in_where(self, catalog, tracked):
        statement = bind(
            "SEL AMOUNT AS BASE FROM SALES WHERE BASE > 10", catalog, tracked)
        refs = [n for n in walk_all_scalars(plan_of(statement))
                if isinstance(n, s.ColumnRef)]
        assert all(ref.name != "BASE" for ref in refs)


class TestImplicitJoins:
    """Table 2: tables referenced outside FROM join in implicitly."""

    def test_qualified_reference_adds_table(self, catalog, tracked):
        statement = bind(
            "SEL PRODUCT_NAME, STORES.CITY FROM SALES "
            "WHERE STORE = STORES.STORE_ID", catalog, tracked)
        gets = [n for n in walk_rel(plan_of(statement)) if isinstance(n, r.Get)]
        assert {g.table.name for g in gets} == {"SALES", "STORES"}
        assert "implicit_join" in tracked._current.features  # type: ignore

    def test_no_false_positive_for_aliases(self, catalog, tracked):
        bind("SEL S.AMOUNT FROM SALES S", catalog, tracked)
        assert "implicit_join" not in tracked._current.features  # type: ignore


class TestOrdinals:
    def test_group_by_ordinal_replaced(self, catalog, tracked):
        statement = bind(
            "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY 1", catalog, tracked)
        agg = next(n for n in walk_rel(plan_of(statement))
                   if isinstance(n, r.Aggregate))
        assert isinstance(agg.group_by[0], s.ColumnRef)
        assert agg.group_by[0].name == "STORE"
        assert "ordinal_group_by" in tracked._current.features  # type: ignore

    def test_order_by_ordinal_replaced(self, catalog, tracked):
        statement = bind("SEL STORE, AMOUNT FROM SALES ORDER BY 2", catalog,
                         tracked)
        sort = next(n for n in walk_rel(plan_of(statement))
                    if isinstance(n, r.Sort))
        assert sort.keys[0].expr.name == "AMOUNT"

    def test_out_of_range_ordinal_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SEL STORE FROM SALES GROUP BY 5", catalog)


class TestQualify:
    def test_qualify_builds_window_plus_filter(self, catalog, tracked):
        statement = bind(
            "SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= 10",
            catalog, tracked)
        names = node_types(plan_of(statement))
        # Project over Filter over Window over Get.
        assert names == ["Project", "Filter", "Window", "Get"]
        assert "qualify" in tracked._current.features  # type: ignore

    def test_legacy_rank_normalized_to_window_func(self, catalog):
        statement = bind(
            "SEL PRODUCT_NAME FROM SALES QUALIFY RANK(AMOUNT DESC) <= 10",
            catalog)
        window = next(n for n in walk_rel(plan_of(statement))
                      if isinstance(n, r.Window))
        func = window.funcs[0]
        assert func.name == "RANK"
        assert func.order_by[0].ascending is False

    def test_qualify_with_aggregate_below(self, catalog):
        statement = bind(
            "SEL STORE, SUM(AMOUNT) AS TOTAL FROM SALES GROUP BY STORE "
            "QUALIFY RANK(TOTAL DESC) <= 3", catalog)
        names = node_types(plan_of(statement))
        assert names == ["Project", "Filter", "Window", "Aggregate", "Get"]


class TestTypeDerivation:
    def test_date_arithmetic_type(self, catalog):
        statement = bind(
            "SEL SALES_DATE + 30 FROM SALES", catalog)
        assert plan_of(statement).exprs[0].type.kind is t.TypeKind.DATE

    def test_interval_folds_to_dateadd(self, catalog):
        statement = bind(
            "SEL SALES_DATE + INTERVAL '3' MONTH FROM SALES", catalog)
        expr = plan_of(statement).exprs[0]
        assert isinstance(expr, s.FuncCall)
        assert expr.name == "DATEADD"
        assert expr.args[0].value == "MONTH"

    def test_aggregate_types(self, catalog):
        statement = bind(
            "SEL COUNT(*), AVG(AMOUNT), SUM(AMOUNT) FROM SALES", catalog)
        types = [expr.type.kind for expr in plan_of(statement).exprs]
        assert types == [t.TypeKind.BIGINT, t.TypeKind.FLOAT, t.TypeKind.DECIMAL]


class TestCaseInsensitiveColumns:
    def test_not_casespecific_comparison_wrapped_in_upper(self, catalog, tracked):
        statement = bind("SEL V FROM CI WHERE NAME = 'x'", catalog, tracked)
        filt = next(n for n in walk_rel(plan_of(statement))
                    if isinstance(n, r.Filter))
        comp = filt.predicate
        assert isinstance(comp.left, s.FuncCall) and comp.left.name == "UPPER"
        assert isinstance(comp.right, s.FuncCall) and comp.right.name == "UPPER"
        assert "column_properties" in tracked._current.features  # type: ignore

    def test_casespecific_comparison_untouched(self, catalog):
        statement = bind("SEL STORE FROM SALES WHERE PRODUCT_NAME = 'x'",
                         catalog)
        filt = next(n for n in walk_rel(plan_of(statement))
                    if isinstance(n, r.Filter))
        assert isinstance(filt.predicate.left, s.ColumnRef)


class TestSubqueries:
    def test_correlated_subquery_binds_against_outer(self, catalog):
        statement = bind("""
            SEL PRODUCT_NAME FROM SALES S1 WHERE AMOUNT > (
                SEL AVG(AMOUNT) FROM SALES S2 WHERE S2.STORE = S1.STORE)
        """, catalog)
        assert isinstance(statement, r.Query)

    def test_vector_subquery_left_items_bound(self, catalog):
        statement = bind("""
            SEL * FROM SALES WHERE (AMOUNT, AMOUNT * 0.85) >
            ANY (SEL AMOUNT, AMOUNT FROM SALES)
        """, catalog)
        subq = next(n for n in walk_all_scalars(plan_of(statement))
                    if isinstance(n, s.SubqueryExpr))
        assert subq.left[0].type.kind is t.TypeKind.DECIMAL


class TestDDLBinding:
    def test_create_table_carries_properties(self, catalog):
        statement = bind("""
            CREATE SET VOLATILE TABLE VT (
                A INTEGER NOT NULL,
                B VARCHAR(10) NOT CASESPECIFIC DEFAULT 'x')
        """, catalog)
        assert isinstance(statement, r.CreateTable)
        assert statement.schema.set_semantics
        assert statement.schema.volatile
        column = statement.schema.column("B")
        assert column.case_specific is False
        assert column.default_sql.strip() == "'x'"

    def test_create_view_records_source_sql(self, catalog):
        statement = bind(
            "CREATE VIEW V AS SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 5",
            catalog)
        assert isinstance(statement, r.CreateView)
        assert "AMOUNT > 5" in statement.source_sql

    def test_update_binds_assignments(self, catalog):
        statement = bind("UPD SALES SET AMOUNT = AMOUNT * 2 WHERE STORE = 1",
                         catalog)
        assert isinstance(statement, r.Update)
        ((name, expr),) = statement.assignments
        assert name == "AMOUNT"
        assert isinstance(expr, s.Arith)
