"""Unit tests for capability profiles, the feature registry, the tracker,
and timing instrumentation."""

import time

import pytest

from repro.core.timing import RequestTiming, TimingLog
from repro.core.tracker import FeatureTracker
from repro.transform import capabilities as cap
from repro.workloads.features import (
    FEATURES, FEATURES_BY_CLASS, FEATURES_BY_NAME, FeatureClass, feature,
)


class TestFeatureRegistry:
    def test_twenty_seven_features_nine_per_class(self):
        assert len(FEATURES) == 27
        for cls in FeatureClass:
            assert len(FEATURES_BY_CLASS[cls]) == 9

    def test_names_unique(self):
        assert len(FEATURES_BY_NAME) == len(FEATURES)

    def test_capability_flags_exist_on_profile(self):
        for entry in FEATURES:
            if entry.capability is not None:
                assert hasattr(cap.TERADATA, entry.capability), entry.name

    def test_lookup(self):
        assert feature("qualify").feature_class is FeatureClass.TRANSFORMATION


class TestCapabilityProfiles:
    def test_teradata_supports_everything_tracked(self):
        for entry in FEATURES:
            if entry.capability is not None:
                assert cap.TERADATA.supports(entry.capability), entry.name

    def test_hyperion_lacks_teradata_specials(self):
        assert not cap.HYPERION.qualify_clause
        assert not cap.HYPERION.recursive_cte
        assert not cap.HYPERION.merge_statement
        assert not cap.HYPERION.vector_subquery

    def test_four_cloud_profiles(self):
        assert len(cap.cloud_profiles()) == 4

    def test_support_fraction_bounds(self):
        for name in cap.capability_fields():
            fraction = cap.support_fraction(name)
            assert 0.0 <= fraction <= 1.0

    def test_no_cloud_supports_implicit_joins_or_date_int_compare(self):
        assert cap.support_fraction("implicit_joins") == 0.0
        assert cap.support_fraction("date_int_comparison") == 0.0
        assert cap.support_fraction("macros") == 0.0

    def test_qualify_rare_but_present(self):
        assert cap.support_fraction("qualify_clause") == 0.25

    def test_profiles_registry(self):
        assert cap.PROFILES["hyperion"] is cap.HYPERION
        assert set(cap.PROFILES) >= {"teradata", "hyperion", "meadowshift",
                                     "skyquery", "azuresynth", "snowfield"}


class TestTracker:
    def test_per_query_lifecycle(self):
        tracker = FeatureTracker()
        tracker.begin_query()
        tracker.note("qualify", "binder")
        tracker.note("qualify", "binder")  # dedup within a query
        record = tracker.end_query()
        assert record.features == {"qualify"}
        assert tracker.query_count == 1
        assert tracker.feature_query_counts["qualify"] == 1

    def test_unknown_feature_name_raises(self):
        tracker = FeatureTracker()
        tracker.begin_query()
        with pytest.raises(KeyError):
            tracker.note("no_such_feature", "binder")

    def test_notes_outside_query_ignored(self):
        tracker = FeatureTracker()
        tracker.note("qualify", "binder")  # no begin_query
        assert tracker.query_count == 0

    def test_class_counting_once_per_query(self):
        tracker = FeatureTracker()
        tracker.begin_query()
        tracker.note("qualify", "binder")
        tracker.note("ordinal_group_by", "binder")  # same class
        tracker.note("sel_shortcut", "parser")      # different class
        tracker.end_query()
        fractions = tracker.affected_query_fraction_by_class()
        assert fractions[FeatureClass.TRANSFORMATION] == 1.0
        assert fractions[FeatureClass.TRANSLATION] == 1.0
        assert fractions[FeatureClass.EMULATION] == 0.0

    def test_presence_fraction(self):
        tracker = FeatureTracker()
        tracker.begin_query()
        tracker.note("qualify", "binder")
        tracker.end_query()
        presence = tracker.feature_presence_by_class()
        assert presence[FeatureClass.TRANSFORMATION] == pytest.approx(1 / 9)

    def test_first_stage_recorded(self):
        tracker = FeatureTracker()
        tracker.begin_query()
        tracker.note("qualify", "binder")
        tracker.note("qualify", "serializer")
        tracker.end_query()
        assert tracker.observed_stages["qualify"] == "binder"


class TestTiming:
    def test_measure_accumulates(self):
        timing = RequestTiming()
        with timing.measure("translation"):
            time.sleep(0.002)
        with timing.measure("execution"):
            time.sleep(0.002)
        assert timing.translation > 0
        assert timing.execution > 0
        assert timing.total == pytest.approx(
            timing.translation + timing.execution + timing.result_conversion)

    def test_unknown_stage_rejected(self):
        timing = RequestTiming()
        with pytest.raises(ValueError):
            with timing.measure("nonsense"):
                pass

    def test_overhead_fraction(self):
        timing = RequestTiming(translation=1.0, execution=8.0,
                               result_conversion=1.0)
        assert timing.overhead_fraction == pytest.approx(0.2)

    def test_log_breakdown_sums_to_one(self):
        log = TimingLog()
        log.record(RequestTiming(translation=1.0, execution=2.0,
                                 result_conversion=1.0))
        log.record(RequestTiming(translation=0.0, execution=4.0,
                                 result_conversion=0.0))
        split = log.breakdown()
        assert sum(split.values()) == pytest.approx(1.0)
        assert log.overhead_fraction == pytest.approx(2.0 / 8.0)

    def test_empty_log(self):
        log = TimingLog()
        assert log.overhead_fraction == 0.0
        assert log.breakdown()["execution"] == 0.0
