"""_ConnectionPool under bursty accept load, and server shutdown ordering.

The pool is the accept-side concurrency bound of the wire server (and of
every gateway worker): it must spawn on outstanding demand without ever
exceeding its cap, never deadlock when pending tasks outnumber idle workers
during a simultaneous-connect storm, and drain cleanly — queued tasks
cancelled, workers joined — before the listening socket closes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import HyperQ
from repro.protocol.server import ServerThread, _ConnectionPool


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestConnectionPoolBurst:
    def test_cap_holds_under_simultaneous_connect_storm(self):
        """A storm of submits far beyond the cap spawns exactly cap workers,
        and every task still runs once the long-lived ones release."""
        cap = 4
        pool = _ConnectionPool(cap, name_prefix="burst")
        release = threading.Event()
        started = []
        done = []
        lock = threading.Lock()

        def task(index: int) -> None:
            with lock:
                started.append(index)
            release.wait(timeout=10)
            with lock:
                done.append(index)

        submitters = [
            threading.Thread(target=lambda base=base: [
                pool.submit(task, base * 8 + offset) for offset in range(8)])
            for base in range(8)
        ]
        for thread in submitters:
            thread.start()
        for thread in submitters:
            thread.join()
        # All 64 tasks submitted from 8 threads at once: the pool must sit
        # at its cap with the rest queued, not deadlocked and not over-spawned.
        assert _wait_until(lambda: len(started) >= cap)
        assert len(pool._threads) <= cap
        assert len(done) == 0
        release.set()
        assert _wait_until(lambda: len(done) == 64)
        assert len(pool._threads) <= cap
        pool.close()

    def test_pending_over_idle_storm_never_strands_a_task(self):
        """Tasks queued while every worker is busy (pending > idle) are
        picked up as workers free — the spawn-on-demand accounting must not
        under-spawn and strand a queued task behind long-lived ones."""
        cap = 3
        pool = _ConnectionPool(cap, name_prefix="strand")
        holders = threading.Event()
        ran = []
        lock = threading.Lock()

        def long_lived() -> None:
            holders.wait(timeout=10)

        def short(index: int) -> None:
            with lock:
                ran.append(index)

        # Occupy cap-1 workers, then storm short tasks: the pool must spawn
        # its last worker for them even though idle workers "exist" on paper.
        for __ in range(cap - 1):
            pool.submit(long_lived)
        for index in range(16):
            pool.submit(short, index)
        assert _wait_until(lambda: len(ran) == 16), \
            f"only {len(ran)}/16 short tasks ran — stranded behind holders"
        holders.set()
        pool.close()

    def test_close_cancels_queued_tasks_and_joins_workers(self):
        pool = _ConnectionPool(2, name_prefix="drain")
        release = threading.Event()
        cancelled = []

        def blocker() -> None:
            release.wait(timeout=10)

        pool.submit(blocker)
        pool.submit(blocker)
        assert _wait_until(lambda: pool._idle == 0)
        for index in range(5):
            pool.submit(lambda: None, index)
        release.set()
        pool.close(on_cancel=lambda args: cancelled.append(args),
                   join_timeout=5.0)
        # Every queued-but-unstarted task was either run by a freed worker
        # or cancelled; none linger, and all workers have exited.
        assert all(not thread.is_alive() for thread in pool._threads)
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_close_is_bounded_with_a_stuck_worker(self):
        pool = _ConnectionPool(1, name_prefix="stuck")
        forever = threading.Event()
        pool.submit(forever.wait, 30)
        assert _wait_until(lambda: len(pool._threads) == 1)
        t0 = time.monotonic()
        pool.close(join_timeout=0.2)
        assert time.monotonic() - t0 < 2.0
        forever.set()


class TestServerShutdownOrdering:
    def test_repeated_start_stop_leaks_no_workers(self):
        """server_close drains and joins the pool before the listening
        socket closes: repeated start/stop cycles leave no hyperq-conn
        threads behind."""
        engine = HyperQ(tracing=False)

        def conn_threads() -> list[threading.Thread]:
            return [thread for thread in threading.enumerate()
                    if thread.name.startswith("hyperq-conn")]

        for __ in range(3):
            server = ServerThread(engine, max_connections=4)
            host, port = server.start()
            from repro.protocol.client import TdClient

            with TdClient(host, port) as client:
                assert client.execute("SELECT 1").rows == [(1,)]
            server.stop()
            assert _wait_until(lambda: not conn_threads()), \
                f"leaked connection workers: {conn_threads()}"
