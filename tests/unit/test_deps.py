"""Unit tests for the semantic dependency extractor (core/deps.py):
table closures through views, write targets, constant predicates, and the
read-only / deterministic shareability classification."""

import pytest

from repro.core import deps as deps_mod
from repro.core.deps import WILDCARD, StatementDeps, extract, view_closure
from repro.core.engine import HyperQ


@pytest.fixture()
def session():
    engine = HyperQ()
    s = engine.create_session()
    s.execute("CREATE MULTISET TABLE T "
              "(ID INTEGER, VAL DECIMAL(12,2), NAME VARCHAR(20), D DATE)")
    s.execute("CREATE MULTISET TABLE U (ID INTEGER, X INTEGER)")
    s.execute("CREATE VIEW V1 AS SELECT ID, VAL FROM T")
    s.execute("CREATE VIEW V2 AS SELECT ID FROM V1")
    return s


def bind(session, sql):
    return session.binder.bind(session.parser.parse_statement(sql))


def deps_of(session, sql) -> StatementDeps:
    return extract(bind(session, sql), session.catalog)


class TestReadDeps:
    def test_simple_select(self, session):
        d = deps_of(session, "SELECT ID FROM T WHERE ID = 1")
        assert d.tables == ("T",)
        assert d.read_only and d.deterministic and d.shareable
        assert not d.wildcard

    def test_join_collects_both_tables(self, session):
        d = deps_of(session, "SELECT T.ID FROM T JOIN U ON T.ID = U.ID")
        assert d.tables == ("T", "U")

    def test_subquery_tables_collected(self, session):
        d = deps_of(session, "SELECT ID FROM T WHERE ID IN "
                             "(SELECT ID FROM U WHERE X > 0)")
        assert d.tables == ("T", "U")

    def test_scalar_subquery_in_select_list(self, session):
        d = deps_of(session, "SELECT ID, (SELECT MAX(X) FROM U) FROM T")
        assert d.tables == ("T", "U")

    def test_view_expands_to_base_closure(self, session):
        d = deps_of(session, "SELECT ID FROM V1")
        # the view's own name stays in the set so REPLACE/DROP VIEW
        # invalidates entries bound through it
        assert d.tables == ("T", "V1")

    def test_nested_view_flattens_transitively(self, session):
        d = deps_of(session, "SELECT ID FROM V2")
        assert d.tables == ("T", "V1", "V2")

    def test_qualify_window_query_is_shareable(self, session):
        d = deps_of(session, "SELECT ID, VAL FROM T "
                             "QUALIFY RANK(VAL DESC) <= 3")
        assert d.tables == ("T",)
        assert d.shareable

    def test_constant_equality_predicates_recorded(self, session):
        d = deps_of(session, "SELECT VAL FROM T WHERE ID = 5 "
                             "AND NAME = 'abc'")
        assert ("ID", 5) in d.constants
        assert ("NAME", "abc") in d.constants

    def test_referenced_columns_recorded(self, session):
        d = deps_of(session, "SELECT VAL FROM T WHERE ID = 5")
        assert "ID" in d.columns and "VAL" in d.columns


class TestWriteDeps:
    def test_insert_target_is_written(self, session):
        d = deps_of(session, "INSERT INTO U SELECT ID, ID FROM T")
        assert d.write_tables == ("U",)
        assert "T" in d.tables
        assert not d.read_only and not d.shareable

    def test_update_target(self, session):
        d = deps_of(session, "UPDATE T SET VAL = 0 WHERE ID = 1")
        assert d.write_tables == ("T",)
        assert not d.read_only

    def test_delete_target(self, session):
        d = deps_of(session, "DELETE FROM U WHERE X = 9")
        assert d.write_tables == ("U",)
        assert not d.read_only

    def test_merge_target_and_source(self, session):
        d = deps_of(session, "MERGE INTO U USING T ON U.ID = T.ID "
                             "WHEN MATCHED THEN UPDATE SET X = 1 "
                             "WHEN NOT MATCHED THEN INSERT (ID, X) "
                             "VALUES (T.ID, 0)")
        assert d.write_tables == ("U",)
        assert "T" in d.tables
        assert not d.read_only

    def test_update_through_view_writes_base_closure(self, session):
        d = deps_of(session, "UPDATE V1 SET VAL = 0 WHERE ID = 1")
        # updatable view: the write closure reaches the base table
        assert set(d.write_tables) >= {"T", "V1"}

    def test_all_tables_unions_reads_and_writes(self, session):
        d = deps_of(session, "INSERT INTO U SELECT ID, ID FROM T")
        assert set(d.all_tables) == {"T", "U"}


class TestShareability:
    def test_current_date_is_not_deterministic(self, session):
        # Teradata's niladic DATE binds to CURRENT_DATE
        d = deps_of(session, "SELECT ID FROM T WHERE D < DATE")
        assert not d.deterministic
        assert not d.shareable

    def test_volatile_table_blocks_sharing(self, session):
        session.execute("CREATE VOLATILE TABLE VT (K INTEGER) "
                        "ON COMMIT PRESERVE ROWS")
        d = deps_of(session, "SELECT K FROM VT")
        assert d.uses_volatile
        assert not d.shareable

    def test_exec_macro_is_wildcard(self, session):
        session.execute("CREATE MACRO M AS (SELECT ID FROM T;)")
        d = deps_of(session, "EXEC M")
        assert d.wildcard
        assert not d.read_only
        assert not d.shareable
        assert WILDCARD in d.all_tables

    def test_ddl_is_not_read_only(self, session):
        d = deps_of(session, "CREATE MULTISET TABLE W (A INTEGER)")
        assert not d.read_only
        assert "W" in d.write_tables


class TestViewClosure:
    def test_closure_stored_at_create_view(self, session):
        assert session.catalog.view_deps("V1") == ("T",)
        assert set(session.catalog.view_deps("V2")) == {"T", "V1"}

    def test_closure_helper_on_bound_plan(self, session):
        bound = bind(session, "SELECT T.ID FROM T JOIN V1 ON T.ID = V1.ID")
        closure = view_closure(bound.plan, session.catalog)
        assert set(closure) == {"T", "V1"}

    def test_replace_view_reaches_outer_dependents(self, session):
        # V2 depends on V1; a statement through V2 must list V1 so that
        # REPLACE VIEW V1 (which bumps only V1) invalidates it.
        d = deps_of(session, "SELECT ID FROM V2")
        assert "V1" in d.tables


class TestWithoutCatalog:
    def test_no_catalog_treats_names_as_base_tables(self, session):
        bound = bind(session, "SELECT ID FROM V1")
        d = extract(bound, None)
        assert d.tables == ("V1",)
