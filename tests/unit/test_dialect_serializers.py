"""Direct unit tests per serializer subclass: type names, identifier
quoting, and function spellings — pinned without running the full pipeline,
so a dialect regression points at the exact serializer method.

Includes the regression test for the BigQuery identifier bug: reserved
words used as column names (legal when quoted in the source dialect) must
come out backtick-quoted, not bare.
"""

from __future__ import annotations

import pytest

from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.serializer import serializer_for
from repro.serializer.base import RESERVED_WORDS, Serializer, plain_ident
from repro.serializer.dialects import (
    BigQuerySerializer, PostgresSerializer, SnowflakeSerializer,
    TSQLSerializer,
)
from repro.sqlkit import Lexer, LexerConfig, TokenKind
from repro.transform.capabilities import (
    AZURESYNTH, HYPERION, MEADOWSHIFT, SKYQUERY, SNOWFIELD,
)
from repro.transform.engine import Transformer
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema


@pytest.fixture
def catalog():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("T", [
        ColumnSchema("A", t.INTEGER),
        ColumnSchema("B", t.varchar(20)),
    ]))
    shadow.add_table(TableSchema("RSVD", [
        ColumnSchema("SELECT", t.INTEGER),
        ColumnSchema("FROM", t.varchar(5)),
    ]))
    return SessionCatalog(shadow)


def to_sql(sql, catalog, profile):
    statement = Binder(catalog).bind(TeradataParser().parse_statement(sql))
    Transformer(profile).transform(statement)
    return serializer_for(profile).serialize(statement)


# -- registry -------------------------------------------------------------------------


@pytest.mark.parametrize("profile,cls", [
    (HYPERION, Serializer),
    (MEADOWSHIFT, PostgresSerializer),
    (SKYQUERY, BigQuerySerializer),
    (AZURESYNTH, TSQLSerializer),
    (SNOWFIELD, SnowflakeSerializer),
])
def test_registry_maps_profile_to_subclass(profile, cls):
    assert type(serializer_for(profile)) is cls


# -- identifier quoting ---------------------------------------------------------------


def test_plain_ident_rejects_reserved_and_odd_names():
    assert plain_ident("SALES")
    assert plain_ident("_tmp_1")
    assert not plain_ident("SELECT")
    assert not plain_ident("order")          # case-insensitive
    assert not plain_ident("has space")
    assert not plain_ident("1starts_digit")
    assert "GROUP" in RESERVED_WORDS


def test_base_serializer_quotes_reserved_words():
    serializer = Serializer(HYPERION)
    assert serializer.ident("SALES") == "SALES"
    assert serializer.ident("SELECT") == '"SELECT"'
    assert serializer.ident('we"ird') == '"we""ird"'


def test_bigquery_ident_backticks_reserved_words():
    serializer = BigQuerySerializer(SKYQUERY)
    assert serializer.ident("SALES") == "SALES"
    assert serializer.ident("SELECT") == "`SELECT`"
    assert serializer.ident("has space") == "`has space`"
    assert serializer.ident("tick`y") == "`tick``y`"


def test_tsql_ident_brackets_reserved_words():
    serializer = TSQLSerializer(AZURESYNTH)
    assert serializer.ident("SALES") == "SALES"
    assert serializer.ident("FROM") == "[FROM]"
    assert serializer.ident("clo]se") == "[clo]]se]"


def test_reserved_column_roundtrip_per_dialect(catalog):
    source = 'SEL "SELECT", "FROM" FROM RSVD'
    assert '"SELECT"' in to_sql(source, catalog, HYPERION)
    assert "`SELECT`" in to_sql(source, catalog, SKYQUERY)
    assert "[SELECT]" in to_sql(source, catalog, AZURESYNTH)
    assert '"SELECT"' in to_sql(source, catalog, SNOWFIELD)


# -- type names -----------------------------------------------------------------------


def test_postgres_type_names():
    serializer = PostgresSerializer(MEADOWSHIFT)
    assert serializer.type_sql(t.FLOAT) == "DOUBLE PRECISION"
    assert serializer.type_sql(t.TIMESTAMP) == "TIMESTAMP WITHOUT TIME ZONE"
    assert serializer.type_sql(t.decimal(12, 2)) == "DECIMAL(12,2)"


def test_bigquery_type_names():
    serializer = BigQuerySerializer(SKYQUERY)
    assert serializer.type_sql(t.INTEGER) == "INT64"
    assert serializer.type_sql(t.BIGINT) == "INT64"
    assert serializer.type_sql(t.FLOAT) == "FLOAT64"
    assert serializer.type_sql(t.BOOLEAN) == "BOOL"
    assert serializer.type_sql(t.varchar(20)) == "STRING"
    assert serializer.type_sql(t.char(5)) == "STRING"
    assert serializer.type_sql(t.decimal(12, 2)) == "NUMERIC"


def test_tsql_type_names():
    serializer = TSQLSerializer(AZURESYNTH)
    assert serializer.type_sql(t.FLOAT) == "FLOAT"
    assert serializer.type_sql(t.TIMESTAMP) == "DATETIME2"


def test_snowflake_type_names():
    serializer = SnowflakeSerializer(SNOWFIELD)
    assert serializer.type_sql(t.decimal(12, 2)) == "NUMBER(12,2)"
    assert serializer.type_sql(t.decimal()) == "NUMBER(18,2)"


def test_create_table_type_spelling_end_to_end(catalog):
    ddl = "CREATE TABLE NEWT (X INTEGER, Y VARCHAR(9), Z DECIMAL(7,2))"
    assert "INT64" in to_sql(ddl, catalog, SKYQUERY)
    assert "NUMBER(7,2)" in to_sql(ddl, catalog, SNOWFIELD)


# -- function spellings ---------------------------------------------------------------


def test_tsql_spells_length_as_len(catalog):
    sql = to_sql("SEL CHARS(B) FROM T", catalog, AZURESYNTH)
    assert "LEN(T.B)" in sql
    assert "LENGTH(" not in sql


def test_other_dialects_keep_length(catalog):
    for profile in (HYPERION, MEADOWSHIFT, SKYQUERY, SNOWFIELD):
        assert "LENGTH(T.B)" in to_sql("SEL CHARS(B) FROM T", catalog,
                                       profile)


# -- lexer support for dialect quoting ------------------------------------------------


def test_lexer_backquote_idents():
    config = LexerConfig(keywords=frozenset({"SELECT"}),
                         backquote_idents=True)
    token = Lexer(config).tokenize("`GROUP by``x`")[0]
    assert token.kind is TokenKind.QUOTED_IDENT
    assert token.value == "GROUP by`x"


def test_lexer_bracket_idents():
    config = LexerConfig(keywords=frozenset({"SELECT"}),
                         bracket_idents=True)
    token = Lexer(config).tokenize("[ORDER]] it]")[0]
    assert token.kind is TokenKind.QUOTED_IDENT
    assert token.value == "ORDER] it"


def test_lexer_rejects_dialect_quoting_when_disabled():
    config = LexerConfig(keywords=frozenset({"SELECT"}))
    tokens = Lexer(config).tokenize("[x]")
    assert all(token.kind is not TokenKind.QUOTED_IDENT for token in tokens)
