"""Unit tests for the shared SQL lexer."""

import pytest

from repro.errors import LexError
from repro.frontend.teradata.lexer import make_lexer
from repro.sqlkit import Lexer, LexerConfig, TokenKind

BASIC = LexerConfig(keywords=frozenset({"SELECT", "FROM", "WHERE"}))


def lex(text, config=BASIC):
    return Lexer(config).tokenize(text)


def kinds(tokens):
    return [token.kind for token in tokens]


class TestBasicTokens:
    def test_keywords_are_upper_cased(self):
        tokens = lex("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:3])

    def test_identifiers_upper_cased_but_raw_text_kept(self):
        (token, __) = lex("MyTable")
        assert token.kind is TokenKind.IDENT
        assert token.value == "MYTABLE"
        assert token.text == "MyTable"

    def test_eof_is_always_last(self):
        tokens = lex("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integer_and_float_literals(self):
        tokens = lex("42 3.14 1e3 2.5E-2 .5")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 3.14, 1000.0, 0.025, 0.5]
        assert tokens[0].kind is TokenKind.NUMBER

    def test_string_literal_with_escaped_quote(self):
        (token, __) = lex("'it''s'")
        assert token.kind is TokenKind.STRING
        assert token.value == "it's"

    def test_quoted_identifier_preserves_case(self):
        (token, __) = lex('"MixedCase"')
        assert token.kind is TokenKind.QUOTED_IDENT
        assert token.value == "MixedCase"

    def test_parameter_markers(self):
        tokens = lex("? :name")
        assert tokens[0].kind is TokenKind.PARAM
        assert tokens[1].kind is TokenKind.PARAM
        assert tokens[1].value == "NAME"


class TestOperators:
    def test_multi_char_operators_win_over_prefixes(self):
        tokens = lex("a <= b <> c || d")
        ops = [t.value for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops == ["<=", "<>", "||"]

    def test_inequality_spellings_normalize(self):
        tokens = lex("a != b")
        ops = [t for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops[0].value == "<>"
        assert ops[0].text == "!="

    def test_teradata_caret_inequality(self):
        tokens = make_lexer().tokenize("a ^= b")
        ops = [t for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops[0].value == "<>"

    def test_teradata_exponent_operator(self):
        tokens = make_lexer().tokenize("2 ** 3")
        ops = [t for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops[0].value == "**"


class TestCommentsAndWhitespace:
    def test_line_comments_skipped(self):
        tokens = lex("a -- comment here\n b")
        assert [t.value for t in tokens[:2]] == ["A", "B"]

    def test_block_comments_skipped(self):
        tokens = lex("a /* multi\nline */ b")
        assert [t.value for t in tokens[:2]] == ["A", "B"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            lex("a /* never closed")

    def test_line_and_column_tracking(self):
        tokens = lex("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string_raises_with_position(self):
        with pytest.raises(LexError) as info:
            lex("  'oops")
        assert info.value.column == 3

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(LexError):
            lex('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            lex("a @ b")
