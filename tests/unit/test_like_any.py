"""Unit tests for the Teradata LIKE ANY / LIKE ALL extension."""

import pytest

from repro.core.engine import HyperQ


@pytest.fixture
def session():
    engine = HyperQ()
    session = engine.create_session()
    session.execute("CREATE TABLE WORDS (W VARCHAR(20))")
    session.execute("INSERT INTO WORDS VALUES ('apple'), ('apricot'), "
                    "('banana'), ('plum'), (NULL)")
    return session


class TestLikeAny:
    def test_any_is_disjunction(self, session):
        result = session.execute(
            "SEL W FROM WORDS WHERE W LIKE ANY ('ap%', 'pl%') ORDER BY 1")
        assert [row[0] for row in result.rows] == ["apple", "apricot", "plum"]

    def test_some_is_synonym_for_any(self, session):
        result = session.execute(
            "SEL COUNT(*) FROM WORDS WHERE W LIKE SOME ('b%')")
        assert result.rows == [(1,)]

    def test_all_is_conjunction(self, session):
        result = session.execute(
            "SEL W FROM WORDS WHERE W LIKE ALL ('a%', '%t')")
        assert result.rows == [("apricot",)]

    def test_not_like_any(self, session):
        result = session.execute(
            "SEL W FROM WORDS WHERE W NOT LIKE ANY ('ap%', 'pl%') ORDER BY 1")
        assert [row[0] for row in result.rows] == ["banana"]

    def test_null_rows_never_match(self, session):
        result = session.execute(
            "SEL COUNT(*) FROM WORDS WHERE W LIKE ANY ('%')")
        assert result.rows == [(4,)]

    def test_single_pattern_degenerates_to_plain_like(self, session):
        translation = session.translate(
            "SEL W FROM WORDS WHERE W LIKE ANY ('a%')")
        (sql,) = translation.statements
        assert "LIKE 'a%'" in sql
        assert " OR " not in sql

    def test_translated_sql_is_plain_ansi(self, session):
        translation = session.translate(
            "SEL W FROM WORDS WHERE W LIKE ANY ('a%', 'b%')")
        (sql,) = translation.statements
        assert "ANY" not in sql
        assert sql.count("LIKE") == 2
        assert " OR " in sql
