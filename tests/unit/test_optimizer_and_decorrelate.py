"""Unit tests for backend optimizations: predicate pushdown, OR
factorization, and subquery decorrelation — all checked for semantic
equivalence against unoptimized evaluation."""

import pytest

from repro.backend import Database
from repro.backend.optimizer import _factor_or, optimize
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.visitor import walk_rel


@pytest.fixture
def db(backend_session):
    session = backend_session
    session.execute("CREATE TABLE A (ID INTEGER, X INTEGER)")
    session.execute("CREATE TABLE B (ID INTEGER, Y INTEGER)")
    session.execute("CREATE TABLE C (ID INTEGER, Z INTEGER)")
    for i in range(30):
        session.execute(f"INSERT INTO A VALUES ({i}, {i % 5})")
        session.execute(f"INSERT INTO B VALUES ({i % 10}, {i % 3})")
        session.execute(f"INSERT INTO C VALUES ({i % 7}, {i})")
    return session


class TestPushdown:
    def test_comma_join_becomes_inner_join(self, db):
        # Runs correctly and fast only with pushdown; verify result against
        # the explicit-join spelling.
        implicit = db.execute(
            "SELECT COUNT(*) FROM A, B, C "
            "WHERE A.ID = B.ID AND B.ID = C.ID AND A.X > 1")
        explicit = db.execute(
            "SELECT COUNT(*) FROM A JOIN B ON A.ID = B.ID "
            "JOIN C ON B.ID = C.ID WHERE A.X > 1")
        assert implicit.rows == explicit.rows

    def test_single_side_predicates_pushed_to_input(self):
        schema_a = _schema("A", ["ID", "X"])
        schema_b = _schema("B", ["ID", "Y"])
        join = r.Join(r.JoinKind.CROSS, r.Get(schema_a), r.Get(schema_b))
        predicate = s.conjoin([
            s.Comp(s.CompOp.EQ, _ref("ID", "A"), _ref("ID", "B")),
            s.Comp(s.CompOp.GT, _ref("X", "A"), s.const_int(1)),
        ])
        plan = optimize(r.Filter(join, predicate))
        assert isinstance(plan, r.Join)
        assert plan.kind is r.JoinKind.INNER
        assert plan.condition is not None
        assert isinstance(plan.left, r.Filter)  # A.X > 1 sank to the A side

    def test_outer_join_inputs_untouched(self):
        schema_a = _schema("A", ["ID", "X"])
        schema_b = _schema("B", ["ID", "Y"])
        join = r.Join(r.JoinKind.LEFT, r.Get(schema_a), r.Get(schema_b),
                      s.Comp(s.CompOp.EQ, _ref("ID", "A"), _ref("ID", "B")))
        predicate = s.Comp(s.CompOp.GT, _ref("Y", "B"), s.const_int(0))
        plan = optimize(r.Filter(join, predicate))
        # The filter must stay above the outer join.
        assert isinstance(plan, r.Filter)
        assert isinstance(plan.child, r.Join)
        assert plan.child.kind is r.JoinKind.LEFT

    def test_subquery_conjuncts_stay_on_top(self):
        schema_a = _schema("A", ["ID", "X"])
        schema_b = _schema("B", ["ID", "Y"])
        join = r.Join(r.JoinKind.CROSS, r.Get(schema_a), r.Get(schema_b))
        exists = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS,
                                plan=r.Get(_schema("C", ["ID", "Z"])))
        predicate = s.conjoin([
            s.Comp(s.CompOp.EQ, _ref("ID", "A"), _ref("ID", "B")),
            exists,
        ])
        plan = optimize(r.Filter(join, predicate))
        assert isinstance(plan, r.Filter)
        assert isinstance(plan.predicate, s.SubqueryExpr)

    def test_left_join_null_results_preserved(self, db):
        # WHERE on a left-join output involving the nullable side must keep
        # post-join semantics.
        result = db.execute(
            "SELECT COUNT(*) FROM A LEFT JOIN B ON A.ID = B.ID AND B.Y = 99 "
            "WHERE B.ID IS NULL")
        assert result.rows == [(30,)]


class TestOrFactorization:
    def test_common_conjunct_hoisted(self):
        shared = s.Comp(s.CompOp.EQ, _ref("ID", "A"), _ref("ID", "B"))
        branch1 = s.conjoin([shared, s.Comp(s.CompOp.GT, _ref("X", "A"),
                                            s.const_int(1))])
        branch2 = s.conjoin([s.Comp(s.CompOp.LT, _ref("Y", "B"),
                                    s.const_int(5)),
                             _clone_comp(shared)])
        factored = _factor_or(s.BoolOp(s.BoolOpKind.OR, [branch1, branch2]))
        assert isinstance(factored, s.BoolOp)
        assert factored.op is s.BoolOpKind.AND
        assert any(isinstance(arg, s.Comp) for arg in factored.args)

    def test_no_common_conjunct_unchanged(self):
        expr = s.BoolOp(s.BoolOpKind.OR, [
            s.Comp(s.CompOp.GT, _ref("X", "A"), s.const_int(1)),
            s.Comp(s.CompOp.LT, _ref("Y", "B"), s.const_int(5)),
        ])
        assert _factor_or(expr) is expr

    def test_q19_shape_executes_equivalently(self, db):
        disjunctive = db.execute(
            "SELECT COUNT(*) FROM A, B WHERE "
            "(A.ID = B.ID AND A.X = 1 AND B.Y = 0) OR "
            "(A.ID = B.ID AND A.X = 2 AND B.Y = 1)")
        manual = db.execute(
            "SELECT COUNT(*) FROM A JOIN B ON A.ID = B.ID "
            "WHERE (A.X = 1 AND B.Y = 0) OR (A.X = 2 AND B.Y = 1)")
        assert disjunctive.rows == manual.rows


class TestDecorrelation:
    """The rewrites must be invisible except for speed; every case compares
    against a hand-computed or alternative-spelling result."""

    def test_exists_semi_join(self, db):
        fast = db.execute(
            "SELECT COUNT(*) FROM A WHERE EXISTS "
            "(SELECT 1 FROM B WHERE B.ID = A.ID AND B.Y = 0)")
        b_rows = db.execute("SELECT ID FROM B WHERE Y = 0").rows
        a_rows = db.execute("SELECT ID FROM A").rows
        keys = {row[0] for row in b_rows}
        expected = sum(1 for (a_id,) in a_rows if a_id in keys)
        assert fast.rows == [(expected,)]

    def test_not_exists_anti_join(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM A WHERE NOT EXISTS "
            "(SELECT 1 FROM B WHERE B.ID = A.ID)")
        b_keys = {row[0] for row in db.execute("SELECT ID FROM B").rows}
        a_rows = db.execute("SELECT ID FROM A").rows
        expected = sum(1 for (a_id,) in a_rows if a_id not in b_keys)
        assert result.rows == [(expected,)]

    def test_scalar_aggregate_grouping(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM A WHERE A.X < "
            "(SELECT AVG(C.Z) FROM C WHERE C.ID = A.ID)")
        c_rows = db.execute("SELECT ID, Z FROM C").rows
        groups: dict = {}
        for cid, z in c_rows:
            groups.setdefault(cid, []).append(z)
        a_rows = db.execute("SELECT ID, X FROM A").rows
        expected = sum(
            1 for aid, x in a_rows
            if aid in groups and x < sum(groups[aid]) / len(groups[aid]))
        assert result.rows == [(expected,)]

    def test_residual_correlation(self, db):
        # EXISTS with an extra non-equality correlated conjunct (Q21 shape).
        result = db.execute(
            "SELECT COUNT(*) FROM A WHERE EXISTS "
            "(SELECT 1 FROM B WHERE B.ID = A.ID AND B.Y <> A.X)")
        a_rows = db.execute("SELECT ID, X FROM A").rows
        b_rows = db.execute("SELECT ID, Y FROM B").rows
        expected = sum(
            1 for aid, x in a_rows
            if any(bid == aid and y != x for bid, y in b_rows))
        assert result.rows == [(expected,)]

    def test_uncorrelated_subquery_cached_but_correct(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM A WHERE A.X < (SELECT AVG(Y) FROM B)")
        avg_y = db.execute("SELECT AVG(Y) FROM B").rows[0][0]
        a_rows = db.execute("SELECT X FROM A").rows
        expected = sum(1 for (x,) in a_rows if x < avg_y)
        assert result.rows == [(expected,)]

    def test_small_input_skips_decorrelation_same_result(self, backend_session):
        s2 = backend_session
        s2.execute("CREATE TABLE TINY (ID INTEGER)")
        s2.execute("CREATE TABLE OTHER (ID INTEGER)")
        s2.execute("INSERT INTO TINY VALUES (1), (2)")
        s2.execute("INSERT INTO OTHER VALUES (2), (3)")
        result = s2.execute(
            "SELECT ID FROM TINY WHERE EXISTS "
            "(SELECT 1 FROM OTHER WHERE OTHER.ID = TINY.ID)")
        assert result.rows == [(2,)]


def _schema(name, columns):
    from repro.xtra.schema import ColumnSchema, TableSchema

    return TableSchema(name, [ColumnSchema(c, t.INTEGER) for c in columns])


def _ref(name, table):
    return s.ColumnRef(name, table, t.INTEGER)


def _clone_comp(comp):
    return s.Comp(comp.op, _ref(comp.left.name, comp.left.table),
                  _ref(comp.right.name, comp.right.table))
