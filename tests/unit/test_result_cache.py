"""Unit tests for the fingerprint-keyed result cache (core/result_cache.py):
vector-checked lookups, byte-bounded LRU, per-table invalidation, and the
seeded result_cache fault site."""

import pytest

from repro.core.faults import (
    RESULT_CACHE_EVICT,
    RESULT_CACHE_STALE,
    FaultSchedule,
    FaultSpec,
)
from repro.core.result_cache import ResultCache, ResultEntry


def make_entry(deps=("T",), vector=(("T", 1, 1),), payload=b"x" * 64,
               packets=None):
    return ResultEntry(
        columns=("A",), types=("INTEGER",),
        packets=packets if packets is not None else (payload,),
        notes=(), deps=deps, vector=vector)


def vector_fn(versions):
    """Build a current_vector callable from a {table: (schema, data)} map."""
    def current(names):
        return tuple((name, *versions[name]) for name in sorted(names))
    return current


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = ResultCache(max_bytes=1 << 16)
        versions = {"T": (1, 1)}
        key = ("teradata", "hyperion", "SELECT ?", ("1",), None)
        assert cache.lookup(key, vector_fn(versions)) is None
        entry = make_entry(vector=(("T", 1, 1),))
        assert cache.insert(key, entry)
        hit = cache.lookup(key, vector_fn(versions))
        assert hit is entry
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.inserts == 1
        assert stats.hit_rate == 0.5

    def test_stale_vector_drops_entry(self):
        cache = ResultCache(max_bytes=1 << 16)
        versions = {"T": (1, 1)}
        key = ("k",)
        cache.insert(key, make_entry(vector=(("T", 1, 1),)))
        versions["T"] = (1, 2)  # DML bumped the data epoch
        assert cache.lookup(key, vector_fn(versions)) is None
        # dropped for good: epochs are monotonic, it can't come back
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.stale_drops == 1 and stats.misses == 1

    def test_replace_same_key_reclaims_bytes(self):
        cache = ResultCache(max_bytes=1 << 16)
        key = ("k",)
        cache.insert(key, make_entry(payload=b"a" * 100))
        first_bytes = cache.used_bytes
        cache.insert(key, make_entry(payload=b"b" * 100))
        assert cache.used_bytes == first_bytes
        assert len(cache) == 1


class TestBounds:
    def test_lru_eviction_under_byte_cap(self):
        # entries are ~ 64 + 16 + 16+1 + 256 = 353 bytes; cap fits two
        cache = ResultCache(max_bytes=800, max_entry_bytes=800)
        versions = vector_fn({"T": (1, 1)})
        for index in range(3):
            cache.insert((index,), make_entry())
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # the oldest key went first
        assert cache.lookup((0,), versions) is None
        assert cache.lookup((2,), versions) is not None

    def test_lookup_refreshes_lru_position(self):
        cache = ResultCache(max_bytes=800, max_entry_bytes=800)
        versions = vector_fn({"T": (1, 1)})
        cache.insert((0,), make_entry())
        cache.insert((1,), make_entry())
        cache.lookup((0,), versions)          # (0,) is now most recent
        cache.insert((2,), make_entry())      # evicts (1,), not (0,)
        assert cache.lookup((0,), versions) is not None
        assert cache.lookup((1,), versions) is None

    def test_oversized_entry_rejected(self):
        cache = ResultCache(max_bytes=1 << 16, max_entry_bytes=128)
        assert not cache.insert(("k",), make_entry(payload=b"x" * 4096))
        assert len(cache) == 0
        assert cache.stats().rejects == 1

    def test_default_per_entry_cap_is_an_eighth(self):
        cache = ResultCache(max_bytes=8000)
        assert cache.max_entry_bytes == 1000

    def test_zero_budget_is_an_error(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestInvalidation:
    def test_only_dependent_entries_dropped(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("a",), make_entry(deps=("T",)))
        cache.insert(("b",), make_entry(deps=("U",), vector=(("U", 1, 1),)))
        cache.insert(("c",), make_entry(deps=("T", "U")))
        assert cache.invalidate_tables(("T",)) == 2
        assert len(cache) == 1
        versions = vector_fn({"U": (1, 1)})
        assert cache.lookup(("b",), versions) is not None
        assert cache.stats().invalidations == 2

    def test_names_are_case_insensitive(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("a",), make_entry(deps=("T",)))
        assert cache.invalidate_tables(("t",)) == 1

    def test_wildcard_clears_everything(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("a",), make_entry(deps=("T",)))
        cache.insert(("b",), make_entry(deps=("U",)))
        assert cache.invalidate_tables(("*",)) == 2
        assert len(cache) == 0

    def test_wildcard_entries_dropped_by_any_table(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("a",), make_entry(deps=("*",)))
        assert cache.invalidate_tables(("ANYTHING",)) == 1

    def test_unrelated_table_drops_nothing(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("a",), make_entry(deps=("T",)))
        assert cache.invalidate_tables(("OTHER",)) == 0
        assert len(cache) == 1


class TestFaultSite:
    def test_forced_eviction_after_insert(self):
        faults = FaultSchedule(seed=1, specs=[
            FaultSpec(RESULT_CACHE_EVICT, "result_cache", every=1)])
        cache = ResultCache(max_bytes=1 << 16, faults=faults)
        versions = vector_fn({"T": (1, 1)})
        assert cache.insert(("k",), make_entry())   # insert ok, then evicted
        assert len(cache) == 0
        assert cache.stats().injected_evictions == 1
        assert cache.lookup(("k",), versions) is None

    def test_forced_stale_drop_on_lookup(self):
        faults = FaultSchedule(seed=1, specs=[
            FaultSpec(RESULT_CACHE_STALE, "result_cache", every=3)])
        cache = ResultCache(max_bytes=1 << 16, faults=faults)
        versions = vector_fn({"T": (1, 1)})
        cache.insert(("k",), make_entry())                  # draw #1
        assert cache.lookup(("k",), versions) is not None   # draw #2
        # draw #3 fires: the entry is treated as stale despite a current
        # vector, proving correctness never *depends* on the cache
        assert cache.lookup(("k",), versions) is None
        stats = cache.stats()
        assert stats.stale_drops == 1
        assert len(cache) == 0

    def test_churn_schedule_is_deterministic(self):
        from repro.core.faults import named_schedule

        for _ in range(2):
            schedule = named_schedule("result-cache-churn", seed=7)
            cache = ResultCache(max_bytes=1 << 16, faults=schedule)
            versions = vector_fn({"T": (1, 1)})
            for index in range(20):
                key = (index % 4,)
                if cache.lookup(key, versions) is None:
                    cache.insert(key, make_entry())
            stats = cache.stats()
            assert stats.injected_evictions > 0
            assert stats.stale_drops > 0


class TestStats:
    def test_as_dict_roundtrip(self):
        cache = ResultCache(max_bytes=1 << 16)
        versions = vector_fn({"T": (1, 1)})
        cache.insert(("k",), make_entry())
        cache.lookup(("k",), versions)
        cache.lookup(("missing",), versions)
        snapshot = cache.stats().as_dict()
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        assert snapshot["inserts"] == 1
        assert snapshot["hit_rate"] == 0.5

    def test_note_reject_counts(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.note_reject()
        assert cache.stats().rejects == 1

    def test_clear_empties_cache(self):
        cache = ResultCache(max_bytes=1 << 16)
        cache.insert(("k",), make_entry())
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0
