"""Unit tests for the result pipeline: store spill, converter, parallelism."""

import datetime

import pytest

from repro import tdf
from repro.errors import ConversionError
from repro.results.converter import ResultConverter
from repro.results.store import ResultStore
from repro.xtra import types as t


class TestResultStore:
    def test_in_memory_until_cap(self):
        store = ResultStore(max_memory_bytes=1024)
        store.append(b"x" * 100)
        assert not store.spilled
        assert store.memory_bytes == 100

    def test_spills_past_cap_and_replays_in_order(self, tmp_path):
        store = ResultStore(max_memory_bytes=150, spill_dir=str(tmp_path))
        chunks = [bytes([i]) * 100 for i in range(5)]
        for chunk in chunks:
            store.append(chunk)
        assert store.spilled
        assert list(store) == chunks
        assert store.chunk_count == 5
        store.close()

    def test_iteration_is_repeatable(self, tmp_path):
        store = ResultStore(max_memory_bytes=10, spill_dir=str(tmp_path))
        store.append(b"abc")
        store.append(b"defg")
        assert list(store) == [b"abc", b"defg"]
        assert list(store) == [b"abc", b"defg"]
        store.close()

    def test_close_removes_spill_file(self, tmp_path):
        store = ResultStore(max_memory_bytes=1, spill_dir=str(tmp_path))
        store.append(b"spilled")
        assert any(tmp_path.iterdir())
        store.close()
        assert not any(tmp_path.iterdir())

    def test_context_manager(self, tmp_path):
        with ResultStore(max_memory_bytes=1, spill_dir=str(tmp_path)) as store:
            store.append(b"zz")
        assert not any(tmp_path.iterdir())


class TestResultConverter:
    def batches(self, rows, batch_rows=2):
        return list(tdf.batches_of(["N", "S", "D"], rows, batch_rows))

    def rows(self, count):
        return [(i, f"s{i}", datetime.date(2014, 1, 1 + i % 28))
                for i in range(count)]

    def test_roundtrip_through_source_format(self):
        rows = self.rows(5)
        converter = ResultConverter()
        result = converter.convert(self.batches(rows),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.rowcount == 5
        assert result.rows() == rows
        result.close()

    def test_parallel_conversion_matches_serial(self):
        rows = self.rows(50)
        serial = ResultConverter(parallelism=1).convert(
            self.batches(rows, 5), [t.INTEGER, t.varchar(10), t.DATE])
        parallel = ResultConverter(parallelism=4).convert(
            self.batches(rows, 5), [t.INTEGER, t.varchar(10), t.DATE])
        assert serial.rows() == parallel.rows()
        serial.close()
        parallel.close()

    def test_streaming_mode_keeps_chunks(self):
        converter = ResultConverter(buffer_all=False)
        result = converter.convert(self.batches(self.rows(6), 2),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.store is None
        assert len(result.chunks) == 3

    def test_spill_path_exercised(self, tmp_path):
        converter = ResultConverter(max_memory_bytes=64, spill_dir=str(tmp_path))
        rows = self.rows(100)
        result = converter.convert(self.batches(rows, 10),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.store is not None and result.store.spilled
        assert result.rows() == rows
        result.close()

    def test_empty_input(self):
        result = ResultConverter().convert([])
        assert result.rowcount == 0
        assert result.rows() == []


class TestStreamingConverter:
    """convert_stream: lazy pull, bounded buffering, spill mid-stream."""

    TYPES = [t.INTEGER, t.varchar(10), t.DATE]

    def batches(self, rows, batch_rows=2):
        return tdf.batches_of(["N", "S", "D"], rows, batch_rows)

    def rows(self, count):
        return [(i, f"s{i}", datetime.date(2014, 1, 1 + i % 28))
                for i in range(count)]

    def test_pulls_lazily_one_batch_at_a_time(self):
        """The converter must not read ahead of the consumer (serial path)."""
        pulled = []

        def tracked():
            for index, packet in enumerate(self.batches(self.rows(10), 2)):
                pulled.append(index)
                yield packet

        result = ResultConverter().convert_stream(tracked(), self.TYPES)
        assert pulled == [0]  # only the meta-sample packet so far
        chunks = result.iter_chunks()
        next(chunks)
        assert pulled == [0]
        next(chunks)
        assert pulled == [0, 1]

    def test_streaming_consumption_never_builds_a_store(self):
        result = ResultConverter().convert_stream(
            self.batches(self.rows(20), 4), self.TYPES)
        consumed = list(result.iter_chunks())
        assert len(consumed) == 5
        assert result.rowcount == 20  # accumulated, not re-buffered
        assert not result.streaming

    def test_stream_is_single_use(self):
        result = ResultConverter().convert_stream(
            self.batches(self.rows(4), 2), self.TYPES)
        list(result.iter_chunks())
        with pytest.raises(ConversionError):
            next(result.iter_chunks())

    def test_spill_triggered_mid_stream(self, tmp_path):
        """Draining through the store under a tiny budget spills partway and
        replays everything in order."""
        converter = ResultConverter(max_memory_bytes=64,
                                    spill_dir=str(tmp_path))
        rows = self.rows(100)
        result = converter.convert_stream(self.batches(rows, 10), self.TYPES)
        store = result.buffer()
        assert store.spilled
        assert store.memory_bytes <= 64
        assert store.high_water <= 64
        assert result.rows() == rows  # replay preserves order
        assert result.rows() == rows  # and is repeatable once buffered
        result.close()
        assert not any(tmp_path.iterdir())  # temp spill file cleaned up

    def test_rowcount_access_buffers_with_bounded_memory(self, tmp_path):
        converter = ResultConverter(max_memory_bytes=64,
                                    spill_dir=str(tmp_path))
        result = converter.convert_stream(
            self.batches(self.rows(100), 10), self.TYPES)
        assert result.rowcount == 100
        assert result.store.high_water <= 64
        result.close()

    def test_parallel_stream_matches_serial(self):
        rows = self.rows(50)
        serial = ResultConverter(parallelism=1).convert_stream(
            self.batches(rows, 5), self.TYPES)
        with ResultConverter(parallelism=4) as pooled:
            parallel = pooled.convert_stream(self.batches(rows, 5), self.TYPES)
            assert serial.rows() == parallel.rows()

    def test_empty_result_still_yields_header_chunk(self):
        result = ResultConverter().convert_stream(
            self.batches([], 2), self.TYPES)
        assert result.rowcount == 0
        assert result.rows() == []

    def test_first_chunk_callback_fires_once(self):
        seen = []
        result = ResultConverter().convert_stream(
            self.batches(self.rows(6), 2), self.TYPES,
            on_first_chunk=lambda: seen.append(True))
        assert seen == []  # nothing converted until the consumer pulls
        list(result.iter_chunks())
        assert seen == [True]

    def test_close_stops_pulling(self):
        pulled = []

        def tracked():
            for index, packet in enumerate(self.batches(self.rows(10), 2)):
                pulled.append(index)
                yield packet

        result = ResultConverter().convert_stream(tracked(), self.TYPES)
        result.close()
        assert result.rowcount == 0
        assert pulled == [0]
