"""Unit tests for the result pipeline: store spill, converter, parallelism."""

import datetime

from repro import tdf
from repro.results.converter import ResultConverter
from repro.results.store import ResultStore
from repro.xtra import types as t


class TestResultStore:
    def test_in_memory_until_cap(self):
        store = ResultStore(max_memory_bytes=1024)
        store.append(b"x" * 100)
        assert not store.spilled
        assert store.memory_bytes == 100

    def test_spills_past_cap_and_replays_in_order(self, tmp_path):
        store = ResultStore(max_memory_bytes=150, spill_dir=str(tmp_path))
        chunks = [bytes([i]) * 100 for i in range(5)]
        for chunk in chunks:
            store.append(chunk)
        assert store.spilled
        assert list(store) == chunks
        assert store.chunk_count == 5
        store.close()

    def test_iteration_is_repeatable(self, tmp_path):
        store = ResultStore(max_memory_bytes=10, spill_dir=str(tmp_path))
        store.append(b"abc")
        store.append(b"defg")
        assert list(store) == [b"abc", b"defg"]
        assert list(store) == [b"abc", b"defg"]
        store.close()

    def test_close_removes_spill_file(self, tmp_path):
        store = ResultStore(max_memory_bytes=1, spill_dir=str(tmp_path))
        store.append(b"spilled")
        assert any(tmp_path.iterdir())
        store.close()
        assert not any(tmp_path.iterdir())

    def test_context_manager(self, tmp_path):
        with ResultStore(max_memory_bytes=1, spill_dir=str(tmp_path)) as store:
            store.append(b"zz")
        assert not any(tmp_path.iterdir())


class TestResultConverter:
    def batches(self, rows, batch_rows=2):
        return list(tdf.batches_of(["N", "S", "D"], rows, batch_rows))

    def rows(self, count):
        return [(i, f"s{i}", datetime.date(2014, 1, 1 + i % 28))
                for i in range(count)]

    def test_roundtrip_through_source_format(self):
        rows = self.rows(5)
        converter = ResultConverter()
        result = converter.convert(self.batches(rows),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.rowcount == 5
        assert result.rows() == rows
        result.close()

    def test_parallel_conversion_matches_serial(self):
        rows = self.rows(50)
        serial = ResultConverter(parallelism=1).convert(
            self.batches(rows, 5), [t.INTEGER, t.varchar(10), t.DATE])
        parallel = ResultConverter(parallelism=4).convert(
            self.batches(rows, 5), [t.INTEGER, t.varchar(10), t.DATE])
        assert serial.rows() == parallel.rows()
        serial.close()
        parallel.close()

    def test_streaming_mode_keeps_chunks(self):
        converter = ResultConverter(buffer_all=False)
        result = converter.convert(self.batches(self.rows(6), 2),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.store is None
        assert len(result.chunks) == 3

    def test_spill_path_exercised(self, tmp_path):
        converter = ResultConverter(max_memory_bytes=64, spill_dir=str(tmp_path))
        rows = self.rows(100)
        result = converter.convert(self.batches(rows, 10),
                                   [t.INTEGER, t.varchar(10), t.DATE])
        assert result.store is not None and result.store.spilled
        assert result.rows() == rows
        result.close()

    def test_empty_input(self):
        result = ResultConverter().convert([])
        assert result.rowcount == 0
        assert result.rows() == []
