"""Unit tests for scale-out routing: statement classification, read
balancing, session pinning, and write fan-out consistency (Appendix B.3)."""

import pytest

from repro.errors import HyperQError, ReplicaUnavailableError
from repro.core.scaleout import ScaledHyperQ, round_robin


def make_fleet(replicas=3, **kwargs):
    fleet = ScaledHyperQ(replicas=replicas, **kwargs)
    session = fleet.create_session()
    session.execute("CREATE TABLE T (A INTEGER)")
    session.execute("INSERT INTO T VALUES (1), (2), (3)")
    return fleet, session


class TestConstruction:
    def test_zero_replicas_rejected(self):
        with pytest.raises(HyperQError, match="at least one replica"):
            ScaledHyperQ(replicas=0)

    def test_zero_failure_threshold_rejected(self):
        with pytest.raises(HyperQError, match="failure_threshold"):
            ScaledHyperQ(failure_threshold=0)

    def test_all_replicas_start_healthy(self):
        fleet = ScaledHyperQ(replicas=4)
        assert fleet.up_replicas() == [0, 1, 2, 3]
        assert all(fleet.pending_writes(i) == [] for i in range(4))


class TestReadRouting:
    def test_round_robin_policy_rotates(self):
        assert [round_robin(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_reads_balance_across_replicas(self):
        fleet, session = make_fleet(replicas=3)
        for __ in range(9):
            assert session.execute("SEL COUNT(*) FROM T").rows == [(3,)]
        assert fleet.reads_per_replica == [3, 3, 3]

    def test_pluggable_policy_directs_every_read(self):
        fleet, session = make_fleet(replicas=3,
                                    policy=lambda index, count: 1)
        for __ in range(4):
            session.execute("SEL A FROM T WHERE A = 1")
        assert fleet.reads_per_replica == [0, 4, 0]

    def test_reads_skip_quarantined_replicas(self):
        fleet, session = make_fleet(replicas=3)
        fleet.kill_replica(1)
        for __ in range(6):
            session.execute("SEL COUNT(*) FROM T")
        assert fleet.reads_per_replica[1] == 0
        assert fleet.reads_per_replica[0] + fleet.reads_per_replica[2] == 6

    def test_no_healthy_replicas_is_a_clean_error(self):
        fleet, session = make_fleet(replicas=2)
        fleet.kill_replica(0)
        fleet.kill_replica(1)
        with pytest.raises(ReplicaUnavailableError, match="no healthy"):
            session.execute("SEL COUNT(*) FROM T")


class TestWriteFanOut:
    def test_writes_reach_every_replica(self):
        fleet, session = make_fleet(replicas=3)
        session.execute("UPD T SET A = A + 10 WHERE A = 1")
        for engine in fleet.engines:
            rows = engine.execute("SEL COUNT(*) FROM T WHERE A = 11").rows
            assert rows == [(1,)]

    def test_ddl_fans_out_too(self):
        fleet, session = make_fleet(replicas=2)
        session.execute("CREATE TABLE U (B INTEGER)")
        for engine in fleet.engines:
            assert engine.execute("SEL COUNT(*) FROM U").rows == [(0,)]

    def test_write_rowcounts_must_agree(self):
        fleet, session = make_fleet(replicas=2)
        # Skew one replica behind the fleet's back, then fan out a write
        # whose effect now differs per replica.
        fleet.engines[1].execute("DELETE FROM T WHERE A = 3")
        with pytest.raises(HyperQError, match="divergence"):
            session.execute("UPD T SET A = A + 1")

    def test_write_result_reports_shared_rowcount(self):
        fleet, session = make_fleet(replicas=3)
        result = session.execute("DELETE FROM T WHERE A > 1")
        assert result.rowcount == 2


class TestSessionPinning:
    def test_volatile_create_pins_the_session(self):
        fleet, session = make_fleet(replicas=3)
        assert session._pinned is None
        session.execute("CREATE VOLATILE TABLE V (X INTEGER)")
        session.execute("INS INTO V VALUES (7)")
        assert session._pinned is not None
        assert session.execute("SEL X FROM V").rows == [(7,)]

    def test_pinned_reads_stick_to_the_owner(self):
        fleet, session = make_fleet(replicas=3)
        session.execute("CREATE VOLATILE TABLE V (X INTEGER)")
        pinned = session._pinned
        before = list(fleet.reads_per_replica)
        for __ in range(5):
            session.execute("SEL COUNT(*) FROM T")
        after = fleet.reads_per_replica
        # Only the pinned replica's counter may not move — pinned reads go
        # direct — but no *other* replica may have served these reads.
        assert [after[i] - before[i]
                for i in range(3) if i != pinned] == [0, 0]

    def test_volatile_dml_stays_on_the_owner(self):
        fleet, session = make_fleet(replicas=3)
        session.execute("CREATE VOLATILE TABLE V (X INTEGER)")
        session.execute("INS INTO V VALUES (1)")
        session.execute("UPD V SET X = 2")
        session.execute("DEL FROM V")
        pinned = session._pinned
        for index, engine in enumerate(fleet.engines):
            if index == pinned:
                continue
            with pytest.raises(HyperQError):
                engine.execute("SEL COUNT(*) FROM V")

    def test_unpinned_sessions_keep_rotating(self):
        fleet, pinned_session = make_fleet(replicas=2)
        pinned_session.execute("CREATE VOLATILE TABLE V (X INTEGER)")
        free = fleet.create_session()
        for __ in range(4):
            free.execute("SEL COUNT(*) FROM T")
        assert all(count > 0 for count in fleet.reads_per_replica)

    def test_independent_sessions_have_independent_pins(self):
        fleet, __ = make_fleet(replicas=2,
                               policy=lambda index, count: index % count)
        first = fleet.create_session()
        second = fleet.create_session()
        first.execute("CREATE VOLATILE TABLE MINE (X INTEGER)")
        second.execute("CREATE VOLATILE TABLE MINE (X INTEGER)")
        first.execute("INS INTO MINE VALUES (1)")
        second.execute("INS INTO MINE VALUES (2)")
        assert first.execute("SEL X FROM MINE").rows == [(1,)]
        assert second.execute("SEL X FROM MINE").rows == [(2,)]
