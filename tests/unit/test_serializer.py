"""Unit tests for the serializers: ANSI base and per-target dialects."""

import datetime

import pytest

from repro.errors import SerializeError
from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.serializer import serializer_for
from repro.serializer.base import Serializer
from repro.transform.capabilities import (
    AZURESYNTH, HYPERION, MEADOWSHIFT, SKYQUERY, SNOWFIELD,
)
from repro.transform.engine import Transformer
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema


@pytest.fixture
def catalog():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("T", [
        ColumnSchema("A", t.INTEGER),
        ColumnSchema("B", t.varchar(20)),
        ColumnSchema("D", t.DATE),
    ]))
    return SessionCatalog(shadow)


def to_sql(sql, catalog, profile=HYPERION, tracker=None):
    statement = Binder(catalog, tracker).bind(
        TeradataParser(tracker).parse_statement(sql))
    Transformer(profile, tracker).transform(statement)
    return serializer_for(profile, tracker).serialize(statement)


class TestExpressions:
    def test_literals(self):
        serializer = Serializer(HYPERION)
        assert serializer.literal(None, t.UNKNOWN) == "NULL"
        assert serializer.literal(True, t.BOOLEAN) == "TRUE"
        assert serializer.literal("o'brien", t.varchar()) == "'o''brien'"
        assert serializer.literal(datetime.date(2014, 1, 1), t.DATE) \
            == "DATE '2014-01-01'"

    def test_simple_select(self, catalog):
        sql = to_sql("SEL A FROM T WHERE A > 1", catalog)
        assert sql == "SELECT T.A AS A FROM T WHERE T.A > 1"

    def test_function_name_translation(self, catalog, tracker):
        tracker.begin_query()
        sql = to_sql("SEL ZEROIFNULL(A), CHARS(B), INDEX(B, 'x') FROM T",
                     catalog, HYPERION, tracker)
        assert "COALESCE(T.A, 0)" in sql
        assert "LENGTH(T.B)" in sql
        assert "POSITION('x' IN T.B)" in sql
        features = tracker._current.features  # type: ignore
        assert {"zeroifnull", "chars_function", "index_function"} <= features

    def test_nullifzero(self, catalog):
        sql = to_sql("SEL NULLIFZERO(A) FROM T", catalog)
        assert "NULLIF(T.A, 0)" in sql

    def test_case_between_like(self, catalog):
        sql = to_sql(
            "SEL CASE WHEN A BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END "
            "FROM T WHERE B LIKE 'x%'", catalog)
        assert "CASE WHEN T.A BETWEEN 1 AND 5" in sql
        assert "T.B LIKE 'x%'" in sql

    def test_exponent_becomes_power(self, catalog):
        sql = to_sql("SEL A ** 2 FROM T", catalog)
        assert "POWER(T.A, 2)" in sql


class TestQueryShapes:
    def test_group_by_inlines_group_exprs(self, catalog):
        sql = to_sql("SEL A, COUNT(*) FROM T GROUP BY A", catalog)
        assert "GROUP BY T.A" in sql
        assert "COUNT(*)" in sql

    def test_having(self, catalog):
        sql = to_sql("SEL A, COUNT(*) FROM T GROUP BY A HAVING COUNT(*) > 2",
                     catalog)
        assert "HAVING COUNT(*) > 2" in sql

    def test_qualify_renders_two_blocks(self, catalog):
        sql = to_sql("SEL A FROM T QUALIFY RANK(A DESC) <= 3", catalog)
        assert sql.count("SELECT") == 2
        assert "RANK() OVER (ORDER BY" in sql
        assert "WHERE" in sql.split(") AS ")[-1]  # outer filter on _W0

    def test_window_without_qualify_inlines(self, catalog):
        sql = to_sql("SEL A, RANK() OVER (ORDER BY A) FROM T", catalog)
        assert sql.count("SELECT") == 1

    def test_order_by_alias_used(self, catalog):
        sql = to_sql("SEL A AS X FROM T ORDER BY X", catalog)
        assert "ORDER BY X ASC" in sql

    def test_hidden_sort_key_inlined(self, catalog):
        sql = to_sql("SEL A FROM T ORDER BY B", catalog)
        assert "SELECT T.A AS A FROM T ORDER BY T.B ASC" in sql
        assert "_S0" not in sql

    def test_top_renders_limit_on_limit_targets(self, catalog):
        sql = to_sql("SEL TOP 5 A FROM T ORDER BY A", catalog)
        assert sql.endswith("LIMIT 5")

    def test_top_renders_top_on_tsql_targets(self, catalog):
        sql = to_sql("SEL TOP 5 A FROM T ORDER BY A", catalog, AZURESYNTH)
        assert sql.startswith("SELECT TOP 5 ")

    def test_union_all(self, catalog):
        sql = to_sql("SEL A FROM T UNION ALL SEL A FROM T", catalog)
        assert "UNION ALL" in sql

    def test_subquery_in_from(self, catalog):
        sql = to_sql("SEL X.A FROM (SEL A FROM T) AS X", catalog)
        assert "FROM (SELECT T.A AS A FROM T) AS X" in sql

    def test_correlated_exists(self, catalog):
        sql = to_sql(
            "SEL A FROM T WHERE EXISTS (SEL 1 FROM T T2 WHERE T2.A = T.A)",
            catalog)
        assert "EXISTS (SELECT" in sql
        assert "T2.A = T.A" in sql


class TestNullOrdering:
    def test_explicit_nulls_emitted(self, catalog):
        sql = to_sql("SEL A FROM T ORDER BY A", catalog)
        assert "ORDER BY A ASC NULLS FIRST" in sql

    def test_azuresynth_needs_no_pinning_for_implicit_keys(self, catalog):
        # T-SQL's implicit NULL placement already matches Teradata's.
        sql = to_sql("SEL A FROM T ORDER BY A", catalog, AZURESYNTH)
        assert "NULLS" not in sql
        assert "CASE WHEN" not in sql

    def test_case_emulation_for_explicit_placement_without_syntax(self, catalog):
        # An explicit NULLS LAST on a target without the syntax is emulated
        # with a CASE prefix key.
        sql = to_sql("SEL A FROM T ORDER BY A NULLS LAST", catalog, AZURESYNTH)
        assert "NULLS LAST" not in sql
        assert "CASE WHEN" in sql


class TestStatements:
    def test_insert_values(self, catalog):
        sql = to_sql("INS T (1, 'x', DATE '2014-01-01')", catalog)
        assert sql == ("INSERT INTO T VALUES (1, 'x', DATE '2014-01-01')")

    def test_update(self, catalog):
        sql = to_sql("UPD T SET A = A + 1 WHERE B = 'x'", catalog)
        assert sql.startswith("UPDATE T SET A = (T.A + 1) WHERE")

    def test_delete(self, catalog):
        assert to_sql("DEL FROM T WHERE A = 1", catalog) == \
            "DELETE FROM T WHERE T.A = 1"

    def test_create_table_strips_teradata_props(self, catalog):
        sql = to_sql("CREATE SET TABLE S1 (X INTEGER NOT NULL, "
                     "Y VARCHAR(5) NOT CASESPECIFIC) PRIMARY INDEX (X)",
                     catalog)
        assert "SET TABLE" not in sql
        assert "CASESPECIFIC" not in sql
        assert "PRIMARY INDEX" not in sql
        assert "X INTEGER NOT NULL" in sql

    def test_volatile_becomes_temporary(self, catalog):
        sql = to_sql("CREATE VOLATILE TABLE V1 (X INTEGER)", catalog)
        assert sql.startswith("CREATE TEMPORARY TABLE V1")

    def test_nonconstant_default_stripped_from_target_ddl(self, catalog):
        sql = to_sql("CREATE TABLE S2 (X DATE DEFAULT CURRENT_DATE)", catalog)
        assert "DEFAULT" not in sql

    def test_create_view(self, catalog):
        sql = to_sql("CREATE VIEW V2 AS SEL A FROM T", catalog)
        assert sql.startswith("CREATE VIEW V2")

    def test_emulated_statement_has_no_serialization(self, catalog):
        statement = Binder(catalog).bind(
            TeradataParser().parse_statement("HELP SESSION"))
        with pytest.raises(SerializeError):
            Serializer(HYPERION).serialize(statement)


class TestDialects:
    def test_bigquery_type_names(self):
        serializer = serializer_for(SKYQUERY)
        assert serializer.type_sql(t.BIGINT) == "INT64"
        assert serializer.type_sql(t.varchar(10)) == "STRING"
        assert serializer.type_sql(t.decimal(10, 2)) == "NUMERIC"

    def test_tsql_len_function(self, catalog):
        sql = to_sql("SEL CHARS(B) FROM T", catalog, AZURESYNTH)
        assert "LEN(" in sql

    def test_snowflake_number_type(self):
        serializer = serializer_for(SNOWFIELD)
        assert serializer.type_sql(t.decimal(12, 2)) == "NUMBER(12,2)"

    def test_postgres_double_precision(self):
        serializer = serializer_for(MEADOWSHIFT)
        assert serializer.type_sql(t.FLOAT) == "DOUBLE PRECISION"

    def test_identifier_quoting_per_dialect(self):
        assert serializer_for(SKYQUERY).ident("weird name") == "`weird name`"
        assert serializer_for(AZURESYNTH).ident("weird name") == "[weird name]"
        assert Serializer(HYPERION).ident("weird name") == '"weird name"'
        assert Serializer(HYPERION).ident("PLAIN") == "PLAIN"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SerializeError):
            serializer_for("no_such_target")
