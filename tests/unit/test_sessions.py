"""Unit battery for the interactive BI session generator
(`repro.workloads.sessions`): the byte-for-byte determinism contract,
timeline structure (open bursts, refresh fan-outs, monotonic ordering),
config validation, SQL dialect shapes, and the replay driver.
"""

from __future__ import annotations

import pytest

from repro.errors import SessionConfigError
from repro.workloads.sessions import (GESTURES, WORKSHEETS, SessionConfig,
                                      SessionEvent, generate, render, replay,
                                      signature)

#: The default config's fingerprint, pinned. If a deliberate generator
#: change moves it, re-pin — but know that every historical benchmark and
#: experiment keyed to the default timeline is invalidated with it.
PINNED_DEFAULT_SIGNATURE = \
    "b5e3f1d41861a2e9d6c151102e793763720f2c5b0f8c798d9157719e9cda8bca"


class TestDeterminism:
    def test_default_signature_is_pinned(self):
        assert signature(generate(SessionConfig())) \
            == PINNED_DEFAULT_SIGNATURE

    def test_same_seed_renders_byte_identical(self):
        config = SessionConfig(seed=99, tenants=("a", "b", "c"),
                               steps_per_session=12)
        assert render(generate(config)) == render(generate(config))

    def test_different_seed_differs(self):
        base = SessionConfig()
        assert signature(generate(base)) \
            != signature(generate(SessionConfig(seed=base.seed + 1)))

    def test_sessions_are_independent_streams(self):
        # Adding a session to one tenant must not disturb the streams of
        # existing (tenant, session) pairs — each derives its own RNG.
        small = generate(SessionConfig(sessions_per_tenant=1))
        large = generate(SessionConfig(sessions_per_tenant=2))
        small_keys = {(e.tenant, e.session, e.step, e.tile): e.sql
                      for e in small}
        large_keys = {(e.tenant, e.session, e.step, e.tile): e.sql
                      for e in large}
        for key, sql in small_keys.items():
            assert large_keys[key] == sql


class TestTimelineStructure:
    def test_events_sorted_and_non_negative(self):
        events = generate(SessionConfig())
        assert all(e.at >= 0.0 for e in events)
        keys = [(e.at, e.tenant, e.session, e.step, e.tile) for e in events]
        assert keys == sorted(keys)

    def test_open_burst_issues_every_tile_at_once(self):
        config = SessionConfig(tiles_per_session=4)
        events = generate(config)
        for tenant in config.tenants:
            for session in range(config.sessions_per_tenant):
                opens = [e for e in events if e.tenant == tenant
                         and e.session == session and e.step == 0]
                assert [e.tile for e in opens] == [0, 1, 2, 3]
                assert len({e.at for e in opens}) == 1
                assert all(e.gesture == "open" for e in opens)

    def test_refresh_fans_out_all_tiles_same_instant(self):
        config = SessionConfig(refresh_probability=1.0, steps_per_session=3)
        events = generate(config)
        refreshes = [e for e in events if e.gesture == "refresh"]
        assert refreshes
        for event in refreshes:
            burst = [e for e in refreshes if (e.tenant, e.session, e.step)
                     == (event.tenant, event.session, event.step)]
            assert len(burst) == config.tiles_per_session
            assert len({e.at for e in burst}) == 1

    def test_think_time_floor_holds(self):
        config = SessionConfig(think_min=0.5, think_mean=0.6)
        events = generate(config)
        for tenant in config.tenants:
            for session in range(config.sessions_per_tenant):
                times = sorted({e.at for e in events if e.tenant == tenant
                                and e.session == session})
                gaps = [b - a for a, b in zip(times, times[1:])]
                assert all(gap >= 0.5 - 1e-9 for gap in gaps)

    def test_gestures_come_from_the_catalog(self):
        events = generate(SessionConfig(steps_per_session=40))
        assert {e.gesture for e in events} <= set(GESTURES) | {"open"}


class TestSql:
    def test_sql_uses_only_proven_shapes(self):
        events = generate(SessionConfig(steps_per_session=30))
        tables = {spec["table"] for spec in WORKSHEETS}
        for event in events:
            assert "GROUP BY ROLLUP (" in event.sql \
                or "QUALIFY ROW_NUMBER() OVER (" in event.sql
            assert any(f"FROM {table}" in event.sql for table in tables)

    def test_sql_executes_through_the_pipeline(self):
        from repro import HyperQ
        from repro.workloads.tpch.schema import SCHEMA_DDL

        engine = HyperQ()
        session = engine.create_session()
        for ddl in SCHEMA_DDL.values():
            session.execute(ddl)
        events = generate(SessionConfig(steps_per_session=20))
        for sql in sorted({e.sql for e in events}):
            result = session.execute(sql)
            assert result.kind == "rows"


class TestConfigValidation:
    def test_empty_tenants_rejected(self):
        with pytest.raises(SessionConfigError, match="tenant"):
            SessionConfig(tenants=())

    def test_tenant_names_normalized(self):
        config = SessionConfig(tenants=("  ACME ", "Zenith"))
        assert config.tenants == ("acme", "zenith")

    def test_bad_counts_rejected(self):
        with pytest.raises(SessionConfigError, match="steps_per_session"):
            SessionConfig(steps_per_session=0)
        with pytest.raises(SessionConfigError, match="tiles_per_session"):
            SessionConfig(tiles_per_session=-1)

    def test_bad_probability_rejected(self):
        with pytest.raises(SessionConfigError, match="refresh_probability"):
            SessionConfig(refresh_probability=1.5)

    def test_from_dict_rejects_unknown_keys_by_name(self):
        with pytest.raises(SessionConfigError, match="think_meen"):
            SessionConfig.from_dict({"think_meen": 2.0})

    def test_from_dict_round_trips(self):
        config = SessionConfig.from_dict(
            {"seed": 7, "tenants": ["x"], "steps_per_session": 3})
        assert config.seed == 7
        assert config.tenants == ("x",)


class TestReplay:
    def test_replay_full_speed_issues_everything(self):
        events = generate(SessionConfig())
        issued = []
        count = replay(events, issued.append)
        assert count == len(events)
        assert issued == events

    def test_replay_timescale_waits_out_the_timeline(self):
        events = [SessionEvent(0.0, "a", 0, 0, 0, "open", "SEL 1"),
                  SessionEvent(10.0, "a", 0, 1, 0, "drill", "SEL 2")]
        now = [0.0]
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            now[0] += seconds

        replay(events, lambda e: None, timescale=0.5,
               clock=lambda: now[0], sleep=sleep)
        assert sleeps == [5.0]

    def test_replay_stop_is_cooperative(self):
        events = generate(SessionConfig())
        issued = []

        def execute(event):
            issued.append(event)

        count = replay(events, execute, stop=lambda: len(issued) >= 5)
        assert count == 5

    def test_replay_rejects_negative_timescale(self):
        with pytest.raises(SessionConfigError, match="timescale"):
            replay([], lambda e: None, timescale=-1.0)
