"""Unit tests for the smaller supporting modules: ODBC server, protocol
framing, macro expansion, bench reporting, error hierarchy."""

import pytest

from repro import errors
from repro.backend import Database
from repro.bench.reporting import format_table, percent
from repro.core.engine import HyperQ
from repro.core.emulation import macros
from repro.odbc.api import OdbcServer
from repro.odbc.drivers import InProcessDriver
from repro.protocol import messages
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t


class TestOdbcServer:
    @pytest.fixture
    def server(self):
        database = Database()
        return OdbcServer(InProcessDriver(database), batch_rows=3)

    def test_lazy_connection(self, server):
        assert server._connection is None
        server.execute("CREATE TABLE T (A INTEGER)")
        assert server._connection is not None

    def test_tdf_batches_respect_batch_size(self, server):
        server.execute("CREATE TABLE T (A INTEGER)")
        server.execute("INSERT INTO T VALUES (1), (2), (3), (4), (5), (6), (7)")
        result = server.execute("SELECT A FROM T")
        packets = list(result.tdf_batches())
        assert len(packets) == 3  # 3 + 3 + 1 rows

    def test_non_row_results_yield_no_batches(self, server):
        result = server.execute("CREATE TABLE U (A INTEGER)")
        assert list(result.tdf_batches()) == []
        assert result.kind == "ok"

    def test_raw_rows_for_emulators(self, server):
        server.execute("CREATE TABLE T (A INTEGER)")
        server.execute("INSERT INTO T VALUES (9)")
        assert server.execute("SELECT A FROM T").raw_rows() == [(9,)]

    def test_execute_script(self, server):
        results = server.execute_script([
            "CREATE TABLE T (A INTEGER)",
            "INSERT INTO T VALUES (1)",
            "SELECT A FROM T",
        ])
        assert [result.kind for result in results] == ["ok", "count", "rows"]

    def test_close_and_reconnect(self, server):
        server.execute("CREATE TEMPORARY TABLE TT (A INTEGER)")
        server.close()
        # A new connection is a new backend session: temp table is gone.
        with pytest.raises(errors.HyperQError):
            server.execute("SELECT * FROM TT")


class TestProtocolFraming:
    def test_encode_prepends_header(self):
        packet = messages.encode_message(messages.MessageKind.RUN_QUERY, b"SEL 1")
        assert packet[:2] == messages.MAGIC
        assert len(packet) == messages.HEADER.size + 5

    def test_roundtrip_via_fake_socket(self):
        packet = messages.encode_message(messages.MessageKind.SUCCESS, b"\x00" * 8)

        class FakeSock:
            def __init__(self, data):
                self.data = data

            def recv(self, n):
                chunk, self.data = self.data[:n], self.data[n:]
                return chunk

        kind, payload = messages.read_message(FakeSock(packet))
        assert kind is messages.MessageKind.SUCCESS
        assert payload == b"\x00" * 8

    def test_truncated_stream_raises(self):
        class Dead:
            def recv(self, n):
                return b""

        with pytest.raises(errors.ProtocolError):
            messages.read_message(Dead())

    def test_unknown_kind_rejected(self):
        header = messages.HEADER.pack(messages.MAGIC, 200, 0)

        class FakeSock:
            def __init__(self, data):
                self.data = data

            def recv(self, n):
                chunk, self.data = self.data[:n], self.data[n:]
                return chunk

        with pytest.raises(errors.ProtocolError):
            messages.read_message(FakeSock(header))


class TestMacroExpansion:
    @pytest.fixture
    def session(self):
        engine = HyperQ()
        session = engine.create_session()
        session.execute("CREATE TABLE T (A INTEGER)")
        return session

    def expand(self, session, name, arguments=(), named=None):
        statement = r.ExecMacro(name, list(arguments), dict(named or {}))
        return macros.expand(session, statement)

    def test_positional_substitution(self, session):
        session.execute("CREATE MACRO M (P1 INTEGER) AS "
                        "(SEL A FROM T WHERE A = :P1;)")
        sql = self.expand(session, "M", [s.const_int(7)])
        assert "= 7" in sql
        assert ":P1" not in sql

    def test_string_arguments_quoted(self, session):
        session.execute("CREATE MACRO M2 (P VARCHAR(5)) AS "
                        "(SEL A FROM T WHERE A = :P;)")
        sql = self.expand(session, "M2", [s.const_str("x'y")])
        assert "'x''y'" in sql

    def test_negative_literal_argument(self, session):
        session.execute("CREATE MACRO M3 (P INTEGER) AS "
                        "(SEL A FROM T WHERE A = :P;)")
        negative = s.Negate(s.const_int(5), type=t.INTEGER)
        sql = self.expand(session, "M3", [negative])
        assert "-5" in sql

    def test_too_many_arguments_rejected(self, session):
        session.execute("CREATE MACRO M4 AS (SEL A FROM T;)")
        with pytest.raises(errors.EmulationError):
            self.expand(session, "M4", [s.const_int(1)])

    def test_non_literal_argument_rejected(self, session):
        session.execute("CREATE MACRO M5 (P INTEGER) AS "
                        "(SEL A FROM T WHERE A = :P;)")
        with pytest.raises(errors.EmulationError):
            self.expand(session, "M5", [s.ColumnRef("A")])


class TestReporting:
    def test_percent(self):
        assert percent(0.336) == "33.6%"
        assert percent(0.005, 2) == "0.50%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [("short", 1), ("a much longer name", 22)],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(set(len(line) for line in lines[1:])) <= 2  # aligned

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.HyperQError:
                assert issubclass(obj, errors.HyperQError), name

    def test_sql_errors_carry_position(self):
        error = errors.ParseError("bad", line=3, column=9)
        assert "line 3" in str(error)
        assert error.column == 9

    def test_sql_errors_without_position(self):
        assert str(errors.LexError("oops")) == "oops"
