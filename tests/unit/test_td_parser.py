"""Unit tests for the Teradata dialect parser."""

import datetime

import pytest

from repro.errors import ParseError
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata import ast as a
from repro.frontend.teradata.parser import TeradataParser
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t


@pytest.fixture
def parser():
    return TeradataParser()


def parse(sql, tracker=None):
    return TeradataParser(tracker).parse_statement(sql)


class TestKeywordShortcuts:
    def test_sel_is_select(self, tracker):
        statement = parse("SEL A FROM T", tracker)
        tracker.begin_query()
        parse("SEL A FROM T", tracker)
        assert isinstance(statement, a.TdQuery)
        assert "sel_shortcut" in tracker._current.features  # type: ignore

    def test_ins_upd_del_shortcuts(self):
        assert isinstance(parse("INS T (1, 2)"), a.TdInsert)
        assert isinstance(parse("UPD T SET A = 1"), a.TdUpdate)
        assert isinstance(parse("DEL FROM T WHERE A = 1"), a.TdDelete)

    def test_delete_all_shorthand(self):
        statement = parse("DEL T ALL")
        assert isinstance(statement, a.TdDelete)
        assert statement.where is None


class TestClauseOrder:
    """Example 1 places ORDER BY before WHERE; Teradata tolerates it."""

    def test_order_by_before_where(self):
        statement = parse("""
            SEL PRODUCT_NAME FROM PRODUCT
            ORDER BY STORE, PRODUCT_NAME
            WHERE CHARS(PRODUCT_NAME) > 4
        """)
        core = statement.select.first
        assert core.where is not None
        assert len(core.order_by) == 2

    def test_qualify_after_order(self):
        statement = parse(
            "SEL A FROM T ORDER BY A QUALIFY RANK(A DESC) <= 10")
        assert statement.select.first.qualify is not None

    def test_duplicate_clause_rejected(self):
        with pytest.raises(ParseError):
            parse("SEL A FROM T WHERE A = 1 WHERE A = 2")


class TestExpressions:
    def expr_of(self, sql):
        statement = parse(f"SEL {sql} FROM T")
        return statement.select.first.items[0].expr

    def test_legacy_rank_call(self):
        expr = self.expr_of("RANK(AMOUNT DESC)")
        assert isinstance(expr, a.TdRank)
        assert expr.keys[0].ascending is False

    def test_ansi_rank_over(self):
        expr = self.expr_of("RANK() OVER (PARTITION BY S ORDER BY A DESC)")
        assert isinstance(expr, s.WindowFunc)
        assert len(expr.partition_by) == 1

    def test_mod_keyword(self, tracker):
        tracker.begin_query()
        statement = TeradataParser(tracker).parse_statement("SEL A MOD 7 FROM T")
        expr = statement.select.first.items[0].expr
        assert isinstance(expr, s.Arith)
        assert expr.op is s.ArithOp.MOD
        assert "mod_operator" in tracker._current.features  # type: ignore

    def test_exponent_operator_right_associative(self):
        expr = self.expr_of("2 ** 3 ** 2")
        assert isinstance(expr, s.Arith)
        assert expr.op is s.ArithOp.POW
        assert isinstance(expr.right, s.Arith)  # 3 ** 2 grouped right

    def test_keyword_comparators(self):
        statement = parse("SEL A FROM T WHERE A NE 3 AND A GE 1")
        where = statement.select.first.where
        assert isinstance(where, s.BoolOp)
        assert where.args[0].op is s.CompOp.NE

    def test_date_literal(self):
        expr = self.expr_of("DATE '2014-01-01'")
        assert isinstance(expr, s.Const)
        assert expr.value == datetime.date(2014, 1, 1)

    def test_interval_literal_normalized(self):
        expr = self.expr_of("DATE '2014-01-01' + INTERVAL '3' MONTH")
        assert isinstance(expr, s.Arith)
        assert isinstance(expr.right, s.FuncCall)
        assert expr.right.name == "_INTERVAL"

    def test_vector_comparison_parses_to_quantified_subquery(self):
        statement = parse(
            "SEL * FROM SALES WHERE (AMOUNT, AMOUNT * 0.85) > "
            "ANY (SEL GROSS, NET FROM SALES_HISTORY)")
        where = statement.select.first.where
        assert isinstance(where, s.SubqueryExpr)
        assert where.kind is s.SubqueryKind.QUANTIFIED
        assert len(where.left) == 2

    def test_trim_variants(self):
        assert self.expr_of("TRIM(X)").name == "TRIM"
        assert self.expr_of("TRIM(TRAILING FROM X)").name == "RTRIM"
        assert self.expr_of("TRIM(LEADING FROM X)").name == "LTRIM"

    def test_not_in_list(self):
        statement = parse("SEL A FROM T WHERE A NOT IN (1, 2)")
        where = statement.select.first.where
        assert isinstance(where, s.InList)
        assert where.negated


class TestTopAndSetOps:
    def test_top_with_ties(self):
        statement = parse("SEL TOP 10 WITH TIES A FROM T ORDER BY A")
        assert statement.select.first.top == (10, True)

    def test_minus_is_except(self):
        statement = parse("SEL A FROM T MINUS SEL A FROM U")
        ((kind, all_rows, __),) = statement.select.branches
        assert kind is r.SetOpKind.EXCEPT
        assert not all_rows

    def test_union_all_chain(self):
        statement = parse("SEL A FROM T UNION ALL SEL A FROM U UNION SEL A FROM V")
        kinds = [(k, al) for k, al, __ in statement.select.branches]
        assert kinds == [(r.SetOpKind.UNION, True), (r.SetOpKind.UNION, False)]


class TestCreateTable:
    def test_set_and_multiset(self):
        assert parse("CREATE SET TABLE T (A INTEGER)").set_semantics
        assert not parse("CREATE MULTISET TABLE T (A INTEGER)").set_semantics

    def test_volatile_with_on_commit(self):
        statement = parse("CREATE VOLATILE TABLE V (X INTEGER) "
                          "ON COMMIT PRESERVE ROWS")
        assert statement.volatile
        assert statement.on_commit_preserve

    def test_global_temporary(self):
        statement = parse("CREATE GLOBAL TEMPORARY TABLE G (X INTEGER)")
        assert statement.global_temporary

    def test_column_properties(self):
        statement = parse("""
            CREATE TABLE T (
                A INTEGER NOT NULL,
                B VARCHAR(10) NOT CASESPECIFIC,
                C DATE DEFAULT CURRENT_DATE,
                D DECIMAL(12,2) DEFAULT 0.0,
                E CHAR(3) CHARACTER SET LATIN
            ) PRIMARY INDEX (A)
        """)
        by_name = {col.name: col for col in statement.columns}
        assert by_name["A"].not_null
        assert by_name["B"].case_specific is False
        assert by_name["C"].default_sql.strip().upper() == "CURRENT_DATE"
        assert by_name["D"].default_sql.strip() == "0.0"
        assert statement.primary_index == ("A",)

    def test_period_type(self):
        statement = parse("CREATE TABLE T (P PERIOD(DATE))")
        assert statement.columns[0].type.kind is t.TypeKind.PERIOD

    def test_create_table_as_select(self):
        statement = parse("CREATE TABLE T AS (SEL A FROM U) WITH DATA")
        assert statement.as_select is not None


class TestMacrosAndProcedures:
    def test_create_macro_captures_body(self):
        statement = parse(
            "CREATE MACRO M (P1 INTEGER) AS (SEL A FROM T WHERE B = :P1;)")
        assert isinstance(statement, a.TdCreateMacro)
        assert ":P1" in statement.body_sql
        assert statement.parameters == [("P1", t.INTEGER)]

    def test_macro_body_with_nested_parens(self):
        statement = parse(
            "CREATE MACRO M AS (SEL COUNT(*) FROM (SEL A FROM T) X;)")
        assert "COUNT ( * )" in statement.body_sql

    def test_exec_with_positional_and_named(self):
        statement = parse("EXEC M (1, P2 = 'x')")
        assert len(statement.arguments) == 1
        assert "P2" in statement.named_arguments

    def test_create_procedure_control_flow(self):
        statement = parse("""
            CREATE PROCEDURE P (IN X INTEGER, OUT Y INTEGER)
            BEGIN
                DECLARE V INTEGER DEFAULT 0;
                SET V = X + 1;
                IF V > 10 THEN
                    SET Y = V;
                ELSE
                    SET Y = 0;
                END IF;
                WHILE V < 3 DO
                    SET V = V + 1;
                END WHILE;
            END
        """)
        assert isinstance(statement, a.TdCreateProcedure)
        kinds = [type(item).__name__ for item in statement.body]
        assert kinds == ["TdDeclare", "TdSetVariable", "TdIf", "TdWhile"]

    def test_select_into(self):
        statement = parse("""
            CREATE PROCEDURE P (IN X INTEGER)
            BEGIN
                DECLARE V INTEGER;
                SELECT A INTO :V FROM T WHERE B = :X;
            END
        """)
        select_into = statement.body[1]
        assert isinstance(select_into, a.TdSelectInto)
        assert select_into.targets == ["V"]


class TestMiscStatements:
    def test_merge(self):
        statement = parse("""
            MERGE INTO T USING S ON T.ID = S.ID
            WHEN MATCHED THEN UPD SET V = S.V
            WHEN NOT MATCHED THEN INS (ID, V) VALUES (S.ID, S.V)
        """)
        assert isinstance(statement, a.TdMerge)
        assert statement.matched_assignments
        assert statement.insert_columns == ["ID", "V"]

    def test_help_variants(self):
        assert parse("HELP SESSION").kind == "SESSION"
        assert parse("HELP TABLE T1").subject == "T1"
        statement = parse("HELP COLUMN T1.C1")
        assert statement.subject == "T1.C1"

    def test_show_table(self):
        statement = parse("SHOW TABLE T1")
        assert isinstance(statement, a.TdShow)

    def test_transactions(self):
        assert parse("BT").action == "BEGIN"
        assert parse("ET").action == "COMMIT"
        assert parse("COMMIT WORK").action == "COMMIT"
        assert parse("ROLLBACK").action == "ROLLBACK"

    def test_collect_statistics_accepted(self):
        statement = parse("COLLECT STATISTICS ON T COLUMN (A)")
        assert isinstance(statement, a.TdCollectStatistics)

    def test_with_recursive(self):
        statement = parse("""
            WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
                SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
                UNION ALL
                SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS
                WHERE REPORTS.EMPNO = EMP.MGRNO)
            SELECT EMPNO FROM REPORTS ORDER BY EMPNO
        """)
        cte = statement.select.ctes[0]
        assert cte.recursive
        assert cte.column_names == ["EMPNO", "MGRNO"]

    def test_script_parsing(self, parser):
        statements = parser.parse_script("SEL A FROM T; DEL FROM U; HELP SESSION;")
        assert len(statements) == 3

    def test_garbage_rejected_with_position(self, parser):
        with pytest.raises(ParseError):
            parser.parse_statement("FROM SELECT")
