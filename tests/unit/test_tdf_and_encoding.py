"""Unit tests for the binary formats: TDF and the source wire encoding."""

import datetime

import pytest

from repro import tdf
from repro.errors import ConversionError
from repro.protocol import encoding as enc
from repro.xtra import types as t


SAMPLE_ROWS = [
    (1, "text", 2.5, datetime.date(2014, 1, 1), True, None),
    (None, "", -0.0, datetime.date(1899, 12, 31), False,
     datetime.datetime(2018, 6, 10, 12, 30, 45)),
]
SAMPLE_COLUMNS = ["I", "S", "F", "D", "B", "X"]


class TestTDF:
    def test_roundtrip(self):
        packet = tdf.encode_batch(SAMPLE_COLUMNS, SAMPLE_ROWS)
        columns, rows = tdf.decode_batch(packet)
        assert columns == SAMPLE_COLUMNS
        assert rows == SAMPLE_ROWS

    def test_empty_batch(self):
        packet = tdf.encode_batch(["A"], [])
        columns, rows = tdf.decode_batch(packet)
        assert columns == ["A"]
        assert rows == []

    def test_nested_list_values(self):
        packet = tdf.encode_batch(["L"], [([1, "two", None],)])
        __, rows = tdf.decode_batch(packet)
        assert rows == [([1, "two", None],)]

    def test_bytes_values(self):
        packet = tdf.encode_batch(["B"], [(b"\x00\xff",)])
        __, rows = tdf.decode_batch(packet)
        assert rows == [(b"\x00\xff",)]

    def test_time_values(self):
        value = datetime.time(13, 5, 7, 123456)
        packet = tdf.encode_batch(["T"], [(value,)])
        __, rows = tdf.decode_batch(packet)
        assert rows == [(value,)]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConversionError):
            tdf.encode_batch(["A", "B"], [(1,)])

    def test_bad_magic_rejected(self):
        with pytest.raises(ConversionError):
            tdf.decode_batch(b"XXXX" + b"\x00" * 8)

    def test_unencodable_value_rejected(self):
        with pytest.raises(ConversionError):
            tdf.encode_batch(["A"], [(object(),)])

    def test_batches_of_splits(self):
        rows = [(i,) for i in range(10)]
        packets = list(tdf.batches_of(["N"], rows, batch_rows=4))
        assert len(packets) == 3
        decoded = []
        for packet in packets:
            decoded.extend(tdf.decode_batch(packet)[1])
        assert decoded == rows

    def test_batches_of_empty_result_yields_one_header_packet(self):
        packets = list(tdf.batches_of(["N"], []))
        assert len(packets) == 1
        assert tdf.decode_batch(packets[0]) == (["N"], [])


class TestWireEncoding:
    def metas(self, rows):
        return enc.effective_meta(
            SAMPLE_COLUMNS,
            [t.BIGINT, t.varchar(10), t.FLOAT, t.DATE, t.SQLType(t.TypeKind.BOOLEAN),
             t.TIMESTAMP],
            rows)

    def test_roundtrip(self):
        rows = [
            (1, "text", 2.5, datetime.date(2014, 1, 1), True,
             datetime.datetime(2018, 6, 10, 12, 0)),
            (None, None, None, None, None, None),
        ]
        metas = self.metas(rows)
        blob = enc.encode_rows(metas, rows)
        assert enc.decode_rows(metas, blob) == rows

    def test_meta_roundtrip(self):
        metas = self.metas([])
        assert enc.decode_meta(enc.encode_meta(metas)) == metas

    def test_dates_use_teradata_internal_encoding(self):
        metas = [enc.ColumnMeta("D", enc.CODE_DATE)]
        blob = enc.encode_rows(metas, [(datetime.date(2014, 1, 1),)])
        # record: u32 len | bitmap(1) | i32 date.
        import struct

        (__, date_int) = struct.unpack("<xxxxb i", blob[:9])[0], \
            struct.unpack("<i", blob[5:9])[0]
        assert date_int == 1140101

    def test_unknown_type_inferred_from_values(self):
        metas = enc.effective_meta(["X"], [t.UNKNOWN], [(None,), (3,)])
        assert metas[0].code == enc.CODE_BIGINT

    def test_all_null_unknown_column_degrades_to_varchar(self):
        metas = enc.effective_meta(["X"], [t.UNKNOWN], [(None,)])
        assert metas[0].code == enc.CODE_VARCHAR

    def test_more_than_eight_columns_bitmap(self):
        names = [f"C{i}" for i in range(10)]
        metas = [enc.ColumnMeta(name, enc.CODE_INTEGER) for name in names]
        row = tuple(i if i % 3 else None for i in range(10))
        blob = enc.encode_rows(metas, [row])
        assert enc.decode_rows(metas, blob) == [row]

    def test_corrupt_record_rejected(self):
        metas = [enc.ColumnMeta("A", enc.CODE_INTEGER)]
        blob = enc.encode_rows(metas, [(1,)])
        # Declare a longer record than was written.
        import struct

        bad = struct.pack("<I", len(blob)) + blob[4:]
        with pytest.raises(ConversionError):
            enc.decode_rows(metas, bad)
