"""Unit battery for the multi-tenant control plane (`repro.core.tenancy`).

Covers quota/config validation (typed errors naming the offending tenant
and field), LOGON-time resolution, admission (queue depth, token-bucket
QPS, concurrency slots), per-tenant cache partitioning with reserved-share
eviction, result-cache TTL + cost admission, report merging across
workers, and the ``tenancy`` fault site.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cache import CacheEntry, TranslationCache
from repro.core.faults import QUOTA_EXCEEDED, FaultSchedule, FaultSpec
from repro.core.result_cache import ResultCache, ResultEntry
from repro.core.tenancy import (DEFAULT_TENANT, TenancyConfig, TenantQuota,
                                TenantRegistry, histogram_quantile,
                                merge_reports, render_tenants, tenant_report)
from repro.errors import (HyperQError, TenancyConfigError, TenantQuotaError,
                          UnknownTenantError, WorkloadShedError)


class _Clock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _entry(payload: int = 100, ttl: float = 0.0) -> ResultEntry:
    return ResultEntry(columns=("A",), types=("INTEGER",),
                       packets=(b"x" * payload,), notes=(),
                       deps=("T",), vector=(("T", 0, 0),), ttl=ttl)


def _vector(names):
    """A current_vector callable that always matches :func:`_entry`."""
    return tuple((name, 0, 0) for name in names)


class TestConfigValidation:
    def test_unknown_quota_key_names_tenant_and_field(self):
        with pytest.raises(TenancyConfigError, match="'a'.*wieght"):
            TenancyConfig.from_dict({"tenants": {"a": {"wieght": 2.0}}})

    def test_bad_json_is_a_config_error(self):
        with pytest.raises(TenancyConfigError, match="not valid JSON"):
            TenancyConfig.parse("{nope")

    def test_negative_rate_rejected(self):
        with pytest.raises(TenancyConfigError, match="rate"):
            TenantQuota(name="a", rate=-1.0)

    def test_share_sum_over_one_rejected(self):
        with pytest.raises(TenancyConfigError, match="share"):
            TenancyConfig.from_dict({"tenants": {
                "a": {"result_cache_share": 0.7},
                "b": {"result_cache_share": 0.6}}})

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(TenancyConfigError, match="twice"):
            TenancyConfig(tenants=(TenantQuota(name="a"),
                                   TenantQuota(name="a")))

    def test_default_tenant_auto_created(self):
        config = TenancyConfig.from_dict({"tenants": {"a": {}}})
        assert DEFAULT_TENANT in config.quotas()

    def test_typed_errors_are_hyperq_errors(self):
        assert issubclass(TenancyConfigError, HyperQError)
        assert issubclass(UnknownTenantError, HyperQError)
        # Wire servers reply FAILURE (session survives) on shed classes.
        assert issubclass(TenantQuotaError, WorkloadShedError)

    def test_per_worker_splits_bounded_quotas(self):
        config = TenancyConfig.from_dict({"tenants": {
            "a": {"max_concurrency": 4, "queue_depth": 8, "rate": 10.0,
                  "result_cache_share": 0.25}}})
        split = config.per_worker(2).quotas()["a"]
        assert split.max_concurrency == 2
        assert split.queue_depth == 4
        assert split.rate == pytest.approx(5.0)
        # Shares are fractions of each worker's own cache — pass through.
        assert split.result_cache_share == 0.25


class TestRegistry:
    def test_resolution_normalizes_and_defaults(self):
        registry = TenantRegistry(
            TenancyConfig.from_dict({"tenants": {"acme": {}}}))
        assert registry.resolve(None) == DEFAULT_TENANT
        assert registry.resolve("  ACME ") == "acme"
        with pytest.raises(UnknownTenantError, match="ghost"):
            registry.resolve("ghost")

    def test_queue_depth_quota_sheds_with_retry_after(self):
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {"queue_depth": 1}}}))
        registry.admit("a", "interactive", "SEL 1")
        registry.note_queued("a")
        with pytest.raises(TenantQuotaError, match="QUOTA_EXCEEDED.*retry"):
            registry.admit("a", "interactive", "SEL 2")
        snapshot = registry.snapshot()["a"]
        assert snapshot["shed"] == 1
        assert snapshot["quota_sheds"] == 1

    def test_rate_quota_sheds_when_bucket_empty(self):
        clock = _Clock()
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {"rate": 1.0, "burst": 1}}}), clock=clock)
        registry.admit("a", "interactive", "SEL 1")
        with pytest.raises(TenantQuotaError, match="QPS"):
            registry.admit("a", "interactive", "SEL 2")
        clock.advance(1.5)  # the bucket refills at 1 qps
        registry.admit("a", "interactive", "SEL 3")

    def test_admin_class_bypasses_the_rate_bucket(self):
        # A tenant at its QPS budget must still be able to observe its
        # own sheds: SHOW HYPERQ verbs classify admin and skip the bucket.
        clock = _Clock()
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {"rate": 1.0, "burst": 1}}}), clock=clock)
        registry.admit("a", "interactive", "SEL 1")  # drains the bucket
        with pytest.raises(TenantQuotaError, match="QPS"):
            registry.admit("a", "interactive", "SEL 2")
        registry.admit("a", "admin", "SHOW HYPERQ TENANTS")

    def test_show_hyperq_classifies_admin_despite_override(self):
        from repro.core.workload import (WorkloadConfig, WorkloadManager)

        manager = WorkloadManager(WorkloadConfig(workers=1))
        try:
            class _Session:
                session_params = {"WORKLOAD": "etl"}

            decision = manager.decide(_Session(), "SHOW HYPERQ TENANTS")
            assert decision.wl_class == "admin"
        finally:
            manager.close()

    def test_concurrency_slots_gate_dispatch_not_admission(self):
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {"max_concurrency": 1}}}))
        registry.admit("a", "interactive", "SEL 1")
        registry.note_queued("a")
        registry.note_dispatch("a", 0.0)
        assert not registry.has_slot("a")
        registry.admit("a", "interactive", "SEL 2")  # queued, not shed
        registry.note_finish("a")
        assert registry.has_slot("a")

    def test_fault_site_injects_quota_sheds(self):
        faults = FaultSchedule(7, [FaultSpec(QUOTA_EXCEEDED, "tenancy",
                                             every=2)])
        registry = TenantRegistry(
            TenancyConfig.from_dict({"tenants": {"a": {}}}), faults=faults)
        outcomes = []
        for index in range(6):
            try:
                registry.admit("a", "interactive", f"SEL {index}")
                outcomes.append("ok")
            except TenantQuotaError:
                outcomes.append("shed")
        assert outcomes == ["ok", "shed"] * 3

    def test_scheduler_weights_are_products(self):
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {"weight": 3.0}}}))
        weights = registry.scheduler_weights({"interactive": 4.0,
                                              "batch": 1.0})
        assert weights[("a", "interactive")] == pytest.approx(12.0)
        assert weights[("a", "batch")] == pytest.approx(3.0)
        assert weights[(DEFAULT_TENANT, "interactive")] == pytest.approx(4.0)


class TestCachePartitioning:
    def test_translation_cache_tracks_tenant_bytes(self):
        cache = TranslationCache(64 * 1024, tenant_shares={"a": 0.5})
        entry = CacheEntry(template=None, sql="SELECT 1", notes=(),
                           deps=("T",))
        cache._install(("k1",), entry, tenant="a")
        assert cache.tenant_bytes()["a"] == entry.size

    def test_result_cache_reserved_share_protects_tenant(self):
        # The cap fits ~6 entries; "a" reserves 40% and sits well below
        # it, so a storm of "b" inserts may only churn b's own entries.
        cache = ResultCache(max_bytes=3000, max_entry_bytes=3000,
                            tenant_shares={"a": 0.4})
        assert cache.insert(("a-key",), _entry(200), tenant="a")
        for index in range(8):
            cache.insert((f"b-{index}",), _entry(200), tenant="b")
        assert cache.lookup(("a-key",), _vector) is not None
        assert cache.stats().evictions > 0

    def test_owner_tenant_can_evict_itself_below_share(self):
        cache = ResultCache(max_bytes=2500, max_entry_bytes=2500,
                            tenant_shares={"a": 1.0})
        for index in range(5):
            cache.insert((f"a-{index}",), _entry(400), tenant="a")
        # a's own churn evicted a's own oldest entries — progress holds
        # even though every resident byte is under a's reservation.
        assert cache.stats().evictions > 0
        assert cache.tenant_bytes()["a"] <= 2500

    def test_share_sum_validation(self):
        with pytest.raises(ValueError, match="share"):
            ResultCache(1000, tenant_shares={"a": 0.8, "b": 0.8})
        with pytest.raises(ValueError, match="share"):
            TranslationCache(1000, tenant_shares={"a": 1.2})


class TestResultCacheTtlAndAdmission:
    def test_expired_entry_drops_at_lookup(self):
        clock = _Clock()
        cache = ResultCache(10_000, clock=clock, default_ttl=5.0)
        cache.insert(("k",), _entry())
        assert cache.lookup(("k",), _vector) is not None
        clock.advance(6.0)
        assert cache.lookup(("k",), _vector) is None
        assert cache.stats().expired == 1
        assert len(cache) == 0

    def test_entry_ttl_overrides_default(self):
        clock = _Clock()
        cache = ResultCache(10_000, clock=clock, default_ttl=100.0)
        cache.insert(("k",), _entry(ttl=1.0))
        clock.advance(2.0)
        assert cache.lookup(("k",), _vector) is None

    def test_zero_ttl_never_expires(self):
        clock = _Clock()
        cache = ResultCache(10_000, clock=clock)
        cache.insert(("k",), _entry())
        clock.advance(1e9)
        assert cache.lookup(("k",), _vector) is not None

    def test_admission_rejects_cheap_huge_results(self):
        # Storing needs backend_ms × repeats ≥ size_mb × 1000; a ~64 KiB
        # entry therefore needs ≥ ~63 ms of backend time behind it.
        cache = ResultCache(1 << 20, admission_ms_per_mb=1000.0)
        assert not cache.insert(("k",), _entry(64 * 1024), backend_ms=1.0)
        assert cache.stats().admission_rejects == 1
        assert cache.insert(("k2",), _entry(64 * 1024), backend_ms=100.0)

    def test_admission_learns_expected_repeats_from_misses(self):
        cache = ResultCache(1 << 20, admission_ms_per_mb=1000.0)
        # Three misses first: expected_repeats = 3, so 25 ms × 3 clears
        # the ~63 ms bar that a single observed miss would fail.
        for _ in range(3):
            assert cache.lookup(("k",), _vector) is None
        assert cache.insert(("k",), _entry(64 * 1024), backend_ms=25.0)

    def test_admission_disabled_by_default(self):
        cache = ResultCache(1 << 20)
        assert cache.insert(("k",), _entry(64 * 1024), backend_ms=0.0)


class TestReports:
    def _registry(self):
        registry = TenantRegistry(TenancyConfig.from_dict(
            {"tenants": {"a": {}, "b": {}}}))
        registry.admit("a", "interactive", "SEL 1")
        registry.note_queued("a")
        registry.note_dispatch("a", 0.010)
        registry.note_finish("a")
        return registry

    def test_merge_reports_sums_counters_and_bytes(self):
        r1 = self._registry().snapshot()
        r2 = self._registry().snapshot()
        for report in (r1, r2):
            report["a"]["result_cache_bytes"] = 100
            report["a"]["cache_bytes"] = 100
        merged = merge_reports([r1, r2])
        assert merged["a"]["requests"] == 2
        assert merged["a"]["admitted"] == 2
        assert merged["a"]["cache_bytes"] == 200

    def test_merged_histogram_keeps_quantiles(self):
        r1 = self._registry().snapshot()
        r2 = self._registry().snapshot()
        merged = merge_reports([r1, r2])
        assert merged["a"]["queue_wait"]["count"] == 2
        assert histogram_quantile(merged["a"]["queue_wait"], 0.99) > 0.0

    def test_render_is_machine_readable(self):
        report = merge_reports([self._registry().snapshot()])
        text = render_tenants(report, workers=3)
        lines = text.splitlines()
        assert "3 workers" in lines[0]
        header = lines[1].split("\t")
        for line in lines[2:]:
            assert len(line.split("\t")) == len(header)

    def test_tenant_report_includes_cache_bytes(self):
        from repro.core.engine import HyperQ
        from repro.core.workload import WorkloadConfig, WorkloadManager

        registry = TenantRegistry(
            TenancyConfig.from_dict({"tenants": {"a": {}}}))
        manager = WorkloadManager(WorkloadConfig(), tenancy=registry)
        try:
            engine = HyperQ(workload=manager, result_cache_bytes=1 << 20)
            report = tenant_report(engine)
            assert set(report) == {"a", DEFAULT_TENANT}
            for row in report.values():
                assert "cache_bytes" in row
        finally:
            manager.close()


class TestEngineIntegration:
    def test_engine_requires_manager_to_share_registry(self):
        from repro.core.engine import HyperQ
        from repro.core.workload import WorkloadConfig, WorkloadManager

        registry = TenantRegistry(
            TenancyConfig.from_dict({"tenants": {"a": {}}}))
        manager = WorkloadManager(WorkloadConfig())  # no tenancy
        try:
            with pytest.raises(HyperQError, match="tenancy"):
                HyperQ(workload=manager, tenancy=registry)
        finally:
            manager.close()

    def test_engine_adopts_manager_registry(self):
        from repro.core.engine import HyperQ
        from repro.core.workload import WorkloadConfig, WorkloadManager

        registry = TenantRegistry(
            TenancyConfig.from_dict({"tenants": {"a": {}}}))
        manager = WorkloadManager(WorkloadConfig(), tenancy=registry)
        try:
            engine = HyperQ(workload=manager)
            assert engine.tenancy is registry
            session = engine.create_session()
            assert session.tenant == DEFAULT_TENANT
        finally:
            manager.close()

    def test_show_tenants_round_trips_json_config(self):
        from repro.core.engine import HyperQ
        from repro.core.workload import WorkloadConfig, WorkloadManager

        config = TenancyConfig.parse(json.dumps(
            {"tenants": {"acme": {"weight": 2.0}}}))
        registry = TenantRegistry(config)
        manager = WorkloadManager(WorkloadConfig(), tenancy=registry)
        try:
            engine = HyperQ(workload=manager)
            session = engine.create_session()
            result = session.execute("SHOW HYPERQ TENANTS")
            text = "\n".join(row[0] for row in result.rows)
            assert "acme" in text and "tenant" in text
        finally:
            manager.close()
