"""Unit tests for the observability layer (:mod:`repro.core.trace`)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import trace as trace_mod
from repro.core.engine import HyperQ
from repro.core.trace import (
    MetricsRegistry, Trace, TraceHub, assert_span_tree, render_trace,
    xtra_digest,
)
from repro.errors import HyperQError


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        hub = TraceHub()
        with hub.request("request", "SEL 1") as trace:
            with trace_mod.span("outer"):
                with trace_mod.span("inner", depth=2):
                    trace_mod.add_event("tick", n=1)
        assert_span_tree(trace)
        names = trace.stage_names()
        assert names == ["request", "outer", "inner"]
        inner = trace.spans[2]
        assert inner.attrs["depth"] == 2
        assert inner.events == [("tick", {"n": 1})]

    def test_no_active_trace_means_noop(self):
        with trace_mod.span("orphan") as span:
            assert span is None
        trace_mod.add_event("dropped")  # must not raise
        assert trace_mod.current_span() is None
        assert trace_mod.current_trace() is None

    def test_exception_marks_outcome_and_propagates(self):
        hub = TraceHub()
        with pytest.raises(HyperQError):
            with hub.request("request") as trace:
                with trace_mod.span("stage"):
                    raise HyperQError("boom")
        assert trace.spans[1].outcome == "error:HyperQError"
        assert trace.spans[0].outcome == "error:HyperQError"
        assert hub.metrics.counter("hyperq_request_errors_total").value == 1

    def test_finish_clamps_open_spans(self):
        """A span abandoned mid-stream (lazy result never drained) is
        clamped to the root's end so nesting invariants still hold."""
        hub = TraceHub()
        with hub.request("request") as trace:
            dangling = trace_mod.begin_span("stream")
            assert dangling is not None
        assert dangling.end is not None
        assert dangling.outcome == "unfinished"
        assert_span_tree(trace)

    def test_finished_trace_rejects_new_spans(self):
        """A timed-out straggler must not mutate a recorded trace."""
        hub = TraceHub()
        with hub.request("request") as trace:
            root = trace_mod.current_span()
        late = trace.new_span("late", root)
        assert late is None
        with trace_mod.activate(root):
            with trace_mod.span("also-late") as span:
                assert span is None
        assert trace.stage_names() == ["request"]

    def test_cross_thread_handoff(self):
        hub = TraceHub()
        with hub.request("request") as trace:
            root = trace_mod.current_span()
            done = threading.Event()

            def work():
                with trace_mod.activate(root):
                    with trace_mod.span("worker"):
                        pass
                done.set()

            thread = threading.Thread(target=work)
            thread.start()
            assert done.wait(5)
            thread.join()
        assert "worker" in trace.stage_names()
        assert_span_tree(trace)

    def test_nested_request_is_noop(self):
        hub = TraceHub()
        with hub.request("outer") as outer:
            with hub.request("inner") as inner:
                assert inner is None
        assert len(hub.trace_ids()) == 1
        assert outer.name == "outer"

    def test_disabled_hub_traces_nothing(self):
        hub = TraceHub(enabled=False)
        with hub.request("request") as trace:
            assert trace is None
            assert trace_mod.current_span() is None
        assert hub.trace_ids() == []


class TestHubSinks:
    def test_ring_buffer_evicts_oldest(self):
        hub = TraceHub(ring_size=3)
        for i in range(5):
            with hub.request("request", f"Q{i}"):
                pass
        assert hub.trace_ids() == [3, 4, 5]
        assert hub.get_trace(1) is None
        assert hub.last_trace().sql == "Q4"

    def test_jsonl_trace_log(self, tmp_path):
        log = tmp_path / "traces.jsonl"
        hub = TraceHub(trace_log=str(log))
        with hub.request("request", "SEL 1"):
            with trace_mod.span("stage"):
                pass
        lines = log.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["sql"] == "SEL 1"
        assert [s["name"] for s in record["spans"]] == ["request", "stage"]

    def test_slow_query_log_gated_on_class_threshold(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        hub = TraceHub(slow_query_log=str(log),
                       slow_thresholds={"default": 0.0, "etl": 1e9})
        with hub.request("request", "SEL SLOW") as trace:
            pass
        hub2_trace = hub.start_trace("request", "SEL FAST")
        hub.finish_trace(hub2_trace, wl_class="etl")
        assert [r["sql"] for r in hub.slow_queries] == ["SEL SLOW"]
        record = json.loads(log.read_text().splitlines()[0])
        assert record["trace_id"] == trace.trace_id
        assert hub.metrics.counter("hyperq_slow_queries_total").value == 1

    def test_dump_jsonl_round_trips(self):
        hub = TraceHub()
        for i in range(3):
            with hub.request("request", f"Q{i}"):
                pass
        dumped = [json.loads(line) for line in hub.dump_jsonl().splitlines()]
        assert [d["sql"] for d in dumped] == ["Q0", "Q1", "Q2"]

    def test_render_trace_shows_tree_and_events(self):
        hub = TraceHub()
        with hub.request("request", "SEL 1") as trace:
            with trace_mod.span("stage", bytes=12):
                trace_mod.add_event("retry", attempt=1)
        lines = render_trace(trace)
        assert lines[0].startswith(f"trace {trace.trace_id} [ok]")
        assert any("stage" in line and "bytes=12" in line for line in lines)
        assert any(line.strip().startswith("! retry") for line in lines)


class TestXtraDigest:
    def test_digest_is_stable_and_structural(self):
        class Node:
            def __init__(self, value, child=None):
                self.value = value
                self.child = child
                self._hidden = object()  # ignored: underscore-private

        a = Node(1, Node("leaf"))
        b = Node(1, Node("leaf"))
        assert xtra_digest(a) == xtra_digest(b)
        assert xtra_digest(a) != xtra_digest(Node(2, Node("leaf")))

    def test_digest_changes_when_rewrite_changes_tree(self, session):
        session.execute("CREATE TABLE T1 (A INTEGER, B DATE)")
        result = session.execute(
            "SEL A FROM T1 WHERE B > DATE '2020-01-01' ORDER BY A DESC")
        trace = session.engine.tracing.last_trace()
        rule_spans = [s for s in trace.spans if s.name.startswith("rule:")]
        assert rule_spans, "expected at least one fired rewrite rule"
        for span in rule_spans:
            assert span.attrs["before"] != span.attrs["after"]


class TestAdminCommands:
    def test_show_metrics(self, session):
        session.execute("CREATE TABLE T2 (A INTEGER)")
        result = session.execute("SHOW HYPERQ METRICS")
        text = "\n".join(row[0] for row in result.rows)
        assert "counter hyperq_requests_total" in text
        assert "histogram hyperq_request_seconds" in text

    def test_show_trace_by_id(self, session):
        session.execute("CREATE TABLE T3 (A INTEGER)")
        session.execute("INSERT INTO T3 VALUES (1)")
        trace = session.engine.tracing.last_trace()
        result = session.execute(f"SHOW HYPERQ TRACE {trace.trace_id}")
        text = "\n".join(row[0] for row in result.rows)
        assert "odbc_execute" in text
        assert "INSERT INTO T3" in text

    def test_show_trace_unknown_id(self, session):
        with pytest.raises(HyperQError, match="no trace 9999"):
            session.execute("SHOW HYPERQ TRACE 9999")

    def test_show_traces_index(self, session):
        session.execute("CREATE TABLE T4 (A INTEGER)")
        result = session.execute("SHOW HYPERQ TRACES")
        assert result.rows, "ring buffer should hold the DDL trace"

    def test_admin_commands_case_insensitive(self, session):
        result = session.execute("show hyperq metrics;")
        assert result.rows

    def test_disabled_engine_has_no_traces(self):
        engine = HyperQ(tracing=False)
        session = engine.create_session()
        session.execute("CREATE TABLE T5 (A INTEGER)")
        assert engine.tracing.trace_ids() == []
        result = session.execute("SHOW HYPERQ TRACES")
        assert result.rows == [("(no traces recorded)",)]


class TestEngineMetrics:
    def test_pipeline_metrics_recorded(self, session):
        session.execute("CREATE TABLE T6 (A INTEGER)")
        session.execute("INSERT INTO T6 VALUES (1)")
        session.execute("SEL A FROM T6")
        metrics = session.engine.tracing.metrics
        assert metrics.counter("hyperq_requests_total").value >= 3
        assert metrics.histogram("hyperq_request_seconds").count >= 3
        assert metrics.counter("hyperq_timed_requests_total").value >= 3

    def test_tracker_counters_mirrored(self, tracker, session):
        session.execute("CREATE TABLE T7 (A INTEGER)")
        session.execute("SEL A FROM T7 QUALIFY ROW_NUMBER() "
                        "OVER (ORDER BY A) = 1")
        metrics = session.engine.tracing.metrics
        assert metrics.counter("hyperq_feature_qualify_total").value == 1
        assert metrics.counter("hyperq_tracked_queries_total").value >= 1
