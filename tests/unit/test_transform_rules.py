"""Unit tests for the Transformer engine and its capability-gated rules."""

import pytest

from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.core.tracker import FeatureTracker
from repro.errors import TransformError
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.transform.capabilities import (
    HYPERION, HYPERION_PLUS, MEADOWSHIFT, TERADATA,
)
from repro.transform.engine import Rule, RuleContext, Transformer
from repro.transform.rules.date_int_compare import DateIntCompareRule, date_to_int_expr
from repro.transform.rules.null_ordering import teradata_nulls_first
from repro.transform.rules.olap_grouping import grouping_sets_of
from repro.transform.rules.vector_subquery import lexicographic_predicate
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import walk_all_scalars, walk_rel


@pytest.fixture
def catalog():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("SALES", [
        ColumnSchema("AMOUNT", t.decimal(12, 2)),
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("SALES_DATE", t.DATE),
    ]))
    shadow.add_table(TableSchema("SALES_HISTORY", [
        ColumnSchema("GROSS", t.decimal(12, 2)),
        ColumnSchema("NET", t.decimal(12, 2)),
    ]))
    return SessionCatalog(shadow)


def bound(sql, catalog, tracker=None):
    parser = TeradataParser(tracker)
    return Binder(catalog, tracker).bind(parser.parse_statement(sql))


def transform(statement, profile=HYPERION, tracker=None, fixpoint=True):
    Transformer(profile, tracker, fixpoint=fixpoint).transform(statement)
    return statement


class TestDateIntCompare:
    def test_expansion_structure(self):
        ref = s.ColumnRef("D", type=t.DATE)
        expanded = date_to_int_expr(ref)
        # DAY + MONTH*100 + (YEAR-1900)*10000
        assert isinstance(expanded, s.Arith)
        extracts = [n for n in _walk(expanded) if isinstance(n, s.Extract)]
        assert {e.field_name.value for e in extracts} == {"DAY", "MONTH", "YEAR"}

    def test_rewrite_fires_for_strict_target(self, catalog, tracker):
        tracker.begin_query()
        statement = bound("SEL STORE FROM SALES WHERE SALES_DATE > 1140101",
                          catalog, tracker)
        transform(statement, HYPERION, tracker)
        comps = [n for n in _stmt_scalars(statement) if isinstance(n, s.Comp)]
        assert any(isinstance(c.left, s.Arith) for c in comps)
        assert "date_int_comparison" in tracker._current.features  # type: ignore

    def test_rewrite_skipped_for_teradata_target(self, catalog):
        statement = bound("SEL STORE FROM SALES WHERE SALES_DATE > 1140101",
                          catalog)
        transform(statement, TERADATA)
        comps = [n for n in _stmt_scalars(statement) if isinstance(n, s.Comp)]
        assert all(isinstance(c.left, s.ColumnRef) for c in comps)


class TestDateArith:
    def test_date_plus_int_becomes_dateadd(self, catalog):
        statement = bound("SEL SALES_DATE + 30 FROM SALES", catalog)
        transform(statement, HYPERION)
        calls = [n for n in _stmt_scalars(statement)
                 if isinstance(n, s.FuncCall) and n.name == "DATEADD"]
        assert calls

    def test_date_minus_int_negates_amount(self, catalog):
        statement = bound("SEL SALES_DATE - 7 FROM SALES", catalog)
        transform(statement, HYPERION)
        (call,) = [n for n in _stmt_scalars(statement)
                   if isinstance(n, s.FuncCall) and n.name == "DATEADD"]
        assert isinstance(call.args[1], s.Negate)

    def test_skipped_when_target_supports_it(self, catalog):
        statement = bound("SEL SALES_DATE + 30 FROM SALES", catalog)
        transform(statement, MEADOWSHIFT)  # date_int_arithmetic = True
        calls = [n for n in _stmt_scalars(statement)
                 if isinstance(n, s.FuncCall) and n.name == "DATEADD"]
        assert not calls


class TestVectorSubquery:
    def test_lexicographic_predicate_gt(self):
        left = [s.ColumnRef("A"), s.ColumnRef("B")]
        right = [s.ColumnRef("X"), s.ColumnRef("Y")]
        pred = lexicographic_predicate(s.CompOp.GT, left, right)
        # A > X OR (A = X AND B > Y)
        assert isinstance(pred, s.BoolOp)
        assert pred.op is s.BoolOpKind.OR
        assert len(pred.args) == 2

    def test_rewrite_produces_exists(self, catalog, tracker):
        tracker.begin_query()
        statement = bound(
            "SEL * FROM SALES WHERE (AMOUNT, AMOUNT * 0.85) > "
            "ANY (SEL GROSS, NET FROM SALES_HISTORY)", catalog, tracker)
        transform(statement, HYPERION, tracker)
        subqs = [n for n in _stmt_scalars(statement)
                 if isinstance(n, s.SubqueryExpr)]
        assert len(subqs) == 1
        assert subqs[0].kind is s.SubqueryKind.EXISTS
        assert "vector_subquery" in tracker._current.features  # type: ignore

    def test_rewrite_skipped_for_capable_target(self, catalog):
        statement = bound(
            "SEL * FROM SALES WHERE (AMOUNT, AMOUNT * 0.85) > "
            "ANY (SEL GROSS, NET FROM SALES_HISTORY)", catalog)
        transform(statement, HYPERION_PLUS)
        subqs = [n for n in _stmt_scalars(statement)
                 if isinstance(n, s.SubqueryExpr)]
        assert subqs[0].kind is s.SubqueryKind.QUANTIFIED

    def test_single_column_quantified_untouched(self, catalog):
        statement = bound(
            "SEL * FROM SALES WHERE AMOUNT > ANY (SEL GROSS FROM SALES_HISTORY)",
            catalog)
        transform(statement, HYPERION)
        subqs = [n for n in _stmt_scalars(statement)
                 if isinstance(n, s.SubqueryExpr)]
        assert subqs[0].kind is s.SubqueryKind.QUANTIFIED


class TestOlapGrouping:
    def test_rollup_set_enumeration(self, catalog):
        statement = bound(
            "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP (STORE)",
            catalog)
        agg = next(n for n in _stmt_rels(statement) if isinstance(n, r.Aggregate))
        sets = grouping_sets_of(agg)
        assert sets == [[0], []]

    def test_rollup_expands_to_union_all(self, catalog, tracker):
        tracker.begin_query()
        statement = bound(
            "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP (STORE)",
            catalog, tracker)
        transform(statement, HYPERION, tracker)
        setops = [n for n in _stmt_rels(statement) if isinstance(n, r.SetOp)]
        assert len(setops) == 1
        assert setops[0].all
        aggs = [n for n in _stmt_rels(statement) if isinstance(n, r.Aggregate)]
        assert all(a.kind is r.GroupingKind.SIMPLE for a in aggs)
        assert "grouping_extensions" in tracker._current.features  # type: ignore

    def test_cube_two_keys_gives_four_branches(self, catalog):
        statement = bound(
            "SEL STORE, SALES_DATE, SUM(AMOUNT) FROM SALES "
            "GROUP BY CUBE (STORE, SALES_DATE)", catalog)
        transform(statement, HYPERION)
        aggs = [n for n in _stmt_rels(statement) if isinstance(n, r.Aggregate)]
        assert len(aggs) == 4

    def test_native_target_keeps_extension(self, catalog):
        statement = bound(
            "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP (STORE)",
            catalog)
        transform(statement, HYPERION_PLUS)
        agg = next(n for n in _stmt_rels(statement) if isinstance(n, r.Aggregate))
        assert agg.kind is r.GroupingKind.ROLLUP


class TestNullOrdering:
    def test_teradata_places_nulls_low(self):
        assert teradata_nulls_first(True) is True
        assert teradata_nulls_first(False) is False

    def test_sort_keys_pinned(self, catalog, tracker):
        tracker.begin_query()
        statement = bound("SEL STORE FROM SALES ORDER BY STORE DESC", catalog,
                          tracker)
        transform(statement, HYPERION, tracker)
        sort = next(n for n in _stmt_rels(statement) if isinstance(n, r.Sort))
        assert sort.keys[0].nulls_first is False  # DESC: nulls sink last
        assert "null_ordering" in tracker._current.features  # type: ignore

    def test_window_order_keys_pinned(self, catalog):
        statement = bound(
            "SEL STORE FROM SALES QUALIFY RANK(AMOUNT DESC) <= 2", catalog)
        transform(statement, HYPERION)
        window = next(n for n in _stmt_rels(statement) if isinstance(n, r.Window))
        assert window.funcs[0].order_by[0].nulls_first is False

    def test_explicit_keys_untouched(self, catalog):
        statement = bound(
            "SEL STORE FROM SALES ORDER BY STORE ASC NULLS LAST", catalog)
        transform(statement, HYPERION)
        sort = next(n for n in _stmt_rels(statement) if isinstance(n, r.Sort))
        assert sort.keys[0].nulls_first is False


class TestEngineMechanics:
    def test_fixpoint_divergence_guard(self, catalog):
        class Diverging(Rule):
            name = "loop"

            def applies(self, profile):
                return True

            def rewrite_scalar(self, expr, ctx):
                if isinstance(expr, s.Const):
                    ctx.changed = True
                return expr

        statement = bound("SEL 1 FROM SALES", catalog)
        transformer = Transformer(HYPERION, rules=[Diverging()])
        with pytest.raises(TransformError):
            transformer.transform(statement)

    def test_single_pass_mode_stops_after_one_round(self, catalog):
        statement = bound("SEL SALES_DATE + 30 FROM SALES ORDER BY STORE",
                          catalog)
        transform(statement, HYPERION, fixpoint=False)  # must not raise

    def test_rules_filtered_by_capability(self):
        assert not Transformer(TERADATA).active_rules
        assert Transformer(HYPERION).active_rules


def _walk(expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _stmt_scalars(statement):
    from repro.xtra.visitor import statement_scalars

    return list(statement_scalars(statement))


def _stmt_rels(statement):
    from repro.xtra.visitor import statement_plans

    out = []
    for plan in statement_plans(statement):
        out.extend(walk_rel(plan))
    return out
