"""Unit tests for the translation cache: fingerprinting, sentinel-probe
templates, and the byte-capped LRU with its stats counters."""

import pytest

from repro.core.cache import (
    KIND_DATE, KIND_FLOAT, KIND_INT, KIND_OTHER, KIND_STRING,
    TranslationCache, build_probe_sql, build_template, fingerprint,
)
from repro.frontend.teradata.lexer import make_lexer


@pytest.fixture(scope="module")
def lexer():
    return make_lexer()


def fp(sql, lexer):
    return fingerprint(sql, lexer)


class TestFingerprintLiteralLifting:
    def test_numbers_lift_into_shared_entry(self, lexer):
        a = fp("SEL * FROM T WHERE ID = 7", lexer)
        b = fp("SEL * FROM T WHERE ID = 42", lexer)
        assert a.text == b.text
        assert [slot.value for slot in a.slots] == [7]
        assert [slot.value for slot in b.slots] == [42]
        assert a.slots[0].kind == KIND_INT

    def test_strings_lift(self, lexer):
        a = fp("SELECT ID FROM T WHERE NAME = 'alice'", lexer)
        b = fp("SELECT ID FROM T WHERE NAME = 'bob'", lexer)
        assert a.text == b.text
        assert a.slots[0].kind == KIND_STRING
        assert a.slots[0].value == "alice"

    def test_dates_lift_with_date_kind(self, lexer):
        a = fp("SELECT ID FROM T WHERE D > DATE '2016-01-01'", lexer)
        b = fp("SELECT ID FROM T WHERE D > DATE '2017-06-30'", lexer)
        assert a.text == b.text
        assert a.slots[0].kind == KIND_DATE

    def test_floats_classified_separately(self, lexer):
        a = fp("SELECT ID FROM T WHERE VAL > 0.5", lexer)
        assert a.slots[0].kind == KIND_FLOAT

    def test_timestamp_literal_is_other_kind(self, lexer):
        a = fp("SELECT ID FROM T WHERE TS > TIMESTAMP '2016-01-01 10:00:00'",
               lexer)
        assert a.slots[0].kind == KIND_OTHER

    def test_mixed_literals_keep_source_order(self, lexer):
        a = fp("SELECT ID FROM T WHERE GRP = 3 AND NAME = 'x' AND QTY < 9",
               lexer)
        assert [slot.kind for slot in a.slots] == [KIND_INT, KIND_STRING,
                                                   KIND_INT]
        assert [slot.value for slot in a.slots] == [3, "x", 9]


class TestFingerprintInsensitivity:
    def test_case_insensitive(self, lexer):
        a = fp("SELECT ID FROM T WHERE GRP = 1", lexer)
        b = fp("select id from t where grp = 1", lexer)
        assert a.text == b.text

    def test_whitespace_insensitive(self, lexer):
        a = fp("SELECT ID  FROM\n\tT   WHERE GRP = 1", lexer)
        b = fp("SELECT ID FROM T WHERE GRP = 1", lexer)
        assert a.text == b.text

    def test_comment_insensitive(self, lexer):
        a = fp("SELECT ID FROM T -- trailing comment\nWHERE GRP = 1", lexer)
        b = fp("SELECT /* block */ ID FROM T WHERE GRP = 1", lexer)
        c = fp("SELECT ID FROM T WHERE GRP = 1", lexer)
        assert a.text == b.text == c.text

    def test_operator_spelling_normalized(self, lexer):
        a = fp("SELECT ID FROM T WHERE GRP ^= 1", lexer)
        b = fp("SELECT ID FROM T WHERE GRP <> 1", lexer)
        assert a.text == b.text


class TestFingerprintNonCollision:
    def test_ordinal_vs_column_group_by(self, lexer):
        a = fp("SELECT C1, SUM(V) FROM T GROUP BY 1", lexer)
        b = fp("SELECT C1, SUM(V) FROM T GROUP BY C1", lexer)
        assert a.text != b.text

    def test_number_vs_string_literal(self, lexer):
        a = fp("SELECT ID FROM T WHERE K = 7", lexer)
        b = fp("SELECT ID FROM T WHERE K = '7'", lexer)
        assert a.text != b.text

    def test_int_vs_float_literal(self, lexer):
        a = fp("SELECT ID FROM T WHERE K = 7", lexer)
        b = fp("SELECT ID FROM T WHERE K = 7.0", lexer)
        assert a.text != b.text

    def test_date_typed_vs_plain_string(self, lexer):
        a = fp("SELECT ID FROM T WHERE D > DATE '2016-01-01'", lexer)
        b = fp("SELECT ID FROM T WHERE D > '2016-01-01'", lexer)
        assert a.text != b.text

    def test_quoted_identifier_vs_bare(self, lexer):
        a = fp('SELECT "id" FROM T', lexer)
        b = fp("SELECT ID FROM T", lexer)
        assert a.text != b.text

    def test_parameter_markers_distinct(self, lexer):
        a = fp("SELECT ID FROM T WHERE K = ?", lexer)
        b = fp("SELECT ID FROM T WHERE K = :lim", lexer)
        c = fp("SELECT ID FROM T WHERE K = 7", lexer)
        assert len({a.text, b.text, c.text}) == 3

    def test_structurally_different_queries(self, lexer):
        a = fp("SELECT ID FROM T WHERE GRP = 1", lexer)
        b = fp("SELECT ID FROM T HAVING GRP = 1", lexer)
        assert a.text != b.text


class TestSentinelTemplates:
    def test_probe_skips_untemplatable_slots(self, lexer):
        f = fp("SELECT ID FROM T WHERE VAL > 0.5", lexer)
        assert build_probe_sql(f) is None

    def test_probe_round_trip(self, lexer):
        f = fp("SELECT ID FROM T WHERE GRP = 3 AND NAME = 'x'", lexer)
        probe_sql, expected = build_probe_sql(f)
        assert "3" not in probe_sql.replace(expected[0], "")
        # Pretend translation was the identity: template splices new values.
        template = build_template(probe_sql, expected)
        assert template is not None
        rendered = template.render(f.slots)
        assert "GRP = 3" in rendered
        assert "'x'" in rendered

    def test_missing_sentinel_rejects_template(self, lexer):
        f = fp("SELECT ID FROM T WHERE GRP = 3", lexer)
        __, expected = build_probe_sql(f)
        assert build_template("SELECT ID FROM T", expected) is None

    def test_embedded_digits_do_not_match(self, lexer):
        f = fp("SELECT ID FROM T WHERE GRP = 3", lexer)
        __, expected = build_probe_sql(f)
        # Sentinel digits glued inside a larger constant must not count.
        assert build_template(f"WHERE GRP = 1{expected[0]}9", expected) is None

    def test_duplicated_sentinel_renders_both_sites(self, lexer):
        f = fp("SELECT VAL + 5 AS A FROM T", lexer)
        __, expected = build_probe_sql(f)
        target = f"SELECT VAL + {expected[0]} AS A, VAL + {expected[0]} AS B"
        template = build_template(target, expected)
        assert template is not None
        assert template.render(f.slots).count("VAL + 5") == 2

    def test_invalid_date_value_fails_render(self, lexer):
        good = fp("SELECT ID FROM T WHERE D > DATE '2016-01-01'", lexer)
        probe_sql, expected = build_probe_sql(good)
        template = build_template(probe_sql, expected)
        bad = fp("SELECT ID FROM T WHERE D > DATE '2016-99-99'", lexer)
        assert template.render(bad.slots) is None
        assert template.render(good.slots) is not None


class TestTranslationCacheLRU:
    def _key(self, cache, fp_obj):
        return cache.key_base("teradata", "hyperion", fp_obj.text, None)

    def test_hit_miss_insert_counters(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("SELECT ID FROM T WHERE GRP = 1", lexer)
        key = self._key(cache, f)
        assert cache.lookup(key, f, None) is None
        cache.insert(key, f, None, "SELECT 1", (("qualify", "binder"),),
                     deps=("T",))
        hit = cache.lookup(key, f, None)
        assert hit.target_sql == "SELECT 1"
        assert hit.notes == (("qualify", "binder"),)
        assert hit.deps == ("T",)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.inserts) == (1, 1, 1)

    def test_byte_cap_evicts_lru(self, lexer):
        cache = TranslationCache(400)
        queries = [f"SELECT C{i} FROM T{i}" for i in range(8)]
        for sql in queries:
            f = fp(sql, lexer)
            cache.insert(self._key(cache, f), f, None, sql, ())
        assert cache.stats().evictions > 0
        assert cache.used_bytes <= 400
        # The newest entry survived; the oldest was evicted.
        newest = fp(queries[-1], lexer)
        oldest = fp(queries[0], lexer)
        assert cache.lookup(self._key(cache, newest), newest, None) is not None
        assert cache.lookup(self._key(cache, oldest), oldest, None) is None

    def test_bypass_reclassifies_miss(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("CREATE TABLE X (A INTEGER)", lexer)
        assert cache.lookup(self._key(cache, f), f, None) is None
        cache.note_bypass()
        stats = cache.stats()
        assert stats.misses == 0
        assert stats.bypasses == 1

    def test_invalidate_tables_drops_dependents_only(self, lexer):
        cache = TranslationCache(1 << 20)
        on_t = fp("SELECT ID FROM T", lexer)
        on_u = fp("SELECT ID FROM U", lexer)
        cache.insert(self._key(cache, on_t), on_t, None, "SELECT 1", (),
                     deps=("T",))
        cache.insert(self._key(cache, on_u), on_u, None, "SELECT 2", (),
                     deps=("U",))
        assert cache.invalidate_tables(("T",)) == 1
        assert len(cache) == 1
        assert cache.stats().invalidations == 1
        assert cache.lookup(self._key(cache, on_u), on_u, None) is not None

    def test_wildcard_deps_invalidated_by_any_table(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("SELECT ID FROM T", lexer)
        # Default deps are the wildcard: conservative entries drop on every
        # schema change, matching the old whole-cache behaviour.
        cache.insert(self._key(cache, f), f, None, "SELECT 1", ())
        assert cache.invalidate_tables(("UNRELATED",)) == 1
        assert len(cache) == 0

    def test_empty_deps_survive_every_table_bump(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("SELECT ID FROM T", lexer)
        cache.insert(self._key(cache, f), f, None, "SELECT 1", (), deps=())
        assert cache.invalidate_tables(("T", "U")) == 0
        assert cache.invalidate_tables(("*",)) == 1

    def test_invalidate_overlay_targets_one_session(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("SELECT ID FROM T", lexer)
        shared_key = cache.key_base("teradata", "hyperion", f.text, None)
        private_key = cache.key_base("teradata", "hyperion", f.text, (7, 1))
        cache.insert(shared_key, f, None, "SELECT 1", ())
        cache.insert(private_key, f, None, "SELECT 2", ())
        assert cache.invalidate_overlay(7) == 1
        assert cache.lookup(shared_key, f, None) is not None
        assert cache.lookup(private_key, f, None) is None

    def test_explicit_parameters_pin_values(self, lexer):
        cache = TranslationCache(1 << 20)
        f = fp("SELECT ID FROM T WHERE K = ?", lexer)
        key = self._key(cache, f)
        cache.insert(key, f, ((10,), ()), "SELECT 10", ())
        assert cache.lookup(key, f, ((10,), ())) is not None
        assert cache.lookup(key, f, ((11,), ())) is None

    def test_fingerprint_memo_capped(self, lexer):
        cache = TranslationCache(1 << 20)
        cap = TranslationCache.FP_MEMO_ENTRIES
        first = cache.fingerprint_cached("SELECT 1 FROM T0", lexer)
        assert cache.fingerprint_cached("SELECT 1 FROM T0", lexer) is first
        for i in range(1, cap + 2):
            cache.fingerprint_cached(f"SELECT 1 FROM T{i}", lexer)
        assert len(cache._fp_memo) <= cap

    def test_zero_cap_rejected(self):
        with pytest.raises(ValueError):
            TranslationCache(0)
