"""Unit tests for the XTRA type system and Teradata DATE encoding."""

import datetime

import pytest

from repro.xtra import types as t


class TestTypeClassification:
    def test_numeric_kinds(self):
        assert t.INTEGER.is_numeric
        assert t.decimal(10, 2).is_numeric
        assert not t.varchar(10).is_numeric
        assert not t.DATE.is_numeric

    def test_text_kinds(self):
        assert t.varchar(5).is_text
        assert t.char(3).is_text
        assert not t.INTEGER.is_text

    def test_temporal_kinds(self):
        assert t.DATE.is_temporal
        assert t.TIMESTAMP.is_temporal
        assert not t.INTEGER.is_temporal

    def test_str_rendering(self):
        assert str(t.decimal(12, 2)) == "DECIMAL(12,2)"
        assert str(t.varchar(40)) == "VARCHAR(40)"
        assert str(t.char(3)) == "CHAR(3)"
        assert str(t.INTEGER) == "INTEGER"


class TestNumericWidening:
    def test_widening_picks_higher_rank(self):
        assert t.common_numeric(t.SMALLINT, t.BIGINT).kind is t.TypeKind.BIGINT
        assert t.common_numeric(t.INTEGER, t.FLOAT).kind is t.TypeKind.FLOAT
        assert t.common_numeric(t.decimal(10, 2), t.INTEGER).kind is t.TypeKind.DECIMAL

    def test_widening_of_non_numeric_is_unknown(self):
        assert t.common_numeric(t.varchar(5), t.INTEGER).kind is t.TypeKind.UNKNOWN


class TestTeradataDateEncoding:
    """Section 5.2: dates are stored as (year-1900)*10000 + month*100 + day."""

    def test_paper_example_value(self):
        assert t.date_to_teradata_int(datetime.date(2014, 1, 1)) == 1140101

    def test_roundtrip(self):
        for date in (datetime.date(1900, 1, 1), datetime.date(1999, 12, 31),
                     datetime.date(2024, 2, 29)):
            assert t.teradata_int_to_date(t.date_to_teradata_int(date)) == date

    def test_pre_1900_dates_encode_negative(self):
        assert t.date_to_teradata_int(datetime.date(1899, 12, 31)) < 0

    def test_validity_check(self):
        assert t.is_valid_teradata_date_int(1140101)
        assert not t.is_valid_teradata_date_int(1141399)  # month 13

    def test_invalid_integer_raises_on_decode(self):
        with pytest.raises(ValueError):
            t.teradata_int_to_date(1140199)  # Jan 99th
