"""Unit tests for the extended window-function set: LAG/LEAD/FIRST_VALUE/
LAST_VALUE, partitioned and with offsets/defaults."""

import pytest

from repro.core.engine import HyperQ
from repro.errors import HyperQError


@pytest.fixture
def session():
    engine = HyperQ()
    session = engine.create_session()
    session.execute("CREATE TABLE SERIES (GRP VARCHAR(1), T INTEGER, V INTEGER)")
    session.execute("INSERT INTO SERIES VALUES "
                    "('a', 1, 10), ('a', 2, 15), ('a', 3, 12), "
                    "('b', 1, 100), ('b', 2, NULL)")
    return session


class TestLagLead:
    def test_lag_default_offset(self, session):
        result = session.execute(
            "SEL T, LAG(V) OVER (ORDER BY T) FROM SERIES "
            "WHERE GRP = 'a' ORDER BY T")
        assert [row[1] for row in result.rows] == [None, 10, 15]

    def test_lead_with_offset_and_default(self, session):
        result = session.execute(
            "SEL T, LEAD(V, 2, -1) OVER (ORDER BY T) FROM SERIES "
            "WHERE GRP = 'a' ORDER BY T")
        assert [row[1] for row in result.rows] == [12, -1, -1]

    def test_lag_respects_partitions(self, session):
        result = session.execute(
            "SEL GRP, T, LAG(V) OVER (PARTITION BY GRP ORDER BY T) AS P "
            "FROM SERIES ORDER BY GRP, T")
        by_key = {(row[0], row[1]): row[2] for row in result.rows}
        assert by_key[("b", 1)] is None  # no bleed from partition 'a'
        assert by_key[("b", 2)] == 100

    def test_lag_carries_nulls(self, session):
        result = session.execute(
            "SEL T, LAG(V) OVER (ORDER BY T) AS P FROM SERIES "
            "WHERE GRP = 'b' ORDER BY T")
        assert [row[1] for row in result.rows] == [None, 100]

    def test_non_constant_offset_rejected(self, session):
        with pytest.raises(HyperQError):
            session.execute(
                "SEL LAG(V, T) OVER (ORDER BY T) FROM SERIES")


class TestFirstLastValue:
    def test_first_value(self, session):
        result = session.execute(
            "SEL T, FIRST_VALUE(V) OVER (PARTITION BY GRP ORDER BY T) AS F "
            "FROM SERIES WHERE GRP = 'a' ORDER BY T")
        assert all(row[1] == 10 for row in result.rows)

    def test_last_value_over_whole_partition(self, session):
        result = session.execute(
            "SEL T, LAST_VALUE(V) OVER (PARTITION BY GRP ORDER BY T) AS L "
            "FROM SERIES WHERE GRP = 'a' ORDER BY T")
        assert all(row[1] == 12 for row in result.rows)

    def test_requires_over_clause(self, session):
        with pytest.raises(HyperQError):
            session.execute("SEL FIRST_VALUE(V) FROM SERIES")
