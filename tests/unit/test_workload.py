"""Unit tests for the workload subsystem: classification, token buckets,
deficit-round-robin, admission control, deadlines, and runtime feedback."""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.budget import BatchBudget
from repro.core.engine import HyperQ
from repro.core.faults import (
    ADMISSION_REJECT, SLOW_RESULT, FaultSchedule, FaultSpec,
)
from repro.core.tracker import FeatureTracker
from repro.core.workload import (
    ADMIN, ETL, INTERACTIVE, REPORTING,
    DeficitRoundRobin, QueryClassifier, QueryFeatures, TokenBucket,
    WorkloadClassConfig, WorkloadConfig, WorkloadDecision, WorkloadManager,
    demote_class, extract_features,
)
from repro.errors import WorkloadDeadlineError, WorkloadShedError


# -- configuration ------------------------------------------------------------------


class TestWorkloadConfig:
    def test_defaults_cover_all_classes(self):
        config = WorkloadConfig()
        assert set(config.classes) == {INTERACTIVE, REPORTING, ETL, ADMIN}
        assert config.classes[INTERACTIVE].weight \
            > config.classes[ETL].weight

    def test_from_dict_overrides_merge_with_defaults(self):
        config = WorkloadConfig.from_dict({
            "workers": 8,
            "classes": {"etl": {"weight": 0.5, "max_concurrency": 2},
                        "interactive": {"deadline": 2.0}},
        })
        assert config.workers == 8
        assert config.classes[ETL].weight == 0.5
        assert config.classes[ETL].max_concurrency == 2
        assert config.classes[INTERACTIVE].deadline == 2.0
        # Untouched knobs keep their defaults.
        assert config.classes[REPORTING].queue_depth == 128

    def test_from_dict_rejects_unknown_class_and_key(self):
        with pytest.raises(ValueError, match="unknown workload class"):
            WorkloadConfig.from_dict({"classes": {"batch": {}}})
        with pytest.raises(ValueError, match="unknown workload config"):
            WorkloadConfig.from_dict({"wrokers": 3})

    def test_from_env_inline_json_and_file(self, tmp_path):
        config = WorkloadConfig.from_env(
            {"HQ_WORKLOAD_CONFIG": '{"workers": 6}'})
        assert config.workers == 6
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"etl_scan_rows": 5}))
        config = WorkloadConfig.from_env({"HQ_WORKLOAD_CONFIG": f"@{path}"})
        assert config.etl_scan_rows == 5
        assert WorkloadConfig.from_env({}).workers == 4  # unset -> defaults

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadClassConfig("x", weight=0)
        with pytest.raises(ValueError):
            WorkloadClassConfig("x", queue_depth=0)
        with pytest.raises(ValueError):
            WorkloadConfig(workers=0)


class TestBatchBudgetOverrides:
    def test_with_overrides_inherits_zeros(self):
        base = BatchBudget(batch_rows=100, max_memory_bytes=1000)
        assert base.with_overrides() == base
        assert base.with_overrides(batch_rows=7).batch_rows == 7
        assert base.with_overrides(batch_rows=7).max_memory_bytes == 1000
        assert base.with_overrides(max_memory_bytes=5).batch_rows == 100


# -- classification -----------------------------------------------------------------


def _classify(features, **kwargs):
    return QueryClassifier(WorkloadConfig()).classify(features, **kwargs)


class TestClassifier:
    def test_point_query_is_interactive(self):
        decision = _classify(QueryFeatures(kind="query", fan_in=1))
        assert decision.wl_class == INTERACTIVE

    def test_aggregation_and_fan_in_are_reporting(self):
        assert _classify(QueryFeatures(
            kind="query", has_aggregation=True)).wl_class == REPORTING
        assert _classify(QueryFeatures(
            kind="query", has_window=True)).wl_class == REPORTING
        assert _classify(QueryFeatures(
            kind="query", fan_in=3)).wl_class == REPORTING

    def test_cached_shaped_query_demotes_to_interactive(self):
        features = QueryFeatures(kind="query", has_aggregation=True)
        assert _classify(features, cache_hit=True).wl_class == INTERACTIVE
        # ...but a big cached scan stays reporting: the cache saves
        # translation, not execution.
        big = QueryFeatures(kind="query", has_aggregation=True,
                            scan_rows=50_000)
        assert _classify(big, cache_hit=True).wl_class == REPORTING

    def test_scan_thresholds(self):
        assert _classify(QueryFeatures(
            kind="query", scan_rows=10_000)).wl_class == REPORTING
        assert _classify(QueryFeatures(
            kind="query", scan_rows=100_000)).wl_class == ETL

    def test_dml_is_etl_and_admin_is_admin(self):
        assert _classify(QueryFeatures(kind="dml")).wl_class == ETL
        assert _classify(QueryFeatures(kind="admin")).wl_class == ADMIN

    def test_session_override_wins(self):
        decision = _classify(QueryFeatures(kind="dml"),
                             session_params={"WORKLOAD": "interactive"})
        assert decision.wl_class == INTERACTIVE
        assert decision.reason == "session override"

    def test_unclassifiable_routes_interactive(self):
        assert _classify(None).wl_class == INTERACTIVE

    def test_demotion_ladder(self):
        assert demote_class(INTERACTIVE, 1) == REPORTING
        assert demote_class(INTERACTIVE, 2) == ETL
        assert demote_class(INTERACTIVE, 9) == ETL
        assert demote_class(ETL, 1) == ETL
        assert demote_class(ADMIN, 1) == ADMIN


class TestFeatureExtraction:
    @pytest.fixture()
    def session(self):
        engine = HyperQ()
        session = engine.create_session()
        session.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
        session.execute("CREATE TABLE U (A INTEGER)")
        yield session
        session.close()

    def test_statement_kinds(self, session):
        features, __ = session.workload_features("SEL A FROM T")
        assert features.kind == "query" and features.fan_in == 1
        features, __ = session.workload_features("INS INTO T VALUES (1, 2)")
        assert features.kind == "dml"
        features, __ = session.workload_features("HELP TABLE T")
        assert features.kind == "admin"
        features, __ = session.workload_features(
            "CREATE TABLE V (X INTEGER)")
        assert features.kind == "admin"

    def test_shape_signals(self, session):
        features, __ = session.workload_features(
            "SEL A, COUNT(*) FROM T GROUP BY A")
        assert features.has_aggregation
        features, __ = session.workload_features(
            "SEL T.A FROM T, U WHERE T.A = U.A")
        assert features.fan_in == 2

    def test_scan_rows_from_backend_statistics(self, session):
        session.execute("INS INTO T VALUES (1, 2)")
        session.execute("INS INTO T VALUES (3, 4)")
        features, __ = session.workload_features("SEL A FROM T")
        assert features.scan_rows == 2
        assert session.engine.estimate_rows("NOPE") == 0

    def test_cache_hit_probe_does_not_count(self, session):
        sql = "SEL A FROM T WHERE B = 5"
        __, hit = session.workload_features(sql)
        assert not hit
        before = session.engine.cache.stats()
        session.execute(sql)
        __, hit = session.workload_features(sql)
        assert hit
        after = session.engine.cache.stats()
        # The two workload probes added no lookups beyond execute's own.
        assert after.lookups == before.lookups + 1

    def test_unparseable_returns_none(self, session):
        features, __ = session.workload_features("THIS IS NOT SQL !!!")
        assert features is None


# -- token bucket -------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: now[0])
        assert bucket.take() and bucket.take()
        assert not bucket.take()
        assert not bucket.peek()
        now[0] += 0.1  # one token refilled
        assert bucket.peek()
        assert bucket.take()
        assert not bucket.take()

    def test_rate_zero_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=lambda: 0.0)
        assert all(bucket.take() for __ in range(100))

    def test_capacity_caps_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3, clock=lambda: now[0])
        now[0] += 60.0
        assert sum(bucket.take() for __ in range(10)) == 3


# -- deficit round robin ------------------------------------------------------------


class TestDeficitRoundRobin:
    def test_weighted_shares(self):
        drr = DeficitRoundRobin({"a": 3.0, "b": 1.0})
        for index in range(400):
            drr.enqueue("a", f"a{index}")
            drr.enqueue("b", f"b{index}")
        served = {"a": 0, "b": 0}
        for __ in range(200):
            wl_class, __item = drr.next()
            served[wl_class] += 1
        assert served["a"] == pytest.approx(150, abs=4)
        assert served["b"] == pytest.approx(50, abs=4)

    def test_fifo_within_class(self):
        drr = DeficitRoundRobin({"a": 1.0})
        for index in range(5):
            drr.enqueue("a", index)
        assert [drr.next()[1] for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_returns_none_and_resets_deficit(self):
        drr = DeficitRoundRobin({"a": 2.0, "b": 1.0})
        assert drr.next() is None
        drr.enqueue("b", "x")
        assert drr.next() == ("b", "x")
        assert len(drr) == 0

    def test_ineligible_class_is_skipped_without_accrual(self):
        drr = DeficitRoundRobin({"a": 1.0, "b": 1.0})
        for index in range(10):
            drr.enqueue("a", index)
            drr.enqueue("b", index)
        # With "a" blocked, every serve comes from "b".
        for expected in range(4):
            wl_class, item = drr.next(lambda c: c == "b")
            assert (wl_class, item) == ("b", expected)
        # Unblocking "a" must not let it burst ahead of "b": it accrued no
        # deficit while ineligible, so service alternates fairly.
        served = [drr.next()[0] for __ in range(6)]
        assert served.count("a") == 3 and served.count("b") == 3

    def test_all_ineligible_returns_none(self):
        drr = DeficitRoundRobin({"a": 1.0})
        drr.enqueue("a", "x")
        assert drr.next(lambda c: False) is None
        assert drr.pending("a") == 1

    def test_sweep_preserves_order(self):
        drr = DeficitRoundRobin({"a": 1.0})
        for index in range(6):
            drr.enqueue("a", index)
        removed = drr.sweep(lambda item: item % 2 == 0)
        assert removed == [0, 2, 4]
        assert [drr.next()[1] for __ in range(3)] == [1, 3, 5]

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin({})
        with pytest.raises(ValueError):
            DeficitRoundRobin({"a": 0.0})


# -- the manager --------------------------------------------------------------------


def _fake_session(uid: int = 1):
    return SimpleNamespace(
        catalog=SimpleNamespace(uid=uid), session_params={}, engine=None,
        workload_features=lambda sql: (None, False))


def _config(**kwargs) -> WorkloadConfig:
    classes = {
        INTERACTIVE: WorkloadClassConfig(INTERACTIVE, weight=4.0,
                                         **kwargs.pop("interactive", {})),
        REPORTING: WorkloadClassConfig(REPORTING, weight=2.0),
        ETL: WorkloadClassConfig(ETL, weight=1.0, **kwargs.pop("etl", {})),
        ADMIN: WorkloadClassConfig(ADMIN),
    }
    return WorkloadConfig(classes=classes, **kwargs)


class TestWorkloadManager:
    def test_runs_work_and_counts_stats(self):
        manager = WorkloadManager(_config(workers=2))
        try:
            session = _fake_session()
            results = [manager.run(session, f"Q{i}", lambda i=i: i * 10)
                       for i in range(5)]
            assert results == [0, 10, 20, 30, 40]
            assert manager.stats.get(INTERACTIVE, "admitted") == 5
            assert manager.stats.get(INTERACTIVE, "queued") == 5
            snap = manager.snapshot()[INTERACTIVE]
            assert snap["queue_wait"]["count"] == 5
            assert snap["run_time"]["count"] == 5
        finally:
            manager.close()

    def test_errors_propagate_through_future(self):
        manager = WorkloadManager(_config())
        try:
            def boom():
                raise RuntimeError("kaput")

            with pytest.raises(RuntimeError, match="kaput"):
                manager.run(_fake_session(), "Q", boom)
        finally:
            manager.close()

    def test_queue_full_sheds_with_retry_hint(self):
        config = _config(workers=1,
                         etl={"queue_depth": 1, "rate": 2.0, "burst": 1})
        manager = WorkloadManager(config)
        try:
            release = threading.Event()
            decision = WorkloadDecision(ETL, "test")
            session = _fake_session()
            first = manager.submit(session, "Q1", release.wait, decision)
            time.sleep(0.05)  # the worker picks Q1 up and blocks
            second = manager.submit(session, "Q2", lambda: 2, decision)
            with pytest.raises(WorkloadShedError, match="retry after"):
                manager.submit(session, "Q3", lambda: 3, decision)
            assert manager.stats.get(ETL, "shed") == 1
            release.set()
            assert manager.wait(second) == 2
            manager.wait(first)
        finally:
            release.set()
            manager.close()

    def test_queued_past_deadline_rejected_before_execution(self):
        config = _config(workers=1, interactive={"deadline": 0.05})
        manager = WorkloadManager(config)
        try:
            release = threading.Event()
            session = _fake_session()
            blocker = manager.submit(session, "SLOW", release.wait,
                                     WorkloadDecision(ETL, "test"))
            time.sleep(0.05)  # occupy the only worker
            ran = []
            ticket = manager.submit(session, "FAST",
                                    lambda: ran.append(1),
                                    WorkloadDecision(INTERACTIVE, "test"))
            with pytest.raises(WorkloadDeadlineError, match="before execution"):
                manager.wait(ticket)
            release.set()
            manager.wait(blocker)
            assert ran == []  # the expired request never executed
            assert manager.stats.get(INTERACTIVE, "deadline_missed") == 1
        finally:
            release.set()
            manager.close()

    def test_synthetic_queue_age_rejects_at_submit(self):
        faults = FaultSchedule(0, [
            FaultSpec(SLOW_RESULT, "admission", every=1, delay=30.0)])
        config = _config(interactive={"deadline": 5.0})
        manager = WorkloadManager(config, faults=faults)
        try:
            with pytest.raises(WorkloadDeadlineError):
                manager.submit(_fake_session(), "Q", lambda: 1,
                               WorkloadDecision(INTERACTIVE, "test"))
            assert b"deadline_missed class=interactive" \
                in faults.event_log_bytes()
        finally:
            manager.close()

    def test_admission_reject_fault_sheds(self):
        faults = FaultSchedule(0, [
            FaultSpec(ADMISSION_REJECT, "admission", every=2)])
        manager = WorkloadManager(_config(), faults=faults)
        try:
            session = _fake_session()
            decision = WorkloadDecision(INTERACTIVE, "test")
            assert manager.run(session, "Q1", lambda: 1, decision) == 1
            with pytest.raises(WorkloadShedError):
                manager.run(session, "Q2", lambda: 2, decision)
            assert b"shed" in faults.event_log_bytes()
        finally:
            manager.close()

    def test_nested_submission_runs_inline(self):
        manager = WorkloadManager(_config(workers=1))
        try:
            session = _fake_session()
            decision = WorkloadDecision(INTERACTIVE, "test")

            def parent():
                # With one worker, queueing this would deadlock; priority
                # inheritance runs it inline on the owning worker instead.
                return manager.run(session, "CHILD", lambda: "child",
                                   decision)

            assert manager.run(session, "PARENT", parent, decision) == "child"
            assert manager.stats.get(INTERACTIVE, "inherited") == 1
            assert manager.stats.get(INTERACTIVE, "admitted") == 2
        finally:
            manager.close()

    def test_repeated_overruns_demote_session(self):
        config = _config(demote_after=2,
                         interactive={"runtime_ceiling": 0.001})
        manager = WorkloadManager(config)
        try:
            session = _fake_session(uid=7)
            decision = WorkloadDecision(INTERACTIVE, "test")
            for __ in range(2):
                manager.run(session, "HOG", lambda: time.sleep(0.01),
                            decision)
            assert manager.demotion_level(session) == 1
            demoted = manager.decide(session, "whatever")
            assert demoted.wl_class == REPORTING
            assert demoted.demoted_from == INTERACTIVE
            assert manager.stats.get(INTERACTIVE, "demoted") == 1
            # A different session is unaffected.
            assert manager.decide(_fake_session(uid=8),
                                  "whatever").wl_class == INTERACTIVE
        finally:
            manager.close()

    def test_max_concurrency_bounds_running(self):
        config = _config(workers=4, etl={"max_concurrency": 1})
        manager = WorkloadManager(config)
        try:
            running = []
            peak = []
            lock = threading.Lock()

            def job():
                with lock:
                    running.append(1)
                    peak.append(len(running))
                time.sleep(0.02)
                with lock:
                    running.pop()

            session = _fake_session()
            decision = WorkloadDecision(ETL, "test")
            tickets = [manager.submit(session, f"Q{i}", job, decision)
                       for i in range(4)]
            for ticket in tickets:
                manager.wait(ticket)
            assert max(peak) == 1
        finally:
            manager.close()

    def test_tracker_receives_workload_events(self):
        tracker = FeatureTracker()
        manager = WorkloadManager(_config(), tracker=tracker)
        try:
            manager.run(_fake_session(), "Q", lambda: 1,
                        WorkloadDecision(INTERACTIVE, "test"))
            assert tracker.workload_counts[(INTERACTIVE, "admitted")] == 1
            assert tracker.workload_total("admitted") == 1
        finally:
            manager.close()

    def test_decision_attaches_class_budget(self):
        config = _config(etl={"batch_rows": 64,
                              "max_memory_bytes": 1024})
        manager = WorkloadManager(config)
        try:
            engine = HyperQ(workload=manager)
            session = engine.create_session()
            session.execute("CREATE TABLE T (A INTEGER)")
            decision = manager.decide(session, "INS INTO T VALUES (1)")
            assert decision.wl_class == ETL
            assert decision.budget == BatchBudget(batch_rows=64,
                                                  max_memory_bytes=1024)
            # Interactive has no override -> no budget attached.
            assert manager.decide(session, "SEL A FROM T").budget is None
            session.close()
        finally:
            manager.close()

    def test_memo_does_not_freeze_cache_hit_dependent_decisions(self):
        """A shaped small-scan query classifies REPORTING on its first
        (cache-miss) request but must flip to INTERACTIVE once the
        translation cache warms — the memo must not pin the miss-time
        answer (the "cached dashboard query" rule would never fire)."""
        manager = WorkloadManager(_config())
        try:
            shaped = QueryFeatures(kind="query", has_aggregation=True)
            state = {"hit": False}
            session = SimpleNamespace(
                catalog=SimpleNamespace(uid=1), session_params={},
                engine=None,
                workload_features=lambda sql: (shaped, state["hit"]))
            sql = "SEL A, COUNT(*) FROM T GROUP BY A"
            assert manager.decide(session, sql).wl_class == REPORTING
            state["hit"] = True  # the translation cache has warmed
            assert manager.decide(session, sql).wl_class == INTERACTIVE
        finally:
            manager.close()

    def test_memo_still_caches_cache_hit_independent_decisions(self):
        manager = WorkloadManager(_config())
        try:
            point = QueryFeatures(kind="query", fan_in=1)
            probes = []
            session = SimpleNamespace(
                catalog=SimpleNamespace(uid=1), session_params={},
                engine=None,
                workload_features=lambda sql: (probes.append(sql)
                                               or (point, False)))
            for __ in range(3):
                assert manager.decide(
                    session, "SEL A FROM T").wl_class == INTERACTIVE
            assert len(probes) == 1  # probed once, memoized after
        finally:
            manager.close()


class TestExtractFeaturesDirect:
    def test_extract_on_raw_tree_kinds(self):
        from repro.xtra import relational as r

        assert extract_features(r.NoOp()).kind == "admin"

    def test_row_estimator_errors_are_swallowed(self):
        engine = HyperQ()
        session = engine.create_session()
        session.execute("CREATE TABLE T (A INTEGER)")
        features, __ = session.workload_features("SEL A FROM T")
        # estimator raising must not break classification
        def bad_estimator(name):
            raise RuntimeError("stats offline")
        parser, binder, __t, __s = session._ensure_probe_stack()
        bound = binder.bind(parser.parse_statement("SEL A FROM T"))
        features = extract_features(bound, bad_estimator)
        assert features.scan_rows == 0
        session.close()
