"""Unit tests for XTRA node mechanics: output columns, structural equality,
walkers and rewriters."""

from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import (
    rewrite_rel,
    rewrite_scalars,
    walk_all_scalars,
    walk_rel,
    walk_scalars,
)


def sales_schema():
    return TableSchema("SALES", [
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("AMOUNT", t.FLOAT),
    ])


class TestOutputColumns:
    def test_get_qualifies_with_alias(self):
        get = r.Get(sales_schema(), alias="S")
        cols = get.output_columns()
        assert [(c.name, c.qualifier) for c in cols] == [
            ("STORE", "S"), ("AMOUNT", "S")]

    def test_get_qualifies_with_table_name_without_alias(self):
        cols = r.Get(sales_schema()).output_columns()
        assert cols[0].qualifier == "SALES"

    def test_project_reports_names_and_types(self):
        expr = s.Arith(s.ArithOp.ADD, s.const_int(1), s.const_int(2), type=t.INTEGER)
        project = r.Project(r.Get(sales_schema()), [expr], ["TOTAL"])
        (col,) = project.output_columns()
        assert col.name == "TOTAL"
        assert col.type.kind is t.TypeKind.INTEGER

    def test_join_concatenates_columns(self):
        join = r.Join(r.JoinKind.INNER, r.Get(sales_schema(), "A"),
                      r.Get(sales_schema(), "B"), None)
        assert len(join.output_columns()) == 4

    def test_aggregate_outputs_groups_then_aggs(self):
        agg_call = s.AggCall("SUM", [s.ColumnRef("AMOUNT", type=t.FLOAT)],
                             type=t.FLOAT)
        agg = r.Aggregate(r.Get(sales_schema()),
                          [s.ColumnRef("STORE", type=t.INTEGER)], ["_G0"],
                          [agg_call], ["_A0"])
        assert [c.name for c in agg.output_columns()] == ["_G0", "_A0"]

    def test_window_appends_columns(self):
        win = r.Window(r.Get(sales_schema()),
                       [s.WindowFunc("RANK", type=t.INTEGER)], ["_W0"])
        assert [c.name for c in win.output_columns()] == ["STORE", "AMOUNT", "_W0"]

    def test_derived_table_requalifies(self):
        derived = r.DerivedTable(r.Get(sales_schema()), "D", ["X", "Y"])
        cols = derived.output_columns()
        assert [(c.name, c.qualifier) for c in cols] == [("X", "D"), ("Y", "D")]

    def test_setop_uses_left_names(self):
        left = r.Get(sales_schema(), "L")
        right = r.Get(sales_schema(), "R")
        setop = r.SetOp(r.SetOpKind.UNION, True, left, right)
        assert [c.name for c in setop.output_columns()] == ["STORE", "AMOUNT"]


class TestStructuralEquality:
    def test_same_on_equal_trees(self):
        left = s.Comp(s.CompOp.GT, s.ColumnRef("A"), s.const_int(1))
        right = s.Comp(s.CompOp.GT, s.ColumnRef("A"), s.const_int(1))
        assert s.same(left, right)

    def test_same_detects_value_difference(self):
        left = s.Comp(s.CompOp.GT, s.ColumnRef("A"), s.const_int(1))
        right = s.Comp(s.CompOp.GT, s.ColumnRef("A"), s.const_int(2))
        assert not s.same(left, right)

    def test_same_detects_shape_difference(self):
        assert not s.same(s.const_int(1), s.const_str("1"))

    def test_conjoin(self):
        assert s.conjoin([]) is None
        single = s.const_int(1)
        assert s.conjoin([single]) is single
        combined = s.conjoin([s.const_int(1), s.const_int(2)])
        assert isinstance(combined, s.BoolOp)
        assert combined.op is s.BoolOpKind.AND


class TestWalkers:
    def test_walk_scalars_visits_nested(self):
        expr = s.BoolOp(s.BoolOpKind.AND, [
            s.Comp(s.CompOp.EQ, s.ColumnRef("A"), s.const_int(1)),
            s.IsNull(s.ColumnRef("B")),
        ])
        names = [n.name for n in walk_scalars(expr) if isinstance(n, s.ColumnRef)]
        assert names == ["A", "B"]

    def test_walk_rel_visits_children(self):
        plan = r.Filter(r.Get(sales_schema()), s.Const(True, t.BOOLEAN))
        assert [type(node).__name__ for node in walk_rel(plan)] == ["Filter", "Get"]

    def test_walk_all_scalars_enters_subquery_plans(self):
        inner = r.Filter(r.Get(sales_schema()),
                         s.Comp(s.CompOp.GT, s.ColumnRef("AMOUNT"), s.const_int(5)))
        subq = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=inner)
        plan = r.Filter(r.Get(sales_schema()), subq)
        refs = [n for n in walk_all_scalars(plan) if isinstance(n, s.ColumnRef)]
        assert any(ref.name == "AMOUNT" for ref in refs)

    def test_rewrite_scalars_bottom_up(self):
        expr = s.Arith(s.ArithOp.ADD, s.const_int(1), s.const_int(2))

        def fold(node):
            if isinstance(node, s.Arith) and isinstance(node.left, s.Const) \
                    and isinstance(node.right, s.Const):
                return s.const_int(node.left.value + node.right.value)
            return node

        result = rewrite_scalars(expr, fold)
        assert isinstance(result, s.Const)
        assert result.value == 3

    def test_rewrite_rel_replaces_nodes(self):
        plan = r.Filter(r.Get(sales_schema()), s.Const(True, t.BOOLEAN))

        def drop_filter(node):
            if isinstance(node, r.Filter):
                return node.child
            return node

        result = rewrite_rel(plan, drop_filter)
        assert isinstance(result, r.Get)
